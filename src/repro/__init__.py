"""repro — a reproduction of Lobster (ASPLOS 2026): a GPU-accelerated
framework for neurosymbolic programming.

Public API highlights:

* :class:`repro.LobsterEngine` — compile and run Datalog programs with a
  chosen provenance semiring on the virtual GPU device.
* :class:`repro.LobsterSession` — batch many independent databases
  through one compiled program on a shared device (the serving layer),
  optionally round-robined across a :class:`repro.DevicePool`.
* :mod:`repro.dist` — sharded multi-device execution: hash-partitioned
  frontiers, exchange operators, and ``LobsterEngine(shards=N)``.
* :mod:`repro.serve` — the online serving front-end: SLO-classed
  requests, admission control, micro-batching scheduler over a device
  pool, Poisson/bursty load generation, and the metrics registry.
* :mod:`repro.stream` — streaming incremental view maintenance:
  replayable sources, tumbling/sliding windows emitting retractions,
  :class:`repro.MaterializedView`\\ s kept continuously correct through
  the engine's DRed-style maintain path, live subscriptions, and the
  :class:`repro.StreamScheduler` tick path on the serve clock.
* :class:`repro.ProgramCache` / :func:`repro.default_cache` — the
  content-addressed compile-once cache behind every engine construction.
* :mod:`repro.provenance` — the semiring library (discrete, probabilistic,
  differentiable).
* :mod:`repro.baselines` — Scallop/Soufflé/ProbLog/FVLog stand-ins.
* :mod:`repro.workloads` — the paper's nine benchmark tasks.
* :mod:`repro.nn` — a minimal autodiff substrate for end-to-end training.
"""

from .errors import (
    CompileError,
    DeviceOutOfMemory,
    EvaluationTimeout,
    ExecutionError,
    LobsterError,
    ParseError,
    ResolutionError,
    RetractionUnsupportedError,
    SessionError,
    StaleViewError,
    StratificationError,
    TicketNotRunError,
    UnknownTicketError,
)
from .dist import DevicePool, HashPartitioner, ShardedExecutor
from .gpu.device import DeviceProfile, VirtualDevice
from .runtime.cache import (
    CompiledProgram,
    OptimizationConfig,
    ProgramCache,
    default_cache,
)
from .runtime.database import Database
from .runtime.engine import ExecutionResult, LobsterEngine
from .runtime.session import LobsterSession, SessionReport
from .serve import (
    AdmissionController,
    LoadGenerator,
    MetricsRegistry,
    Outcome,
    Request,
    Scheduler,
    ServeReport,
    SLOClass,
    StreamReport,
    StreamScheduler,
)
from .stream import (
    MaterializedView,
    RelationStream,
    SlidingWindow,
    Subscription,
    TickDelta,
    TumblingWindow,
    ViewDelta,
)

__version__ = "0.5.0"

__all__ = [
    "AdmissionController",
    "CompileError",
    "CompiledProgram",
    "Database",
    "DeviceOutOfMemory",
    "DevicePool",
    "DeviceProfile",
    "HashPartitioner",
    "LoadGenerator",
    "MetricsRegistry",
    "Outcome",
    "Request",
    "Scheduler",
    "ServeReport",
    "SLOClass",
    "ShardedExecutor",
    "EvaluationTimeout",
    "ExecutionError",
    "ExecutionResult",
    "LobsterEngine",
    "LobsterError",
    "LobsterSession",
    "MaterializedView",
    "OptimizationConfig",
    "ParseError",
    "ProgramCache",
    "RelationStream",
    "ResolutionError",
    "RetractionUnsupportedError",
    "SessionError",
    "SessionReport",
    "SlidingWindow",
    "StaleViewError",
    "StratificationError",
    "StreamReport",
    "StreamScheduler",
    "Subscription",
    "TickDelta",
    "TicketNotRunError",
    "TumblingWindow",
    "UnknownTicketError",
    "ViewDelta",
    "VirtualDevice",
    "__version__",
    "default_cache",
]

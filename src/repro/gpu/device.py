"""The virtual GPU device.

The paper executes APM on CUDA hardware.  This reproduction substitutes a
*virtual device*: numpy-vectorized kernels operating on whole columns, which
is the same SIMD computational model APM codifies (no per-row control flow,
contiguous columnar buffers).  The device additionally models the two
hardware resources the paper's experiments depend on:

* **memory capacity** — allocations are charged against a byte budget; when
  the arena would exceed it, :class:`~repro.errors.DeviceOutOfMemory` is
  raised.  This reproduces the OOM rows of Table 3.
* **host<->device transfers** — moving a table on or off the device costs
  ``latency + bytes / bandwidth`` seconds of *simulated* time, accumulated in
  :attr:`DeviceProfile.transfer_seconds`.  The stratum-offload scheduling
  ablation (Fig. 10) is driven by this counter.

The device also keeps simple kernel-launch statistics used by tests and the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DeviceOutOfMemory

#: Default PCIe-like transfer model (roughly a Gen3 x16 link).
DEFAULT_BANDWIDTH_BYTES_PER_S = 12e9
DEFAULT_TRANSFER_LATENCY_S = 10e-6
#: Simulated cost of a fresh device allocation (cudaMalloc-style latency);
#: buffer reuse (§4.1) avoids it after the first fix-point iteration.
ALLOC_LATENCY_S = 5e-6
#: Device-to-device (NVLink-like) exchange model used by the sharded
#: executor: faster than the host link, but every cross-shard byte is
#: charged to the sending device.
DEFAULT_EXCHANGE_BANDWIDTH_BYTES_PER_S = 25e9
DEFAULT_EXCHANGE_LATENCY_S = 5e-6
#: Modeled kernel cost: a fixed launch overhead plus a per-row term.
#: This is the *simulated* compute clock the strong-scaling benchmarks
#: read — counter accounting, never host wall time.
KERNEL_LAUNCH_S = 2e-6
KERNEL_ROW_COST_S = 5e-10


@dataclass
class DeviceProfile:
    """Counters accumulated while a device executes APM programs."""

    kernel_launches: int = 0
    bytes_allocated: int = 0
    peak_arena_bytes: int = 0
    allocation_count: int = 0
    reused_allocations: int = 0
    host_to_device_transfers: int = 0
    device_to_host_transfers: int = 0
    transfer_bytes: int = 0
    transfer_seconds: float = 0.0
    alloc_seconds: float = 0.0
    #: Modeled device compute time (launch overhead + per-row cost).
    kernel_seconds: float = 0.0
    #: Device-to-device shuffle traffic (sharded execution): counted
    #: separately from host<->device transfers so exchange cost can be
    #: reported on its own in scale-out experiments.
    exchange_transfers: int = 0
    exchange_bytes: int = 0
    exchange_seconds: float = 0.0
    instruction_counts: dict[str, int] = field(default_factory=dict)

    def record_instruction(self, name: str) -> None:
        self.kernel_launches += 1
        self.instruction_counts[name] = self.instruction_counts.get(name, 0) + 1

    def reset(self) -> None:
        self.__init__()

    def snapshot(self) -> "DeviceProfile":
        """An independent copy of the current counters, for computing
        per-run deltas on a device shared across runs (sessions)."""
        copy = DeviceProfile(
            **{
                key: value
                for key, value in self.__dict__.items()
                if key != "instruction_counts"
            }
        )
        copy.instruction_counts = dict(self.instruction_counts)
        return copy

    @property
    def busy_seconds(self) -> float:
        """Modeled time this device spent occupied: kernels, host
        transfers, exchange traffic, and allocation latency.  The
        makespan of a multi-device run is the max of its shards'
        ``busy_seconds`` (devices run concurrently in the simulation)."""
        return (
            self.kernel_seconds
            + self.transfer_seconds
            + self.exchange_seconds
            + self.alloc_seconds
        )

    def busy_breakdown(self) -> "dict[str, float]":
        """The additive components of :attr:`busy_seconds`, keyed for
        metrics export — the serving layer publishes these as per-device
        gauges so operators can see *why* a device is the bottleneck
        (compute vs host transfers vs exchange vs allocation)."""
        return {
            "kernel_seconds": self.kernel_seconds,
            "transfer_seconds": self.transfer_seconds,
            "exchange_seconds": self.exchange_seconds,
            "alloc_seconds": self.alloc_seconds,
        }

    @classmethod
    def merge(cls, profiles: "list[DeviceProfile]") -> "DeviceProfile":
        """Counter-wise aggregation of several device profiles.

        Counters sum; ``peak_arena_bytes`` is a high-water mark, so the
        max is taken; ``instruction_counts`` merge per instruction.  Used
        to roll per-shard (or per-pool-device) profiles up into one
        fleet-wide view.
        """
        merged = cls()
        for profile in profiles:
            for key, value in profile.__dict__.items():
                if key == "instruction_counts":
                    continue
                if key == "peak_arena_bytes":
                    merged.peak_arena_bytes = max(merged.peak_arena_bytes, value)
                else:
                    setattr(merged, key, getattr(merged, key) + value)
            for name, count in profile.instruction_counts.items():
                merged.instruction_counts[name] = (
                    merged.instruction_counts.get(name, 0) + count
                )
        return merged

    def since(self, before: "DeviceProfile") -> "DeviceProfile":
        """Counters accumulated after ``before`` was snapshotted.

        ``peak_arena_bytes`` is a high-water mark, not a counter, so the
        later absolute value is reported rather than a difference.
        """
        delta = DeviceProfile()
        for key, value in self.__dict__.items():
            if key == "instruction_counts":
                continue
            if key == "peak_arena_bytes":
                setattr(delta, key, value)
            else:
                setattr(delta, key, value - getattr(before, key))
        delta.instruction_counts = {
            name: count - before.instruction_counts.get(name, 0)
            for name, count in self.instruction_counts.items()
            if count - before.instruction_counts.get(name, 0)
        }
        return delta


class VirtualDevice:
    """Arena-allocating register store with a memory and transfer model.

    Parameters
    ----------
    capacity_bytes:
        Maximum number of live arena bytes.  ``None`` means unbounded.
    bandwidth_bytes_per_s, transfer_latency_s:
        Parameters of the host<->device transfer cost model.
    reuse_buffers:
        When True (the buffer-reuse optimization of §4.1), buffers released
        at the end of a fix-point iteration are kept in per-size free lists
        and handed back to later allocations of compatible size/dtype
        instead of allocating fresh memory.
    """

    def __init__(
        self,
        capacity_bytes: int | None = None,
        bandwidth_bytes_per_s: float = DEFAULT_BANDWIDTH_BYTES_PER_S,
        transfer_latency_s: float = DEFAULT_TRANSFER_LATENCY_S,
        reuse_buffers: bool = True,
        exchange_bandwidth_bytes_per_s: float = DEFAULT_EXCHANGE_BANDWIDTH_BYTES_PER_S,
        exchange_latency_s: float = DEFAULT_EXCHANGE_LATENCY_S,
    ):
        self.capacity_bytes = capacity_bytes
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.transfer_latency_s = transfer_latency_s
        self.reuse_buffers = reuse_buffers
        self.exchange_bandwidth_bytes_per_s = exchange_bandwidth_bytes_per_s
        self.exchange_latency_s = exchange_latency_s
        self.profile = DeviceProfile()
        self._live_bytes = 0
        # Free lists keyed by (dtype str, itemsize-rounded capacity).
        self._free_lists: dict[tuple[str, int], list[np.ndarray]] = {}
        # Static registers (hash indices reused across iterations, §4.2).
        self._statics: dict[object, object] = {}

    # ------------------------------------------------------------------
    # Allocation

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    def allocate(self, size: int, dtype: np.dtype | str = np.int64) -> np.ndarray:
        """Allocate a vector register of ``size`` elements of ``dtype``."""
        dtype = np.dtype(dtype)
        nbytes = int(size) * dtype.itemsize
        if self.reuse_buffers:
            key = (dtype.str, self._bucket(nbytes))
            free = self._free_lists.get(key)
            if free:
                buffer = free.pop()
                self.profile.reused_allocations += 1
                self.profile.allocation_count += 1
                return buffer[:size] if buffer.shape[0] >= size else self._fresh(size, dtype)
        return self._fresh(size, dtype)

    def _fresh(self, size: int, dtype: np.dtype) -> np.ndarray:
        nbytes = int(size) * dtype.itemsize
        self._charge(nbytes)
        self.profile.allocation_count += 1
        self.profile.bytes_allocated += nbytes
        return np.empty(int(size), dtype=dtype)

    def _charge(self, nbytes: int) -> None:
        self._live_bytes += nbytes
        if self.capacity_bytes is not None and self._live_bytes > self.capacity_bytes:
            self._live_bytes -= nbytes
            raise DeviceOutOfMemory(
                f"allocation of {nbytes} bytes exceeds device capacity "
                f"({self._live_bytes} live of {self.capacity_bytes})"
            )
        self.profile.peak_arena_bytes = max(self.profile.peak_arena_bytes, self._live_bytes)

    def release(self, buffer: np.ndarray) -> None:
        """Return a buffer to the arena (free-list it if reuse is enabled)."""
        base = buffer.base if buffer.base is not None else buffer
        if self.reuse_buffers:
            key = (base.dtype.str, self._bucket(base.nbytes))
            self._free_lists.setdefault(key, []).append(base)
        else:
            self._live_bytes -= base.nbytes

    def reset_arena(self) -> None:
        """Drop all free lists and live accounting (end of a query)."""
        self._free_lists.clear()
        self._live_bytes = 0

    @staticmethod
    def _bucket(nbytes: int) -> int:
        """Round a byte size up to a power-of-two bucket for free lists."""
        if nbytes <= 0:
            return 0
        return 1 << (int(nbytes) - 1).bit_length()

    # ------------------------------------------------------------------
    # Static registers (§4.2)

    def get_static(self, key: object) -> object | None:
        return self._statics.get(key)

    def set_static(self, key: object, value: object) -> None:
        self._statics[key] = value

    def clear_statics(self) -> None:
        self._statics.clear()

    # ------------------------------------------------------------------
    # Transfer model (§5.3)

    def transfer_cost(self, nbytes: int) -> float:
        return self.transfer_latency_s + nbytes / self.bandwidth_bytes_per_s

    def record_transfer(self, nbytes: int, to_device: bool) -> None:
        if to_device:
            self.profile.host_to_device_transfers += 1
        else:
            self.profile.device_to_host_transfers += 1
        self.profile.transfer_bytes += nbytes
        self.profile.transfer_seconds += self.transfer_cost(nbytes)

    # ------------------------------------------------------------------
    # Device-to-device exchange model (sharded execution)

    def exchange_cost(self, nbytes: int) -> float:
        return self.exchange_latency_s + nbytes / self.exchange_bandwidth_bytes_per_s

    def record_exchange(self, nbytes: int) -> None:
        """Charge this device for shipping ``nbytes`` to a peer device.
        Every cross-shard crossing is counted once, at the sender."""
        self.profile.exchange_transfers += 1
        self.profile.exchange_bytes += nbytes
        self.profile.exchange_seconds += self.exchange_cost(nbytes)

    # ------------------------------------------------------------------
    # Kernel cost model

    def record_kernel(self, n_rows: int) -> None:
        """Charge the modeled compute clock for one kernel producing
        ``n_rows`` output rows (launch overhead + per-row cost)."""
        self.profile.kernel_seconds += KERNEL_LAUNCH_S + n_rows * KERNEL_ROW_COST_S

"""A pool of virtual devices for throughput serving.

Where the :class:`~repro.dist.executor.ShardedExecutor` splits *one*
query across N devices (latency scaling), a :class:`DevicePool` spreads
*independent* queries across N devices (throughput scaling) — the
serving-fleet pattern for a :class:`~repro.runtime.session.
LobsterSession` draining many databases, and the dispatch substrate of
the :class:`~repro.serve.scheduler.Scheduler`.

Two acquisition policies are supported:

* ``"round-robin"`` — fair rotation, oblivious to load; right when
  queries are i.i.d. and the pool drains an offline batch.
* ``"least-loaded"`` — pick the device with the smallest modeled
  :attr:`~repro.gpu.device.DeviceProfile.busy_seconds`; right for
  online serving, where query cost varies and a hot device would
  otherwise keep receiving work it cannot start.

The pool is thread-safe: worker threads can interleave :meth:`acquire`
calls and still get a fair (or load-balanced) assignment.
"""

from __future__ import annotations

import threading

from ..gpu.device import DeviceProfile, VirtualDevice

#: Valid acquisition policies.
POLICIES = ("round-robin", "least-loaded")


class DevicePool:
    """Scheduler over a fixed set of virtual devices."""

    def __init__(
        self,
        n_devices: int = 2,
        devices: list[VirtualDevice] | None = None,
        policy: str = "round-robin",
        **device_kwargs,
    ):
        """Builds ``n_devices`` fresh :class:`VirtualDevice`\\ s (passing
        ``device_kwargs`` through) unless ``devices`` supplies the pool
        explicitly.  ``policy`` sets the default acquisition mode."""
        if devices is not None:
            self.devices = list(devices)
        else:
            self.devices = [VirtualDevice(**device_kwargs) for _ in range(n_devices)]
        if not self.devices:
            raise ValueError("DevicePool needs at least one device")
        if policy not in POLICIES:
            raise ValueError(f"unknown pool policy {policy!r}; pick from {POLICIES}")
        self.policy = policy
        self._next = 0
        self._lock = threading.Lock()
        #: Serializes session drains over this pool (see LobsterSession:
        #: sessions sharing a pool must not interleave on its devices).
        self._drain_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.devices)

    def acquire(
        self,
        policy: str | None = None,
        eligible: list[int] | None = None,
    ) -> tuple[int, VirtualDevice]:
        """Next ``(index, device)`` under ``policy`` (default: the
        pool's own), thread-safe.

        ``eligible`` restricts the choice to a subset of device indices
        — the serving scheduler passes the devices that are *free on
        the serve clock*, so least-loaded selection never lands a batch
        on a device that is still mid-batch in simulated time.
        """
        policy = policy or self.policy
        if policy not in POLICIES:
            raise ValueError(f"unknown pool policy {policy!r}; pick from {POLICIES}")
        if eligible is None:
            indices: list[int] | range = range(len(self.devices))
        else:
            bad = [i for i in eligible if not 0 <= i < len(self.devices)]
            if bad:
                raise ValueError(
                    f"eligible indices {bad} out of range for a "
                    f"{len(self.devices)}-device pool"
                )
            indices = eligible
        if not indices:
            raise ValueError("acquire() needs at least one eligible device")
        with self._lock:
            if policy == "round-robin":
                if eligible is None:
                    index = self._next
                    self._next = (self._next + 1) % len(self.devices)
                else:
                    # Rotate within the eligible subset, preserving the
                    # global cursor's fairness.
                    index = min(
                        indices,
                        key=lambda i: ((i - self._next) % len(self.devices), i),
                    )
                    self._next = (index + 1) % len(self.devices)
            else:  # least-loaded: smallest modeled busy time, ties -> lowest index
                index = min(
                    indices,
                    key=lambda i: (self.devices[i].profile.busy_seconds, i),
                )
        return index, self.devices[index]

    def merged_profile(self) -> DeviceProfile:
        """Counter-wise rollup of every device's live profile."""
        return DeviceProfile.merge([device.profile for device in self.devices])

"""RNA secondary structure prediction via probabilistic CFG parsing.

Parses random RNA sequences with the Nussinov-style folding grammar; the
top-1 proof of the full-span parse *is* the predicted secondary structure
(the set of base pairings used), and its probability is the structure's
likelihood under the pairing model.

Run with:  python examples/rna_folding.py
"""

import numpy as np

from repro import LobsterEngine
from repro.workloads import rna


def main() -> None:
    engine = LobsterEngine(
        rna.PROGRAM, provenance="prob-top-1-proofs", proof_capacity=128
    )

    for length in (28, 40, 60):
        instance = rna.generate_instance(length, seed=length)
        database = engine.create_database()
        pair_ids = rna.populate_database(database, instance)
        result = engine.run(database)

        table = database.result("folded")
        assert table.n_rows == 1, "sequence failed to parse"
        probability = database.provenance.prob(table.tags)[0]

        # Decode the structure from the winning proof: which pair_score
        # facts participate.
        proof = set(table.tags["proof"][0].tolist())
        pairings = [
            instance.pair_candidates[k]
            for k, fact_id in enumerate(pair_ids)
            if int(fact_id) in proof
        ]
        dots = ["."] * length
        for i, j in pairings:
            dots[i], dots[j] = "(", ")"
        print(f"{instance.sequence}")
        print(f"{''.join(dots)}   P={probability:.3e} "
              f"({len(pairings)} pairs, {result.wall_seconds:.2f}s)")


if __name__ == "__main__":
    main()

"""CRC-framed record streams: the on-disk grammar of WAL and checkpoint
files.

A file is a sequence of frames; each frame is::

    +----------+----------+------------------+
    | len: u32 | crc: u32 | payload (len B)  |
    +----------+----------+------------------+

with ``crc = crc32(payload)``.  The frame header is what makes a *torn
tail* detectable without any out-of-band metadata: a crash mid-append
leaves either a partial header, a header whose length overruns the
file, or a payload whose CRC disagrees — in every case
:func:`read_frames` stops at the last complete frame and reports how
many bytes it dropped.  Tolerant reads (the WAL replay path) treat that
silently — the lost record describes a tick the deterministic stream
source will simply regenerate; strict reads (checkpoint files, which
are swapped in atomically and must therefore be complete) raise
:class:`~repro.errors.CorruptLogError` instead.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from ..errors import CorruptLogError

__all__ = ["FrameScan", "frame", "read_frames"]

_HEADER = struct.Struct("<II")

#: Guard against a corrupted length field causing a giant allocation.
MAX_FRAME_BYTES = 1 << 30


def frame(payload: bytes) -> bytes:
    """Wrap one payload in a length + CRC32 header."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class FrameScan:
    """The result of scanning a byte stream for frames."""

    payloads: list[bytes] = field(default_factory=list)
    #: Bytes dropped from the end (0 when the stream ended exactly on a
    #: frame boundary).
    truncated_bytes: int = 0

    @property
    def clean(self) -> bool:
        return self.truncated_bytes == 0


def read_frames(data: bytes, *, strict: bool = False) -> FrameScan:
    """Parse frames until the data ends or a frame fails to validate.

    ``strict=False`` (WAL semantics) stops at the first incomplete or
    CRC-failing frame and counts the remainder as the torn tail;
    ``strict=True`` (checkpoint semantics) raises
    :class:`~repro.errors.CorruptLogError` in that case.
    """
    scan = FrameScan()
    pos = 0
    n = len(data)
    while pos < n:
        if pos + _HEADER.size > n:
            break
        length, crc = _HEADER.unpack_from(data, pos)
        if length > MAX_FRAME_BYTES or pos + _HEADER.size + length > n:
            break
        payload = data[pos + _HEADER.size : pos + _HEADER.size + length]
        if zlib.crc32(payload) != crc:
            break
        scan.payloads.append(payload)
        pos += _HEADER.size + length
    scan.truncated_bytes = n - pos
    if strict and not scan.clean:
        raise CorruptLogError(
            f"{scan.truncated_bytes} bytes fail CRC framing after "
            f"{len(scan.payloads)} valid record(s)"
        )
    return scan

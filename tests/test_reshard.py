"""Skew-aware elastic resharding: hot-key reports, cost-gated planning,
and the serve-side ElasticController.

Three contracts anchor the subsystem:

* **Determinism** — identical stats produce identical hot-key reports
  and identical migrate/decline decisions (a fleet of replicas planning
  from the same evidence must converge on the same layout);
* **Cost gating** — a migration happens only when the priced payback
  strictly beats the modeled shuffle bill, so a uniform workload (or a
  one-run horizon) never pays for a reshard it cannot amortize;
* **Transparency** — resharding a served engine between micro-batches
  never changes query results, and the migration window is charged to
  the serve clock like any other busy time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    LobsterEngine,
    LobsterError,
    ElasticController,
    Request,
    ReshardPlanner,
    Scheduler,
    ShardMap,
    MaterializedView,
    StreamScheduler,
)
from repro.dist.reshard import RelationLoad
from repro.serve import MetricsRegistry
from repro.stats.hotkeys import HotKey, hot_key_report, hot_keys
from repro.stream import RelationStream, TumblingWindow
from _helpers import TC_PROGRAM


def hub_edges(n_spokes=30, n_random=60, seed=19):
    """TC fact base where node 0 fans out to many spokes: key 0 is hot
    under keyed-by-source ownership."""
    rng = np.random.default_rng(seed)
    edges = {(0, int(t)) for t in rng.integers(1, n_spokes, size=n_spokes)}
    edges |= {
        (int(a), int(b))
        for a, b in zip(
            rng.integers(0, n_spokes, size=n_random),
            rng.integers(0, n_spokes, size=n_random),
        )
        if a != b
    }
    return sorted(edges)


def relation_stats_for(values):
    """RelationStats over a single-column table holding ``values``."""
    from repro.provenance import registry
    from repro.runtime.table import Table

    provenance = registry.create("unit")
    provenance.setup(np.zeros(0))
    table = Table(
        [np.asarray(values, dtype=np.int64)],
        provenance.one_tags(len(values)),
        len(values),
    )
    from repro.stats import RelationStats

    return RelationStats.from_table(table)


class TestHotKeyReport:
    def test_reports_the_heavy_hitter_above_threshold(self):
        values = np.array([7] * 60 + list(range(100, 140)), dtype=np.int64)
        stats = relation_stats_for(values)
        report = hot_key_report("edge", 0, stats, values, mass_threshold=0.25)
        assert report
        assert report.keys[0].value == 7
        assert report.keys[0].fraction >= 0.25
        # The long uniform tail stays out of the report.
        assert all(key.value == 7 for key in report.keys)

    def test_no_hot_keys_on_uniform_data(self):
        values = np.arange(500, dtype=np.int64)
        stats = relation_stats_for(values)
        report = hot_key_report("edge", 0, stats, values)
        assert not report
        assert report.hot_fraction == 0.0

    def test_deterministic_and_tie_breaks_toward_smaller_value(self):
        values = np.array([3] * 40 + [9] * 40 + [1] * 10, dtype=np.int64)
        stats = relation_stats_for(values)
        first = hot_keys(stats.columns[0], values, mass_threshold=0.2)
        second = hot_keys(stats.columns[0], values, mass_threshold=0.2)
        assert first == second
        assert [key.value for key in first] == [3, 9]

    def test_top_k_truncates_after_ranking(self):
        values = np.concatenate(
            [np.full(30 - i, i, dtype=np.int64) for i in range(10)]
        )
        stats = relation_stats_for(values)
        keys = hot_keys(
            stats.columns[0], values, top_k=3, mass_threshold=0.01
        )
        assert len(keys) == 3
        assert [key.value for key in keys] == [0, 1, 2]

    def test_out_of_range_column_is_empty(self):
        values = np.arange(50, dtype=np.int64)
        stats = relation_stats_for(values)
        assert not hot_key_report("edge", 5, stats, values)

    def test_counts_never_undercount(self):
        # CMS overestimates only: the reported count is >= the exact one.
        rng = np.random.default_rng(31)
        values = np.concatenate(
            [np.full(200, 42, dtype=np.int64), rng.integers(0, 1000, 800)]
        )
        stats = relation_stats_for(values)
        report = hot_key_report("edge", 0, stats, values, mass_threshold=0.1)
        assert report.keys[0].value == 42
        assert report.keys[0].count >= 200


class TestReshardPlanner:
    def skewed_workload(self, rows=10_000.0, hot_fraction=0.6):
        hot = rows * hot_fraction
        return {
            "path": RelationLoad(
                rows=rows,
                key_column=0,
                hot_keys=(HotKey(value=0, count=hot, fraction=hot_fraction),),
            )
        }

    def test_modeled_units_sees_skew_only_under_keyed_maps(self):
        planner = ReshardPlanner({"path": 0})
        workload = self.skewed_workload()
        uniform = planner.modeled_units(ShardMap(4), workload)
        keyed = planner.modeled_units(
            ShardMap(4, key_columns={"path": 0}), workload
        )
        split = planner.modeled_units(
            ShardMap(
                4,
                key_columns={"path": 0},
                splits={"path": {0: (0, 1, 2, 3)}},
            ),
            workload,
        )
        assert uniform == pytest.approx(2500.0)
        assert keyed >= 6000.0  # the hot key lands whole on one shard
        assert split == pytest.approx(2500.0)  # fan-out restores balance

    def test_migrates_under_skew_with_amortizing_horizon(self):
        planner = ReshardPlanner({"path": 0}, max_shards=8, horizon_runs=16)
        plan = planner.plan(
            ShardMap(2, key_columns={"path": 0}),
            self.skewed_workload(),
            busy_s=0.05,
        )
        assert plan.migrate
        assert plan.target_shards > 2
        assert plan.splits >= 1
        assert plan.payback_s > plan.migration_s
        assert "payback" in plan.reason

    def test_declines_with_no_amortization_horizon(self):
        planner = ReshardPlanner({"path": 0}, max_shards=8)
        plan = planner.plan(
            ShardMap(2, key_columns={"path": 0}),
            self.skewed_workload(),
            busy_s=0.05,
            horizon_runs=0,
        )
        assert not plan.migrate
        assert plan.target is not None
        assert plan.target.n_shards == 2  # status quo kept
        assert plan.payback_s <= plan.migration_s

    def test_uniform_workload_is_already_balanced(self):
        planner = ReshardPlanner(max_shards=8, horizon_runs=100)
        workload = {"path": RelationLoad(rows=10_000.0)}
        plan = planner.plan(ShardMap(4), workload, busy_s=1.0)
        # Row-hash routing spreads a keyless workload evenly at any S;
        # growing only helps via 1/S, so S=8 wins the unit comparison —
        # but without observed skew the planner must still price it.
        assert plan.units_before > 0
        if plan.migrate:
            # growth is allowed when amortized; shrink never triggers
            assert plan.target_shards >= 4
        second = planner.plan(ShardMap(4), workload, busy_s=1.0)
        assert second.migrate == plan.migrate
        assert second.target_shards == plan.target_shards

    def test_plan_is_deterministic(self):
        planner = ReshardPlanner({"path": 0}, max_shards=6, horizon_runs=8)
        workload = self.skewed_workload()
        current = ShardMap(3, key_columns={"path": 0})
        first = planner.plan(current, workload, busy_s=0.01)
        second = planner.plan(current, workload, busy_s=0.01)
        assert first.reason == second.reason
        assert first.target_shards == second.target_shards
        assert first.target.splits == second.target.splits

    def test_migration_rows_scale_with_layout_distance(self):
        planner = ReshardPlanner({"path": 0})
        workload = self.skewed_workload(rows=1000.0)
        near = planner._migration_rows(
            ShardMap(4, key_columns={"path": 0}),
            ShardMap(5, key_columns={"path": 0}),
            workload,
        )
        far = planner._migration_rows(
            ShardMap(1, key_columns={"path": 0}),
            ShardMap(8, key_columns={"path": 0}),
            workload,
        )
        assert 0.0 < near < far <= 1000.0

    def test_migration_seconds_follow_exchange_model(self):
        planner = ReshardPlanner(
            row_bytes=24.0,
            exchange_bandwidth_bytes_per_s=1e9,
            exchange_latency_s=1e-6,
        )
        assert planner.migration_seconds(0.0, 4) == 0.0
        cost = planner.migration_seconds(1e6, 4)
        assert cost == pytest.approx(4e-6 + 24e6 / 1e9)

    def test_bad_shard_band_rejected(self):
        with pytest.raises(ValueError, match="min_shards"):
            ReshardPlanner(min_shards=0)
        with pytest.raises(ValueError, match="min_shards"):
            ReshardPlanner(min_shards=4, max_shards=2)


class TestEngineReshard:
    def test_reshard_resizes_devices_and_preserves_results(self):
        edges = hub_edges()
        engine = LobsterEngine(
            TC_PROGRAM, shard_map=ShardMap(2, key_columns={"path": 0})
        )
        db = engine.create_database()
        db.add_facts("edge", edges)
        engine.run(db)
        before = db.result("path").rows()

        engine.reshard(
            ShardMap(
                4,
                key_columns={"path": 0},
                splits={"path": {0: (0, 1, 2, 3)}},
            )
        )
        assert engine.shards == 4
        assert len(engine.shard_devices) == 4
        db2 = engine.create_database()
        db2.add_facts("edge", edges)
        result = engine.run(db2)
        assert result.shards == 4
        assert db2.result("path").rows() == before

        engine.reshard(ShardMap(1))
        assert engine.shards == 1
        db3 = engine.create_database()
        db3.add_facts("edge", edges)
        engine.run(db3)
        assert db3.result("path").rows() == before

    def test_invalid_reshard_rejected(self):
        engine = LobsterEngine(TC_PROGRAM, shards=2)
        with pytest.raises(ValueError):
            ShardMap(0)

    def test_shard_map_engine_validation(self):
        with pytest.raises(LobsterError, match="shard"):
            LobsterEngine(TC_PROGRAM, shards=3, shard_map=ShardMap(2))


class TestElasticController:
    def make_elastic(self, horizon_runs=16, **kwargs):
        engine = LobsterEngine(
            TC_PROGRAM, shard_map=ShardMap(2, key_columns={"path": 0})
        )
        controller = ElasticController(
            engine,
            max_shards=8,
            horizon_runs=horizon_runs,
            mass_threshold=0.1,
            **kwargs,
        )
        return engine, controller

    def run_once(self, engine):
        db = engine.create_database()
        db.add_facts("edge", hub_edges())
        result = engine.run(db)
        return db, result

    def test_manages_only_its_engine(self):
        engine, controller = self.make_elastic()
        other = LobsterEngine(TC_PROGRAM, shards=2)
        assert controller.manages(engine)
        assert not controller.manages(other)

    def test_no_plan_before_observations(self):
        _, controller = self.make_elastic()
        assert controller.maybe_reshard() is None

    def test_observe_then_migrate_under_skew(self):
        engine, controller = self.make_elastic()
        db, result = self.run_once(engine)
        controller.observe(db, result)
        plan = controller.maybe_reshard()
        assert plan is not None and plan.migrate
        assert engine.shards == plan.target_shards > 2
        assert controller.metrics.counter("reshard.migrations").value == 1
        assert controller.metrics.gauge("reshard.shards").value == engine.shards
        # Post-migration results are unchanged.
        db2, _ = self.run_once(engine)
        assert db2.result("path").rows() == db.result("path").rows()

    def test_cooldown_blocks_back_to_back_migrations(self):
        engine, controller = self.make_elastic(cooldown_runs=3)
        db, result = self.run_once(engine)
        controller.observe(db, result)
        assert controller.maybe_reshard() is not None  # first is free
        db2, result2 = self.run_once(engine)
        controller.observe(db2, result2)
        assert controller.maybe_reshard() is None  # 1 of 3 runs seen
        controller.observe(db2, result2)
        controller.observe(db2, result2)
        # Cooldown satisfied: planning resumes (decision may be either).
        plan = controller.maybe_reshard()
        assert plan is not None or controller.metrics.counter(
            "reshard.plans"
        ).value >= 1

    def test_short_horizon_declines_and_counts_it(self):
        engine, controller = self.make_elastic(horizon_runs=0)
        db, result = self.run_once(engine)
        controller.observe(db, result)
        plan = controller.maybe_reshard()
        assert plan is not None and not plan.migrate
        assert engine.shards == 2
        assert controller.metrics.counter("reshard.declined").value == 1
        assert controller.metrics.counter("reshard.migrations").value == 0


class TestSchedulerIntegration:
    def requests(self, engine, n=6):
        out = []
        for i in range(n):
            db = engine.create_database()
            db.add_facts("edge", hub_edges())
            out.append(
                Request(engine, db, slo="batch", arrival_s=i * 1e-4)
            )
        return out

    def test_unmanaged_sharded_engine_still_rejected(self):
        scheduler = Scheduler(n_devices=2)
        engine = LobsterEngine(TC_PROGRAM, shards=2)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        with pytest.raises(LobsterError, match="Elastic"):
            scheduler.submit(Request(engine, db, slo="batch", arrival_s=0.0))

    def test_elastic_engine_served_and_resharded_mid_drain(self):
        metrics = MetricsRegistry()
        engine = LobsterEngine(
            TC_PROGRAM, shard_map=ShardMap(2, key_columns={"path": 0})
        )
        controller = ElasticController(
            engine,
            max_shards=8,
            horizon_runs=16,
            mass_threshold=0.1,
            metrics=metrics,
        )
        scheduler = Scheduler(n_devices=2, metrics=metrics, elastic=controller)
        requests = self.requests(engine)
        report = scheduler.run(requests)
        completed = [o for o in report.outcomes if o.status == "completed"]
        assert len(completed) == 6
        assert metrics.counter("reshard.migrations").value >= 1
        assert engine.shards > 2
        # Every request's database holds the same rows: the migration
        # happened between batches and never corrupted a result.
        results = {
            tuple(request.database.result("path").rows())
            for request in requests
        }
        assert len(results) == 1

    def test_migration_charges_the_serve_clock(self):
        engine = LobsterEngine(
            TC_PROGRAM, shard_map=ShardMap(2, key_columns={"path": 0})
        )
        controller = ElasticController(
            engine, max_shards=8, horizon_runs=16, mass_threshold=0.1
        )
        elastic_scheduler = Scheduler(n_devices=2, elastic=controller)
        elastic_report = elastic_scheduler.run(self.requests(engine))
        migrated = [p for p in controller.plans if p.migrate]
        assert migrated
        # The drain's makespan covers the migration window: the horizon
        # the scheduler charged includes plan.migration_s.
        last = max(o.finish_s for o in elastic_report.outcomes)
        assert elastic_report.makespan_s >= last

    def test_mixed_traffic_non_elastic_engines_unaffected(self):
        engine = LobsterEngine(
            TC_PROGRAM, shard_map=ShardMap(2, key_columns={"path": 0})
        )
        controller = ElasticController(
            engine, max_shards=4, horizon_runs=16, mass_threshold=0.1
        )
        plain = LobsterEngine(TC_PROGRAM)
        scheduler = Scheduler(n_devices=2, elastic=controller)
        plain_db = plain.create_database()
        plain_db.add_facts("edge", [(0, 1), (1, 2)])
        requests = self.requests(engine, n=3) + [
            Request(plain, plain_db, slo="batch", arrival_s=0.0)
        ]
        report = scheduler.run(requests)
        assert sum(1 for o in report.outcomes if o.status == "completed") == 4
        assert sorted(plain_db.result("path").rows()) == [(0, 1), (0, 2), (1, 2)]


class TestStreamSchedulerSeam:
    def test_elastic_probe_runs_between_ticks(self):
        engine = LobsterEngine(
            TC_PROGRAM, shard_map=ShardMap(2, key_columns={"path": 0})
        )
        controller = ElasticController(
            engine, max_shards=8, horizon_runs=16, mass_threshold=0.1
        )
        # Pre-load observations as a request drain would have.
        db = engine.create_database()
        db.add_facts("edge", hub_edges())
        result = engine.run(db)
        controller.observe(db, result)

        scheduler = StreamScheduler(n_devices=1, elastic=controller)
        view_engine = LobsterEngine(TC_PROGRAM)
        view = MaterializedView(view_engine, name="tc")
        window = TumblingWindow(
            RelationStream("edge", [(i, i + 1) for i in range(10)], 2, seed=3),
            3,
        )
        scheduler.register(view, window, period_s=1e-4)
        scheduler.run(4)
        # The tick loop probed the controller, which migrated its engine
        # (the stream's own single-device view engine is untouched).
        assert controller.metrics.counter("reshard.plans").value >= 1
        assert engine.shards > 2
        assert not view_engine._use_sharded()

"""Small, deterministic, *mergeable* sketches backing per-column statistics.

Two classic streaming summaries, chosen so that incremental maintenance is
**exactly** equal to recomputation from scratch (the property the stats
test-suite checks with hypothesis):

* :class:`KmvSketch` — a k-minimum-values distinct-count estimator.  The
  sketch keeps the ``k`` smallest 64-bit hashes of the values seen.  For
  any split of a value multiset into batches, folding the batches in one
  at a time yields the same sketch as hashing the union (the k smallest
  of a union is the k smallest of the per-part minima), so insert-order
  never matters.  Below ``k`` distinct values the count is *exact*.
* :class:`CountMinSketch` — a linear frequency sketch (depth x width
  counters).  Linearity means ``cms(A) + cms(B) == cms(A ⊎ B)`` counter
  for counter, so adds (and, in principle, signed deletes) commute with
  recomputation.  Point queries over-estimate only; the inner product of
  two column sketches upper-bounds — and on realistic data tracks — the
  equi-join size on that column, which is how the cost-based planner
  prices skewed joins without scanning data.

Hashing uses the same splitmix64 finalizer as :mod:`repro.dist.partition`
(the repo's deterministic cross-platform row hash), restated here rather
than imported — ``dist`` sits above the runtime in the import graph and
the storage layer feeds these sketches.  Float columns hash their
IEEE-754 bits with ``-0.0`` canonicalized, matching the partitioner's
convention so value-equal rows always agree.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CountMinSketch", "KmvSketch", "hash_values"]

#: Distinct hashes retained by a KMV sketch.  Exact up to this many
#: distinct values; ~1/sqrt(k-1) (~9%) relative standard error beyond.
DEFAULT_KMV_K = 128
#: Count-min geometry: small enough to keep advance() cheap, wide enough
#: that heavy hitters dominate their buckets on the workloads we serve.
DEFAULT_CMS_WIDTH = 256
DEFAULT_CMS_DEPTH = 2

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def _mix64(bits: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (same constants as the sharded
    executor's row hash)."""
    with np.errstate(over="ignore"):
        z = bits + _SPLITMIX_GAMMA
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


#: Per-row hash seeds for the CMS depth dimension (arbitrary odd salts).
_CMS_SEEDS = (
    np.uint64(0x9E3779B97F4A7C15),
    np.uint64(0xC2B2AE3D27D4EB4F),
    np.uint64(0x165667B19E3779F9),
    np.uint64(0x27D4EB2F165667C5),
)


def hash_values(values: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit hash per element of one column."""
    values = np.asarray(values)
    if values.dtype.kind == "f":
        bits = (values.astype(np.float64) + 0.0).view(np.uint64)
    else:
        bits = values.astype(np.int64).view(np.uint64)
    return _mix64(bits)


class KmvSketch:
    """K-minimum-values distinct-count estimator (insert-mergeable)."""

    def __init__(self, k: int = DEFAULT_KMV_K):
        self.k = k
        #: Sorted unique hashes, at most ``k`` of them — the k smallest
        #: seen so far.
        self.mins = np.empty(0, dtype=np.uint64)
        #: Whether the sketch ever overflowed ``k`` (estimation mode).
        self.saturated = False

    def add(self, values: np.ndarray) -> None:
        if len(values) == 0:
            return
        hashes = np.unique(hash_values(values))
        merged = np.unique(np.concatenate([self.mins, hashes]))
        if len(merged) > self.k:
            self.saturated = True
            merged = merged[: self.k]
        self.mins = merged

    def estimate(self) -> float:
        """Estimated distinct count; exact while unsaturated."""
        if not self.saturated:
            return float(len(self.mins))
        # Classic KMV: (k - 1) / normalized k-th minimum.
        kth = float(self.mins[-1]) + 1.0
        return (self.k - 1) / (kth / 2.0**64)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KmvSketch)
            and self.k == other.k
            and self.saturated == other.saturated
            and np.array_equal(self.mins, other.mins)
        )

    def state_dict(self) -> dict:
        """Serializable snapshot; restoring it reproduces the sketch
        exactly (hash sets are data, not derived state)."""
        return {"k": self.k, "mins": self.mins, "saturated": self.saturated}

    @classmethod
    def from_state(cls, state: dict) -> "KmvSketch":
        sketch = cls(int(state["k"]))
        sketch.mins = np.asarray(state["mins"], dtype=np.uint64)
        sketch.saturated = bool(state["saturated"])
        return sketch


class CountMinSketch:
    """Linear count-min frequency sketch over one column's values."""

    def __init__(self, width: int = DEFAULT_CMS_WIDTH, depth: int = DEFAULT_CMS_DEPTH):
        if depth > len(_CMS_SEEDS):
            raise ValueError(f"depth must be <= {len(_CMS_SEEDS)}")
        self.width = width
        self.depth = depth
        self.counts = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    def _buckets(self, values: np.ndarray, row: int) -> np.ndarray:
        with np.errstate(over="ignore"):
            salted = hash_values(values) * _CMS_SEEDS[row] + _CMS_SEEDS[row]
        return (_mix64(salted) % np.uint64(self.width)).astype(np.int64)

    def add(self, values: np.ndarray, sign: int = 1) -> None:
        """Fold values in (``sign=-1`` removes previously added values —
        linearity makes the subtraction exact)."""
        n = len(values)
        if n == 0:
            return
        for row in range(self.depth):
            self.counts[row] += sign * np.bincount(
                self._buckets(values, row), minlength=self.width
            )
        self.total += sign * n

    def count(self, value) -> int:
        """Point estimate of one value's frequency (never undercounts)."""
        single = np.asarray([value])
        return int(
            min(
                self.counts[row][self._buckets(single, row)[0]]
                for row in range(self.depth)
            )
        )

    def inner_product(self, other: "CountMinSketch") -> float:
        """Estimated equi-join size between the two columns (the classic
        CMS join-size estimator: min over depths of the bucket-wise dot
        product).  Never undercounts; captures skew that distinct-count
        formulas miss — a shared heavy hitter multiplies out."""
        if self.width != other.width or self.depth != other.depth:
            raise ValueError("inner_product requires identical CMS geometry")
        return float(
            min(
                int(np.dot(self.counts[row], other.counts[row]))
                for row in range(self.depth)
            )
        )

    def max_frequency(self) -> int:
        """Upper bound on the most frequent value's count (skew signal)."""
        if self.total == 0:
            return 0
        return int(min(self.counts[row].max() for row in range(self.depth)))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CountMinSketch)
            and self.width == other.width
            and self.depth == other.depth
            and self.total == other.total
            and np.array_equal(self.counts, other.counts)
        )

    def state_dict(self) -> dict:
        return {
            "width": self.width,
            "depth": self.depth,
            "counts": self.counts,
            "total": self.total,
        }

    @classmethod
    def from_state(cls, state: dict) -> "CountMinSketch":
        sketch = cls(int(state["width"]), int(state["depth"]))
        sketch.counts = np.asarray(state["counts"], dtype=np.int64)
        sketch.total = int(state["total"])
        return sketch

"""Exception hierarchy for the repro package.

Every error raised by the compiler, runtime, or device derives from
:class:`LobsterError` so applications can catch framework failures with a
single except clause.
"""

from __future__ import annotations


class LobsterError(Exception):
    """Base class for all errors raised by this framework."""


class ParseError(LobsterError):
    """Raised when Datalog source text cannot be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ResolutionError(LobsterError):
    """Raised when a program refers to undeclared relations or variables."""


class StratificationError(LobsterError):
    """Raised when a program cannot be stratified (e.g. negation cycles)."""


class CompileError(LobsterError):
    """Raised when RAM cannot be lowered to APM."""


class ExecutionError(LobsterError):
    """Raised when an APM program fails at runtime."""


class DeviceOutOfMemory(ExecutionError):
    """Raised when an allocation exceeds the virtual device's capacity.

    Mirrors a CUDA out-of-memory failure; benchmark harnesses catch this to
    report "OOM" rows as in Table 3 of the paper.
    """


class EvaluationTimeout(LobsterError):
    """Raised by baseline engines when a configured wall-clock budget expires.

    Used to reproduce the paper's 2-hour ProbLog timeouts at a smaller scale.
    """


class ProvenanceError(LobsterError):
    """Raised on invalid tag operations (e.g. proof capacity overflow)."""


class RetractionUnsupportedError(LobsterError):
    """Raised when DRed-style maintain was explicitly requested
    (``engine.run(db, maintain=True)``) but the program or provenance
    cannot support it.

    The engine's automatic path never raises this: it records the same
    ``reason`` on :attr:`ExecutionResult.maintain_fallback` and falls
    back to a checkpointed recompute (retractions applied to the input
    fact log, then a cold rerun) — slower, never wrong.  The two
    fallback classes are stratified negation (a retraction can *add*
    negated conclusions, which over-delete/re-derive does not model)
    and a non-idempotent ⊕ (re-derivation from warm state would
    double-count alternatives, e.g. ``addmultprob``'s sum).
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(f"retraction maintain unsupported: {reason}")


class JitUnsupportedError(LobsterError):
    """Raised by the trace-JIT's region selector / fusion compiler when a
    construct has no fused translation: stratified negation
    (``AntiProbe``/``PassIfEmpty``), a non-idempotent ⊕ (fused ⊕-merge
    would reassociate sums), or an unknown instruction.

    Like :class:`RetractionUnsupportedError`, the engine's automatic
    path never lets this escape: the offending variant (or the whole
    trace) simply keeps executing through the interpreter, and the
    reason is recorded on :attr:`ExecutionResult.jit_deopt`.
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(f"trace-JIT unsupported: {reason}")


class TraceGuardError(ExecutionError):
    """Raised when a compiled trace's guard fails at run time: the
    database no longer matches the specialization the trace was compiled
    against (column dtype drift, a tag dtype from a different semiring
    configuration, schema shape changes).

    Guards run *before* any fused kernel side effect, so the engine
    catches this, re-executes the variant through the interpreter, and
    records the reason on :attr:`ExecutionResult.jit_deopt` — a clean
    deoptimization, never a wrong result.
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(f"trace guard failed: {reason}")


class StaleViewError(LobsterError):
    """Raised when a materialized view (or one of its subscriptions) can
    no longer reconcile its state.

    Two cases: the view's database was evaluated or mutated outside the
    view's tick path (the view's retained result no longer corresponds
    to the database — call :meth:`MaterializedView.refresh`), or a
    subscription's cursor points at tick history the view has already
    pruned (re-subscribe, or raise the view's ``max_history``).
    """


class CorruptLogError(LobsterError):
    """Raised when a durability artifact is unreadable *beyond* the
    torn-tail case.

    A write-ahead log whose final record was cut short by a crash is
    **not** an error: recovery silently truncates the torn tail and
    resumes from the last complete record (the live stream regenerates
    the lost tick).  This exception covers the cases silent truncation
    cannot repair: a checkpoint file whose CRC framing fails (checkpoints
    are swapped in atomically, so a bad one was corrupted at rest, not
    torn), a strict read that found trailing garbage, or a WAL record
    that disagrees with the deterministic stream source it claims to
    describe.
    """


class CheckpointMismatchError(LobsterError):
    """Raised when a checkpoint (or exported database) is structurally
    incompatible with the process trying to load it: a different format
    version, a different provenance semiring than the engine's, a stream
    name with no registered setup, or a feed whose shape (window
    class/size) differs from the one that wrote the state.  Unlike a
    torn log tail this is never silently recoverable — loading would
    produce a *wrong* state rather than a merely older one.
    """


class BenchRecordError(LobsterError):
    """Raised when a machine-readable benchmark record (``BENCH_*.json``)
    fails schema validation: wrong/missing ``schema_version``, missing
    required fields, or ill-typed trial samples.  A record that fails to
    validate is never silently gated against — regression checks need to
    trust both sides of the comparison.
    """


class SessionError(LobsterError):
    """Raised on invalid session ticket operations."""


class UnknownTicketError(SessionError):
    """Raised when a session is asked about a ticket it never issued."""

    def __init__(self, ticket: int):
        self.ticket = ticket
        super().__init__(
            f"unknown session ticket {ticket}: this session never issued it"
        )


class TicketNotRunError(SessionError):
    """Raised when a ticket's result is requested before the query ran
    (submit it and drain the session first)."""

    def __init__(self, ticket: int):
        self.ticket = ticket
        super().__init__(
            f"ticket {ticket} has not been run yet: call run_all() (or "
            "run_batch) to drain the session before reading its result"
        )

"""Semiring law + behaviour tests for every provenance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.provenance import available, create
from repro.provenance.top1proof import PAD, leave_one_out_products

DEVICE_SEMIRINGS = [
    "unit",
    "minmaxprob",
    "addmultprob",
    "prob-top-1-proofs",
    "diff-minmaxprob",
    "diff-addmultprob",
    "diff-top-1-proofs",
]

probs_strategy = st.lists(
    st.floats(min_value=0.01, max_value=0.99), min_size=2, max_size=8
)


def make(name, n=4, seed=0, groups=None):
    rng = np.random.default_rng(seed)
    provenance = create(name)
    probs = rng.uniform(0.1, 0.9, size=n)
    provenance.setup(probs, groups)
    return provenance, probs


def test_registry_lists_paper_semirings():
    names = available()
    # The paper's seven device semirings...
    assert set(DEVICE_SEMIRINGS) <= set(names)
    # ...the CPU-only general top-k of the Scallop baseline...
    assert "top-k-proofs" in names
    # ...and the §3.5 extension implemented by this repo.
    assert "top-k-proofs-device" in names
    assert "diff-top-k-proofs-device" in names


def test_registry_unknown_name():
    with pytest.raises(KeyError, match="unknown provenance"):
        create("nope")


@pytest.mark.parametrize("name", DEVICE_SEMIRINGS)
class TestDeviceSemiringBasics:
    def test_one_is_multiplicative_identity(self, name):
        provenance, probs = make(name)
        tags = provenance.input_tags(np.array([0, 1, 2]))
        ones = provenance.one_tags(3)
        combined = provenance.otimes(tags, ones)
        assert np.allclose(provenance.prob(combined), provenance.prob(tags))

    def test_otimes_commutes_on_prob(self, name):
        provenance, probs = make(name)
        a = provenance.input_tags(np.array([0, 1]))
        b = provenance.input_tags(np.array([2, 3]))
        ab = provenance.prob(provenance.otimes(a, b))
        ba = provenance.prob(provenance.otimes(b, a))
        assert np.allclose(ab, ba)

    def test_input_tags_untagged_facts(self, name):
        provenance, _ = make(name)
        tags = provenance.input_tags(np.array([-1, -1]))
        assert np.allclose(provenance.prob(tags), 1.0)

    def test_oplus_reduce_shape(self, name):
        provenance, _ = make(name)
        tags = provenance.input_tags(np.array([0, 1, 2, 3]))
        seg = np.array([0, 0, 1, 1])
        reduced = provenance.oplus_reduce(tags, seg, 2)
        assert len(reduced) == 2

    def test_scalar_ops_consistent_with_vector(self, name):
        provenance, probs = make(name)
        a = provenance.scalar_input(0)
        b = provenance.scalar_input(1)
        conj = provenance.scalar_otimes(a, b)
        assert 0.0 <= provenance.scalar_prob(conj) <= 1.0


class TestMinMaxProb:
    def test_semantics(self):
        provenance, probs = make("minmaxprob")
        a = provenance.input_tags(np.array([0]))
        b = provenance.input_tags(np.array([1]))
        assert provenance.otimes(a, b)[0] == pytest.approx(min(probs[0], probs[1]))
        merged, improved = provenance.merge_existing(a, b)
        assert merged[0] == pytest.approx(max(probs[0], probs[1]))
        assert improved[0] == (probs[1] > probs[0])

    @given(probs_strategy)
    @settings(max_examples=30, deadline=None)
    def test_oplus_reduce_is_max(self, values):
        provenance = create("minmaxprob")
        provenance.setup(np.array(values))
        tags = provenance.input_tags(np.arange(len(values)))
        seg = np.zeros(len(values), dtype=np.int64)
        assert provenance.oplus_reduce(tags, seg, 1)[0] == pytest.approx(max(values))


class TestAddMultProb:
    def test_sum_of_products(self):
        provenance, probs = make("addmultprob")
        a = provenance.input_tags(np.array([0]))
        b = provenance.input_tags(np.array([1]))
        conj = provenance.otimes(a, b)
        assert conj[0] == pytest.approx(probs[0] * probs[1])
        seg = np.zeros(2, dtype=np.int64)
        both = np.concatenate([a, b])
        assert provenance.oplus_reduce(both, seg, 1)[0] == pytest.approx(
            probs[0] + probs[1]
        )

    def test_prob_clamped(self):
        provenance, _ = make("addmultprob")
        tags = np.array([1.7, -0.5, 0.3])
        assert provenance.prob(tags).tolist() == [1.0, 0.0, 0.3]


class TestTop1Proof:
    def test_proof_merging_and_dedup(self):
        provenance = create("prob-top-1-proofs", proof_capacity=8)
        provenance.setup(np.array([0.5, 0.25]))
        a = provenance.input_tags(np.array([0]))
        conj = provenance.otimes(a, a)  # {0} x {0} = {0}, not {0,0}
        assert conj["size"][0] == 1
        assert conj["prob"][0] == pytest.approx(0.5)

    def test_exclusion_conflict_zeroes(self):
        provenance = create("prob-top-1-proofs", proof_capacity=8)
        provenance.setup(np.array([0.5, 0.5]), np.array([7, 7]))
        a = provenance.input_tags(np.array([0]))
        b = provenance.input_tags(np.array([1]))
        conj = provenance.otimes(a, b)
        assert provenance.is_absorbing_zero(conj)[0]
        assert conj["prob"][0] == 0.0

    def test_capacity_overflow_zeroes(self):
        provenance = create("prob-top-1-proofs", proof_capacity=2)
        provenance.setup(np.array([0.9, 0.9, 0.9]))
        a = provenance.input_tags(np.array([0]))
        b = provenance.input_tags(np.array([1]))
        c = provenance.input_tags(np.array([2]))
        conj = provenance.otimes(provenance.otimes(a, b), c)
        assert provenance.is_absorbing_zero(conj)[0]

    def test_oplus_picks_more_likely_proof(self):
        provenance = create("prob-top-1-proofs", proof_capacity=8)
        provenance.setup(np.array([0.3, 0.8]))
        tags = provenance.input_tags(np.array([0, 1]))
        reduced = provenance.oplus_reduce(tags, np.array([0, 0]), 1)
        assert reduced["prob"][0] == pytest.approx(0.8)
        assert reduced["proof"][0][0] == 1

    def test_zero_propagates_through_otimes(self):
        provenance = create("prob-top-1-proofs", proof_capacity=4)
        provenance.setup(np.array([0.5]))
        zero = provenance.zero_tags(1)
        a = provenance.input_tags(np.array([0]))
        assert provenance.is_absorbing_zero(provenance.otimes(zero, a))[0]


class TestLeaveOneOut:
    def test_no_zeros(self):
        probs = np.array([[0.5, 0.25, 1.0]])
        valid = np.array([[True, True, False]])
        out = leave_one_out_products(probs, valid)
        assert out[0, 0] == pytest.approx(0.25)
        assert out[0, 1] == pytest.approx(0.5)
        assert out[0, 2] == 0.0

    def test_single_zero_exact(self):
        probs = np.array([[0.0, 0.25, 0.5]])
        valid = np.array([[True, True, True]])
        out = leave_one_out_products(probs, valid)
        assert out[0, 0] == pytest.approx(0.125)
        assert out[0, 1] == 0.0
        assert out[0, 2] == 0.0

    def test_double_zero_all_zero(self):
        probs = np.array([[0.0, 0.0, 0.5]])
        valid = np.array([[True, True, True]])
        assert leave_one_out_products(probs, valid).sum() == 0.0


class TestDifferentiableBackward:
    def test_diff_top1_gradient_is_leave_one_out(self):
        provenance = create("diff-top-1-proofs", proof_capacity=8)
        probs = np.array([0.5, 0.25, 0.8])
        provenance.setup(probs)
        a, b, c = (provenance.input_tags(np.array([i])) for i in range(3))
        conj = provenance.otimes(provenance.otimes(a, b), c)
        grad = np.zeros(3)
        provenance.backward(conj, np.array([1.0]), grad)
        assert grad[0] == pytest.approx(0.25 * 0.8)
        assert grad[1] == pytest.approx(0.5 * 0.8)
        assert grad[2] == pytest.approx(0.5 * 0.25)

    def test_diff_minmaxprob_routes_to_witness(self):
        provenance = create("diff-minmaxprob")
        provenance.setup(np.array([0.3, 0.7]))
        a = provenance.input_tags(np.array([0]))
        b = provenance.input_tags(np.array([1]))
        conj = provenance.otimes(a, b)  # min -> witness fact 0
        grad = np.zeros(2)
        provenance.backward(conj, np.array([2.0]), grad)
        assert grad.tolist() == [2.0, 0.0]

    def test_diff_addmultprob_product_rule(self):
        provenance = create("diff-addmultprob")
        provenance.setup(np.array([0.5, 0.25]))
        a = provenance.input_tags(np.array([0]))
        b = provenance.input_tags(np.array([1]))
        conj = provenance.otimes(a, b)
        grad = np.zeros(2)
        provenance.backward(conj, np.array([1.0]), grad)
        assert grad[0] == pytest.approx(0.25)
        assert grad[1] == pytest.approx(0.5)

    def test_finite_difference_check_top1(self):
        """Gradients match numeric differentiation of the best-proof prob."""
        provenance = create("diff-top-1-proofs", proof_capacity=8)
        probs = np.array([0.5, 0.25, 0.8])
        provenance.setup(probs)
        tags = provenance.otimes(
            provenance.input_tags(np.array([0])), provenance.input_tags(np.array([1]))
        )
        grad = np.zeros(3)
        provenance.backward(tags, np.array([1.0]), grad)
        eps = 1e-6
        for i in (0, 1):
            perturbed = probs.copy()
            perturbed[i] += eps
            numeric = (perturbed[0] * perturbed[1] - probs[0] * probs[1]) / eps
            assert grad[i] == pytest.approx(numeric, rel=1e-3)


class TestTopKProofs:
    def test_inclusion_exclusion(self):
        provenance = create("top-k-proofs", k=3)
        provenance.setup(np.array([0.5, 0.5]))
        a = provenance.scalar_input(0)
        b = provenance.scalar_input(1)
        both = provenance.scalar_oplus(a, b)
        assert provenance.scalar_prob(both) == pytest.approx(0.75)

    def test_k_truncation(self):
        provenance = create("top-k-proofs", k=1)
        provenance.setup(np.array([0.9, 0.2]))
        merged = provenance.scalar_oplus(
            provenance.scalar_input(0), provenance.scalar_input(1)
        )
        assert len(merged) == 1
        assert provenance.scalar_prob(merged) == pytest.approx(0.9)

    def test_exclusion_conflict(self):
        provenance = create("top-k-proofs", k=3)
        provenance.setup(np.array([0.5, 0.5]), np.array([1, 1]))
        conj = provenance.scalar_otimes(
            provenance.scalar_input(0), provenance.scalar_input(1)
        )
        assert provenance.scalar_is_zero(conj)

    def test_no_device_support(self):
        provenance = create("top-k-proofs")
        assert not provenance.supports_device


class TestUnitProvenance:
    def test_never_improves(self):
        provenance = create("unit")
        provenance.setup(np.zeros(0))
        old = provenance.one_tags(3)
        new = provenance.one_tags(3)
        _, improved = provenance.merge_existing(old, new)
        assert not improved.any()

"""repro — a reproduction of Lobster (ASPLOS 2026): a GPU-accelerated
framework for neurosymbolic programming.

Public API highlights:

* :class:`repro.LobsterEngine` — compile and run Datalog programs with a
  chosen provenance semiring on the virtual GPU device.
* :class:`repro.LobsterSession` — batch many independent databases
  through one compiled program on a shared device (the serving layer),
  optionally round-robined across a :class:`repro.DevicePool`.
* :mod:`repro.dist` — sharded multi-device execution: hash-partitioned
  frontiers, exchange operators, and ``LobsterEngine(shards=N)``.
* :mod:`repro.serve` — the online serving front-end: SLO-classed
  requests, admission control, micro-batching scheduler over a device
  pool, Poisson/bursty load generation, and the metrics registry.
* :mod:`repro.stream` — streaming incremental view maintenance:
  replayable sources, tumbling/sliding windows emitting retractions,
  :class:`repro.MaterializedView`\\ s kept continuously correct through
  the engine's DRed-style maintain path, live subscriptions, and the
  :class:`repro.StreamScheduler` tick path on the serve clock.
* :mod:`repro.recovery` — durability for streaming views: CRC-framed
  write-ahead log + atomically swapped checkpoints
  (:class:`repro.RecoveryManager`), verified crash recovery
  (:func:`repro.recover`), durable subscription cursors, and the
  database export/import interchange.
* :class:`repro.ProgramCache` / :func:`repro.default_cache` — the
  content-addressed compile-once cache behind every engine construction,
  keyed on (program, stats-bucket) so each observed data shape gets its
  own cost-based plan.
* :mod:`repro.jit` — the trace-JIT (``LobsterEngine(jit=True)``): hot
  programs have their APM instruction trace recorded, cut into fusible
  regions, and compiled into fused vectorized kernels cached next to the
  plan; guards deopt to the interpreter on drift, and results stay
  bitwise-identical to interpreted execution.
* :mod:`repro.stats` — live relation statistics (KMV distinct + count-min
  frequency sketches), the cardinality estimator and exchange-aware cost
  model behind the planner, and the plan-feedback loop that re-optimizes
  adaptive engines (``LobsterEngine(adaptive=True)``) when cardinalities
  drift.
* :mod:`repro.obs` — deterministic end-to-end tracing on the modeled
  clocks: span timelines from request to kernel
  (``LobsterEngine(tracing=True)``, ``Scheduler(tracer=...)``), profile
  reports, plan-vs-observed ``explain_run``, and Perfetto/Chrome
  trace-event export — two same-seed runs export byte-identical JSON.
* :mod:`repro.provenance` — the semiring library (discrete, probabilistic,
  differentiable).
* :mod:`repro.baselines` — Scallop/Soufflé/ProbLog/FVLog stand-ins.
* :mod:`repro.workloads` — the paper's nine benchmark tasks.
* :mod:`repro.nn` — a minimal autodiff substrate for end-to-end training.
"""

from .errors import (
    BenchRecordError,
    CheckpointMismatchError,
    CompileError,
    CorruptLogError,
    DeviceOutOfMemory,
    EvaluationTimeout,
    ExecutionError,
    JitUnsupportedError,
    LobsterError,
    ParseError,
    ResolutionError,
    RetractionUnsupportedError,
    SessionError,
    StaleViewError,
    StratificationError,
    TicketNotRunError,
    TraceGuardError,
    UnknownTicketError,
)
from .dist import (
    DevicePool,
    HashPartitioner,
    ReshardPlan,
    ReshardPlanner,
    ShardMap,
    ShardedExecutor,
)
from .jit import JitConfig
from .gpu.device import DeviceProfile, VirtualDevice
from .runtime.cache import (
    CompiledProgram,
    OptimizationConfig,
    ProgramCache,
    default_cache,
)
from .recovery import (
    RecoveryInfo,
    RecoveryManager,
    export_database,
    import_database,
    recover,
)
from .obs import Span, Tracer, explain_run, export_perfetto, profile
from .runtime.database import Database
from .runtime.engine import ExecutionResult, LobsterEngine
from .runtime.session import LobsterSession, SessionReport
from .stats import (
    CostModel,
    PlanFeedback,
    RelationStats,
    StatsCatalog,
)
from .serve import (
    AdmissionController,
    ElasticController,
    LoadGenerator,
    MetricsRegistry,
    Outcome,
    Request,
    Scheduler,
    ServeReport,
    SLOClass,
    StreamReport,
    StreamScheduler,
)
from .stream import (
    MaterializedView,
    RelationStream,
    SlidingWindow,
    Subscription,
    TickDelta,
    TumblingWindow,
    ViewDelta,
)

__version__ = "0.11.0"

__all__ = [
    "AdmissionController",
    "BenchRecordError",
    "CheckpointMismatchError",
    "CompileError",
    "CompiledProgram",
    "CorruptLogError",
    "CostModel",
    "Database",
    "DeviceOutOfMemory",
    "DevicePool",
    "DeviceProfile",
    "ElasticController",
    "HashPartitioner",
    "LoadGenerator",
    "MetricsRegistry",
    "Outcome",
    "Request",
    "Scheduler",
    "ServeReport",
    "SLOClass",
    "ShardedExecutor",
    "EvaluationTimeout",
    "ExecutionError",
    "ExecutionResult",
    "JitConfig",
    "JitUnsupportedError",
    "LobsterEngine",
    "LobsterError",
    "LobsterSession",
    "MaterializedView",
    "OptimizationConfig",
    "ParseError",
    "PlanFeedback",
    "ProgramCache",
    "RecoveryInfo",
    "RecoveryManager",
    "RelationStats",
    "RelationStream",
    "ReshardPlan",
    "ReshardPlanner",
    "ResolutionError",
    "RetractionUnsupportedError",
    "SessionError",
    "SessionReport",
    "ShardMap",
    "SlidingWindow",
    "Span",
    "StaleViewError",
    "StatsCatalog",
    "StratificationError",
    "StreamReport",
    "StreamScheduler",
    "Subscription",
    "TickDelta",
    "TicketNotRunError",
    "TraceGuardError",
    "Tracer",
    "TumblingWindow",
    "UnknownTicketError",
    "ViewDelta",
    "VirtualDevice",
    "__version__",
    "default_cache",
    "explain_run",
    "export_database",
    "export_perfetto",
    "import_database",
    "profile",
    "recover",
]

"""Workload-level integration tests: every paper task runs end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LobsterEngine
from repro.baselines import ScallopInterpreter
from repro.workloads import (
    analytics,
    clutrr,
    graphs,
    hwf,
    pacman,
    pathfinder,
    rna,
    static_analysis,
)


class TestGraphCorpus:
    def test_all_named_graphs_load(self):
        for name in graphs.CORPUS:
            edges = graphs.load_graph(name)
            assert len(edges) > 50, name
            assert all(isinstance(a, int) and isinstance(b, int) for a, b in edges[:5])

    def test_aliases(self):
        assert graphs.load_graph("vsp_finan") == graphs.load_graph("vsp-finan")

    def test_deterministic(self):
        assert graphs.load_graph("Gnu31") == graphs.load_graph("Gnu31")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            graphs.load_graph("nope")


class TestPathfinder:
    def test_positive_instance_connected(self):
        instance = pathfinder.generate_instance(6, seed=1, positive=True)
        engine = LobsterEngine(pathfinder.PROGRAM, provenance="unit")
        db = engine.create_database()
        present = [
            e for e, p in zip(instance.lattice_edges, instance.dash_present) if p
        ]
        db.add_facts("edge", present)
        db.add_facts("is_endpoint", [(instance.endpoints[0],), (instance.endpoints[1],)])
        engine.run(db)
        assert db.result("endpoints_connected").n_rows == 1

    def test_negative_instance_disconnected(self):
        instance = pathfinder.generate_instance(6, seed=2, positive=False)
        engine = LobsterEngine(pathfinder.PROGRAM, provenance="unit")
        db = engine.create_database()
        present = [
            e for e, p in zip(instance.lattice_edges, instance.dash_present) if p
        ]
        db.add_facts("edge", present)
        db.add_facts("is_endpoint", [(instance.endpoints[0],), (instance.endpoints[1],)])
        engine.run(db)
        assert db.result("endpoints_connected").n_rows == 0

    def test_probabilistic_inference_accuracy(self):
        """A simulated pretrained model classifies most samples correctly."""
        engine = LobsterEngine(
            pathfinder.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=128
        )
        correct = 0
        samples = pathfinder.make_dataset(6, 10, seed=3)
        for index, instance in enumerate(samples):
            db = engine.create_database()
            probs = pathfinder.pretrained_edge_probs(instance, seed=index)
            pathfinder.populate_database(db, instance, probs)
            engine.run(db)
            connected = engine.query_probs(db, "endpoints_connected")
            prediction = connected.get((), 0.0) > 0.25
            correct += prediction == instance.label
        assert correct >= 8

    def test_lattice_edges_bidirectional(self):
        edges = set(pathfinder.lattice_edges(4))
        assert all((b, a) in edges for a, b in edges)


class TestPacman:
    def test_good_moves_match_bfs_ground_truth(self):
        engine = LobsterEngine(
            pacman.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=256
        )
        for seed in range(4):
            instance = pacman.generate_instance(7, seed=seed)
            db = engine.create_database()
            probs = pacman.pretrained_safety_probs(instance, noise=0.02, seed=seed)
            pacman.populate_database(db, instance, probs)
            engine.run(db)
            moves = engine.query_probs(db, "good_move")
            predicted = {m[0] for m, p in moves.items() if p > 0.5}
            assert predicted == instance.optimal_first_moves

    def test_maze_always_solvable(self):
        for seed in range(6):
            instance = pacman.generate_instance(9, seed=seed)
            assert instance.optimal_first_moves, seed

    def test_success_probability_positive(self):
        instance = pacman.generate_instance(5, seed=1)
        engine = LobsterEngine(
            pacman.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=256
        )
        db = engine.create_database()
        pacman.populate_database(
            db, instance, pacman.pretrained_safety_probs(instance, seed=1)
        )
        engine.run(db)
        success = engine.query_probs(db, "success")
        assert success.get((), 0.0) > 0.1


class TestHwf:
    def test_formula_evaluation_reference(self):
        assert hwf.evaluate_formula(list("3+4*2")) == 11
        assert hwf.evaluate_formula(list("8/4-1")) == 1
        assert hwf.evaluate_formula(list("9")) == 9

    @pytest.mark.parametrize("length", [1, 3, 5, 7])
    def test_engine_parses_correct_value(self, length):
        instance = hwf.generate_instance(length, seed=length)
        engine = LobsterEngine(
            hwf.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=32
        )
        db = engine.create_database()
        hwf.populate_database(db, instance, beam=2)
        engine.run(db)
        best = hwf.best_answer(engine.query_probs(db, "answer"))
        assert best == pytest.approx(instance.value)

    def test_matches_scallop_top1(self):
        instance = hwf.generate_instance(5, seed=9)
        engine = LobsterEngine(
            hwf.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=32
        )
        db = engine.create_database()
        hwf.populate_database(db, instance, beam=2)
        engine.run(db)
        device_probs = engine.query_probs(db, "answer")

        scallop = ScallopInterpreter(hwf.PROGRAM, provenance="top-k-proofs", k=1)
        sdb = scallop.create_database()
        hwf.populate_database(sdb, instance, beam=2)
        scallop.run(sdb)
        for row, prob in device_probs.items():
            assert prob == pytest.approx(sdb.prob("answer", row), abs=1e-9)

    def test_exclusive_candidates_never_conflict(self):
        """No derived answer may use two digits at the same position."""
        instance = hwf.generate_instance(3, seed=4)
        engine = LobsterEngine(
            hwf.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=32
        )
        db = engine.create_database()
        ids, positions, symbols = hwf.populate_database(db, instance, beam=2)
        engine.run(db)
        table = db.result("answer")
        proofs = table.tags["proof"]
        position_of = dict(zip(ids.tolist(), positions.tolist()))
        for proof_row in proofs:
            used = [position_of[f] for f in proof_row if f in position_of]
            assert len(used) == len(set(used))


class TestClutrr:
    def test_composition_table_sound(self):
        table = clutrr.composition_table()
        for r1, r2, r3 in table:
            assert clutrr.compose_chain([r1, r2]) == r3

    @pytest.mark.parametrize("length", [2, 4, 6, 10])
    def test_chain_inference(self, length):
        instance = clutrr.generate_instance(length, seed=length)
        engine = LobsterEngine(
            clutrr.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=32
        )
        db = engine.create_database()
        clutrr.populate_database(db, instance, beam=2)
        engine.run(db)
        predicted = clutrr.predicted_relation(engine.query_probs(db, "answer"))
        assert predicted == instance.target_relation


class TestRna:
    def test_short_sequence_folds(self):
        instance = rna.generate_instance(28, seed=0)
        engine = LobsterEngine(
            rna.PROGRAM, provenance="prob-top-1-proofs", proof_capacity=128
        )
        db = engine.create_database()
        rna.populate_database(db, instance)
        engine.run(db)
        folded = engine.query_probs(db, "folded")
        assert folded and 0 < folded[()] <= 1

    def test_complementary_pairs_only(self):
        instance = rna.generate_instance(60, seed=1)
        for i, j in instance.pair_candidates:
            assert (instance.sequence[i], instance.sequence[j]) in rna._COMPLEMENTARY
            assert j - i >= 4

    def test_archive_lengths_range(self):
        lengths = rna.archive_lengths()
        assert min(lengths) == 28 and max(lengths) == 175


class TestStaticAnalysis:
    def test_all_subjects_run(self):
        engine = LobsterEngine(static_analysis.PROGRAM, provenance="minmaxprob")
        instance = static_analysis.psa_instance("sunflow-core")
        db = engine.create_database()
        static_analysis.populate_database(db, instance)
        engine.run(db)
        total_alarms = (
            db.result("alarm_critical").n_rows
            + db.result("alarm_major").n_rows
            + db.result("alarm_minor").n_rows
        )
        assert total_alarms > 0

    def test_alarm_probabilities_ranked(self):
        engine = LobsterEngine(static_analysis.PROGRAM, provenance="minmaxprob")
        instance = static_analysis.psa_instance("graphchi")
        db = engine.create_database()
        static_analysis.populate_database(db, instance)
        engine.run(db)
        for relation in ("alarm_critical", "alarm_major", "alarm_minor"):
            for _, prob in engine.query_probs(db, relation).items():
                assert 0 < prob <= 1

    def test_instances_deterministic(self):
        a = static_analysis.psa_instance("pmd")
        b = static_analysis.psa_instance("pmd")
        assert a["discrete"]["sink_at"] == b["discrete"]["sink_at"]


class TestAnalyticsPrograms:
    def test_same_generation_semantics(self):
        engine = LobsterEngine(analytics.SAME_GENERATION, provenance="unit")
        db = engine.create_database()
        # parent edges: 1->0, 2->0 (siblings), 3->1, 4->2 (cousins)
        db.add_facts("parent", [(1, 0), (2, 0), (3, 1), (4, 2)])
        engine.run(db)
        sg = set(db.result("sg").rows())
        assert (1, 2) in sg and (2, 1) in sg
        assert (3, 4) in sg and (4, 3) in sg
        assert (1, 4) not in sg

    def test_cspa_instances_deterministic(self):
        assert analytics.cspa_instance("httpd") == analytics.cspa_instance("httpd")

    def test_cspa_runs(self):
        facts = analytics.cspa_instance("httpd")
        engine = LobsterEngine(analytics.CSPA, provenance="unit")
        db = engine.create_database()
        db.add_facts("assign", facts["assign"])
        db.add_facts("dereference", facts["dereference"])
        engine.run(db)
        assert db.result("value_flow").n_rows > len(facts["assign"])

"""Live relation statistics for cost-based planning (this repo's layer).

``stats/`` is the planner's sensory system: per-relation row counts,
per-column ranges, KMV distinct-count sketches, and count-min frequency
sketches, maintained incrementally by the storage layer
(:mod:`repro.runtime.relation`) and snapshotted into a
:class:`StatsCatalog` whose *bucket key* content-addresses compiled
plans.  :mod:`repro.stats.estimate` turns the catalog into cardinality
estimates and an exchange-aware :class:`CostModel`;
:mod:`repro.stats.feedback` closes the loop with observed cardinalities
that trigger re-planning when estimates drift.
"""

from .estimate import CostModel, DEFAULT_ROWS
from .feedback import PlanFeedback
from .hotkeys import HotKey, HotKeyReport, hot_key_report, hot_keys
from .relation_stats import ColumnStats, RelationStats, StatsCatalog
from .sketches import CountMinSketch, KmvSketch

__all__ = [
    "ColumnStats",
    "CostModel",
    "CountMinSketch",
    "DEFAULT_ROWS",
    "HotKey",
    "HotKeyReport",
    "KmvSketch",
    "PlanFeedback",
    "RelationStats",
    "StatsCatalog",
    "hot_key_report",
    "hot_keys",
]

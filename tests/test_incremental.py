"""Incremental re-evaluation: delta-seeded re-runs match cold runs.

The acceptance bar (and the paper's §6.1 correctness claim, extended to
warm serving): re-running an engine after ``add_facts`` on an
already-evaluated database must produce results identical to evaluating
all facts from scratch — whether the engine takes the delta-seeded path
or the rebuild fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LobsterEngine, LobsterError

TC = "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."

edge_lists = st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10)).filter(lambda e: e[0] != e[1]),
    min_size=0,
    max_size=20,
    unique=True,
)


def _cold_rows(source, all_edges, provenance="unit", probs=None, **kwargs):
    engine = LobsterEngine(source, provenance=provenance, **kwargs)
    db = engine.create_database()
    db.add_facts("edge", all_edges, probs=probs)
    engine.run(db)
    return engine, db


class TestDeltaSeededEquivalence:
    @given(edge_lists, edge_lists)
    @settings(max_examples=25, deadline=None)
    def test_unit_closure_matches_cold(self, first, second):
        engine = LobsterEngine(TC, provenance="unit")
        db = engine.create_database()
        db.add_facts("edge", first)
        engine.run(db)
        db.add_facts("edge", second)
        warm = engine.run(db)
        # An empty delta leaves nothing pending: plain (still-correct) rerun.
        assert warm.incremental == bool(second)

        _, cold_db = _cold_rows(TC, first + second)
        assert set(db.result("path").rows()) == set(cold_db.result("path").rows())

    @given(edge_lists, edge_lists, st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_minmaxprob_matches_cold(self, first, second, seed):
        # Dedup across rounds: duplicate rows with different probs would
        # make cold (one ⊕ over all) differ from warm only via ordering,
        # so keep rows unique to isolate the incremental machinery.
        second = [e for e in second if e not in set(first)]
        rng = np.random.default_rng(seed)
        p1 = list(rng.uniform(0.05, 1.0, size=len(first)))
        p2 = list(rng.uniform(0.05, 1.0, size=len(second)))

        engine = LobsterEngine(TC, provenance="minmaxprob")
        db = engine.create_database()
        db.add_facts("edge", first, probs=p1)
        engine.run(db)
        db.add_facts("edge", second, probs=p2)
        warm = engine.run(db)
        assert warm.incremental == bool(second)

        cold_engine, cold_db = _cold_rows(
            TC, first + second, provenance="minmaxprob", probs=p1 + p2
        )
        warm_probs = engine.query_probs(db, "path")
        cold_probs = cold_engine.query_probs(cold_db, "path")
        assert set(warm_probs) == set(cold_probs)
        for row, prob in warm_probs.items():
            assert prob == pytest.approx(cold_probs[row], abs=1e-9)

    def test_top1proof_matches_cold(self):
        edges = [(0, 1), (1, 3)]
        extra = [(0, 2), (2, 3)]
        engine = LobsterEngine(TC, provenance="prob-top-1-proofs", proof_capacity=16)
        db = engine.create_database()
        db.add_facts("edge", edges, probs=[0.5, 0.5])
        engine.run(db)
        db.add_facts("edge", extra, probs=[0.9, 0.9])
        warm = engine.run(db)
        assert warm.incremental

        cold_engine, cold_db = _cold_rows(
            TC,
            edges + extra,
            provenance="prob-top-1-proofs",
            probs=[0.5, 0.5, 0.9, 0.9],
            proof_capacity=16,
        )
        warm_probs = engine.query_probs(db, "path")
        cold_probs = cold_engine.query_probs(cold_db, "path")
        assert set(warm_probs) == set(cold_probs)
        for row, prob in warm_probs.items():
            assert prob == pytest.approx(cold_probs[row], abs=1e-9)
        # The better route added later must have displaced the old proof.
        assert warm_probs[(0, 3)] == pytest.approx(0.81)

    def test_multi_stratum_delta_propagates(self):
        # A delta in stratum 0's input must reach stratum 2's output even
        # though per-iteration recent masks are cleared at each fix point.
        source = """
        rel tc(x, y) :- edge(x, y) or (tc(x, z) and edge(z, y)).
        rel in_cycle(x) :- tc(x, x).
        rel cycle_pair(x, y) :- in_cycle(x), in_cycle(y), tc(x, y).
        """
        engine = LobsterEngine(source)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)])
        engine.run(db)
        assert db.result("in_cycle").n_rows == 0
        db.add_facts("edge", [(2, 0)])  # closes the cycle
        warm = engine.run(db)
        assert warm.incremental
        assert sorted(db.result("in_cycle").rows()) == [(0,), (1,), (2,)]
        assert len(db.result("cycle_pair").rows()) == 9

    def test_incremental_touches_fewer_iterations_than_cold(self):
        chain = [(i, i + 1) for i in range(30)]
        engine = LobsterEngine(TC, provenance="unit")
        db = engine.create_database()
        db.add_facts("edge", chain)
        cold = engine.run(db)
        db.add_facts("edge", [(30, 31)])  # extend the chain by one
        warm = engine.run(db)
        assert warm.incremental
        # Appending one edge only propagates backwards along existing
        # paths; the fix point must not be recomputed from scratch.
        assert warm.iterations < cold.iterations
        assert (30, 31) in set(db.result("path").rows())
        assert (0, 31) in set(db.result("path").rows())

    def test_rerun_without_deltas_is_cheap_noop(self):
        engine = LobsterEngine(TC, provenance="unit")
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)])
        engine.run(db)
        rows_before = set(db.result("path").rows())
        again = engine.run(db, incremental=True)
        assert again.incremental
        assert set(db.result("path").rows()) == rows_before


class TestFallbacks:
    def test_negation_falls_back_and_retracts(self):
        source = """
        rel reach(x) :- start(x) or (reach(y) and e(y, x)).
        rel unreached(x) :- node(x), not reach(x).
        """
        engine = LobsterEngine(source)
        db = engine.create_database()
        db.add_facts("start", [(0,)])
        db.add_facts("e", [(0, 1)])
        db.add_facts("node", [(0,), (1,), (2,)])
        engine.run(db)
        assert sorted(db.result("unreached").rows()) == [(2,)]
        db.add_facts("e", [(1, 2)])
        warm = engine.run(db)
        assert not warm.incremental  # rebuild fallback
        assert db.result("unreached").n_rows == 0  # conclusion retracted

    def test_non_idempotent_provenance_falls_back(self):
        engine = LobsterEngine("rel q(x) :- a(x) or b(x).", provenance="addmultprob")
        db = engine.create_database()
        db.add_facts("a", [(1,)], probs=[0.3])
        engine.run(db)
        db.add_facts("b", [(1,)], probs=[0.4])
        warm = engine.run(db)
        assert not warm.incremental
        # ⊕ = + over both alternatives, counted exactly once each.
        assert engine.query_probs(db, "q")[(1,)] == pytest.approx(0.7)

    def test_explicit_incremental_on_ineligible_program_raises(self):
        engine = LobsterEngine(
            "rel ok(x) :- v(x), not bad(x).", provenance="unit"
        )
        db = engine.create_database()
        db.add_facts("v", [(1,)])
        engine.run(db)
        db.add_facts("bad", [(1,)])
        with pytest.raises(LobsterError, match="incremental"):
            engine.run(db, incremental=True)

    def test_fact_ids_remain_stable_across_rebuild(self):
        engine = LobsterEngine("rel q(x) :- a(x) or b(x).", provenance="addmultprob")
        db = engine.create_database()
        ids1 = db.add_facts("a", [(1,)], probs=[0.3])
        engine.run(db)
        ids2 = db.add_facts("b", [(1,)], probs=[0.4])
        engine.run(db)
        assert ids1.tolist() == [0] and ids2.tolist() == [1]
        assert db.provenance.input_probs.tolist() == [0.3, 0.4]


class TestDifferentiableIncremental:
    def test_gradients_after_incremental_match_cold(self):
        engine = LobsterEngine(TC, provenance="diff-minmaxprob")
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)], probs=[0.9, 0.4])
        engine.run(db)
        db.add_facts("edge", [(0, 2)], probs=[0.7])
        warm = engine.run(db)
        assert warm.incremental
        grad_warm = engine.backward(db, "path", {(0, 2): 1.0})

        cold_engine, cold_db = _cold_rows(
            TC, [(0, 1), (1, 2), (0, 2)], provenance="diff-minmaxprob",
            probs=[0.9, 0.4, 0.7],
        )
        grad_cold = cold_engine.backward(cold_db, "path", {(0, 2): 1.0})
        np.testing.assert_allclose(grad_warm, grad_cold)
        # The direct edge (fact 2, p=0.7) is now the best route.
        assert grad_warm[2] == pytest.approx(1.0)

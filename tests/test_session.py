"""Multi-query sessions: batching databases through one compiled program."""

from __future__ import annotations

import pytest

from repro import (
    DevicePool,
    LobsterEngine,
    LobsterError,
    LobsterSession,
    ProgramCache,
    SessionError,
    TicketNotRunError,
    UnknownTicketError,
)

TC = "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."

DATASETS = [
    [(0, 1), (1, 2)],
    [(1, 2), (2, 3), (3, 1)],
    [(0, 2)],
    [(5, 6), (6, 7), (7, 8), (8, 5)],
]


def brute_closure(edges):
    closure = set(edges)
    while True:
        extra = {
            (a, d)
            for a, b in closure
            for c, d in closure
            if b == c and (a, d) not in closure
        }
        if not extra:
            return closure
        closure |= extra


class TestSessionBatching:
    def test_batches_independent_databases(self):
        engine = LobsterEngine(TC, provenance="unit")
        session = LobsterSession(engine)
        tickets = []
        for edges in DATASETS:
            db = session.create_database()
            db.add_facts("edge", edges)
            tickets.append(session.submit(db))
        assert len(session) == len(DATASETS) >= 3
        report = session.run_all()
        assert len(report.results) == len(DATASETS)
        for ticket, edges in zip(tickets, DATASETS):
            assert set(session.database(ticket).result("path").rows()) == brute_closure(edges)
            assert session.result(ticket).iterations >= 1

    def test_submit_without_database_creates_one(self):
        engine = LobsterEngine(TC)
        session = LobsterSession(engine)
        ticket = session.submit()
        session.database(ticket).add_facts("edge", [(0, 1)])
        session.run_all()
        assert session.database(ticket).result("path").rows() == [(0, 1)]

    def test_run_all_skips_completed_queries(self):
        engine = LobsterEngine(TC)
        session = LobsterSession(engine)
        db = session.create_database()
        db.add_facts("edge", [(0, 1)])
        first_ticket = session.submit(db)
        session.run_all()
        first_result = session.result(first_ticket)

        later = session.create_database()
        later.add_facts("edge", [(2, 3)])
        session.submit(later)
        report = session.run_all()
        assert len(report.results) == 1  # only the new query ran
        assert session.result(first_ticket) is first_result
        assert not session.pending

    def test_unknown_ticket_raises_typed_error(self):
        session = LobsterSession(LobsterEngine(TC))
        with pytest.raises(UnknownTicketError, match="unknown session ticket"):
            session.database(99)
        with pytest.raises(UnknownTicketError) as excinfo:
            session.result(42)
        assert excinfo.value.ticket == 42

    def test_not_yet_run_ticket_raises_typed_error(self):
        session = LobsterSession(LobsterEngine(TC))
        ticket = session.submit()
        with pytest.raises(TicketNotRunError, match="has not been run") as excinfo:
            session.result(ticket)
        assert excinfo.value.ticket == ticket
        # The database itself is reachable before the run.
        assert session.database(ticket) is not None

    def test_ticket_errors_catchable_as_session_and_lobster_errors(self):
        session = LobsterSession(LobsterEngine(TC))
        for exc_type in (SessionError, LobsterError):
            with pytest.raises(exc_type):
                session.result(7)
        assert issubclass(UnknownTicketError, SessionError)
        assert issubclass(TicketNotRunError, SessionError)


class TestSessionAmortization:
    def test_compile_once_across_queries(self):
        cache = ProgramCache()
        engine = LobsterEngine(TC, cache=cache)
        session = LobsterSession(engine)
        for edges in DATASETS:
            db = session.create_database()
            db.add_facts("edge", edges)
            session.submit(db)
        report = session.run_all()
        assert cache.stats.misses == 1  # one compile for the whole batch
        assert report.compile_seconds == engine.compile_seconds
        assert report.total_seconds >= report.steady_state_seconds

    def test_allocation_sites_stay_warm_across_queries(self):
        engine = LobsterEngine(TC, provenance="unit")
        session = LobsterSession(engine)
        for edges in DATASETS:
            db = session.create_database()
            db.add_facts("edge", edges)
            session.submit(db)
        report = session.run_all()
        # Later queries hit the warm allocation sites of earlier ones:
        # strictly more reuse than any single query could produce alone.
        solo_engine = LobsterEngine(TC, provenance="unit", cache=False)
        solo_reused = 0
        for edges in DATASETS:
            db = solo_engine.create_database()
            db.add_facts("edge", edges)
            solo_reused += solo_engine.run(db).profile.reused_allocations
        assert report.profile.reused_allocations > solo_reused

    def test_per_query_profiles_are_deltas(self):
        engine = LobsterEngine(TC, provenance="unit")
        session = LobsterSession(engine)
        for edges in DATASETS[:3]:
            db = session.create_database()
            db.add_facts("edge", edges)
            session.submit(db)
        report = session.run_all()
        total_launches = sum(r.profile.kernel_launches for r in report.results)
        assert report.profile.kernel_launches == total_launches

    def test_results_match_standalone_engines(self):
        engine = LobsterEngine(TC, provenance="minmaxprob")
        session = LobsterSession(engine)
        tickets = []
        for edges in DATASETS:
            db = session.create_database()
            db.add_facts("edge", edges, probs=[0.9] * len(edges))
            tickets.append(session.submit(db))
        session.run_all()
        for ticket, edges in zip(tickets, DATASETS):
            solo = LobsterEngine(TC, provenance="minmaxprob", cache=False)
            solo_db = solo.create_database()
            solo_db.add_facts("edge", edges, probs=[0.9] * len(edges))
            solo.run(solo_db)
            batch_probs = engine.query_probs(session.database(ticket), "path")
            solo_probs = solo.query_probs(solo_db, "path")
            assert batch_probs.keys() == solo_probs.keys()
            for row, prob in batch_probs.items():
                assert prob == pytest.approx(solo_probs[row], abs=1e-12)

    def test_run_batch_is_a_reusable_single_batch_step(self):
        # The serving scheduler's primitive: run a micro-batch on one
        # chosen pool device, get per-query results back in order.
        engine = LobsterEngine(TC, provenance="unit")
        pool = DevicePool(2)
        session = LobsterSession(engine, pool=pool)
        databases = []
        for edges in DATASETS[:3]:
            db = session.create_database()
            db.add_facts("edge", edges)
            databases.append(db)
        results = session.run_batch(databases, device_index=1)
        assert len(results) == 3
        for db, edges, result in zip(databases, DATASETS, results):
            assert set(db.result("path").rows()) == brute_closure(edges)
            # Per-query timing for the serve clock: modeled, positive.
            assert result.service_seconds > 0
        # The whole batch landed on device 1 only.
        assert pool.devices[1].profile.kernel_launches > 0
        assert pool.devices[0].profile.kernel_launches == 0
        # Batch queries are not pending anymore; run_all has nothing new.
        assert session.pending == []

    def test_run_batch_validates_device_index(self):
        engine = LobsterEngine(TC)
        session = LobsterSession(engine, pool=DevicePool(2))
        db = session.create_database()
        db.add_facts("edge", [(0, 1)])
        with pytest.raises(LobsterError, match="out of range"):
            session.run_batch([db], device_index=5)
        # A failed call leaves nothing half-submitted behind.
        assert len(session) == 0 and session.pending == []
        poolless = LobsterSession(LobsterEngine(TC))
        db2 = poolless.create_database()
        db2.add_facts("edge", [(0, 1)])
        with pytest.raises(LobsterError, match="no DevicePool"):
            poolless.run_batch([db2], device_index=1)
        assert len(poolless) == 0
        assert poolless.run_batch([]) == []

    def test_run_batch_retain_false_keeps_session_unbounded_free(self):
        # The serving hot path: results come back, but the session keeps
        # no per-request record (a long-lived scheduler must not leak).
        engine = LobsterEngine(TC, provenance="unit")
        session = LobsterSession(engine)
        databases = []
        for edges in DATASETS[:3]:
            db = session.create_database()
            db.add_facts("edge", edges)
            databases.append(db)
        results = session.run_batch(databases, retain=False)
        assert len(results) == 3
        for db, edges in zip(databases, DATASETS):
            assert set(db.result("path").rows()) == brute_closure(edges)
        assert len(session) == 0 and session.pending == []

    def test_run_batch_results_match_run_all(self):
        batch_engine = LobsterEngine(TC, provenance="minmaxprob")
        batch_session = LobsterSession(batch_engine)
        drain_engine = LobsterEngine(TC, provenance="minmaxprob")
        drain_session = LobsterSession(drain_engine)
        batch_dbs, drain_tickets = [], []
        for edges in DATASETS:
            db = batch_session.create_database()
            db.add_facts("edge", edges, probs=[0.8] * len(edges))
            batch_dbs.append(db)
            other = drain_session.create_database()
            other.add_facts("edge", edges, probs=[0.8] * len(edges))
            drain_tickets.append(drain_session.submit(other))
        batch_session.run_batch(batch_dbs)
        drain_session.run_all()
        for db, ticket in zip(batch_dbs, drain_tickets):
            a = batch_engine.query_probs(db, "path")
            b = drain_engine.query_probs(drain_session.database(ticket), "path")
            assert a == b  # identical rows and identical floats

    def test_incremental_rerun_inside_session(self):
        engine = LobsterEngine(TC, provenance="unit")
        session = LobsterSession(engine)
        db = session.create_database()
        db.add_facts("edge", [(0, 1)])
        ticket = session.submit(db)
        session.run_all()
        # New facts re-enqueue the same database for an incremental pass.
        db.add_facts("edge", [(1, 2)])
        session.submit(db)
        report = session.run_all()
        assert report.results[-1].incremental
        assert set(db.result("path").rows()) == {(0, 1), (1, 2), (0, 2)}
        assert session.result(ticket).incremental is False

"""Lock-free-style open-addressing hash index (§5.1).

The paper's join builds a *hash index*: an open-addressing, linear-probing
table whose slots store **row indices into the source table**, never fact
data, so the join's footprint is independent of relation width.  We
reproduce the same structure with vectorized probing: every unresolved key
advances one probe step per round, which is how a warp-synchronous CUDA
implementation behaves.

Join keys repeat heavily in Datalog workloads (every ``path(x, z)`` row
with the same ``z``), so slots hold one *representative* per distinct key
and duplicates live in a CSR side array (row ids grouped by key).  This is
the standard GPU hash-join layout: the probe resolves a key to its group,
then emits the group's row range — insertion and probing cost is bounded
by open-addressing chain length, never by duplicate multiplicity.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .kernels import exclusive_scan, hash_columns, lex_rank, repeat_ranges, row_group_boundaries

#: Hash-table over-allocation factor (the parameter "O" of Fig. 6).
DEFAULT_LOAD_FACTOR = 2.0

_EMPTY = np.int64(-1)


class HashIndex:
    """An immutable hash index over the first ``width`` columns of a table."""

    def __init__(
        self,
        columns: Sequence[np.ndarray],
        width: int,
        load_factor: float = DEFAULT_LOAD_FACTOR,
    ):
        self.columns = [np.asarray(c) for c in columns]
        self.width = width
        n = len(self.columns[0]) if self.columns else 0
        self.n_rows = n

        key_cols = self.columns[:width]
        # Group rows by key: sorted row-id array + CSR offsets.
        order = lex_rank(key_cols) if width else np.arange(n, dtype=np.int64)
        self.row_ids = order
        sorted_keys = [c[order] for c in key_cols]
        if n and width:
            firsts_mask = row_group_boundaries(sorted_keys)
            firsts = np.flatnonzero(firsts_mask)
        elif n:
            firsts = np.zeros(1, dtype=np.int64)  # width 0: one group
        else:
            firsts = np.zeros(0, dtype=np.int64)
        self.group_offsets = firsts
        boundaries = np.append(firsts, n)
        self.group_counts = np.diff(boundaries)
        #: Representative source row per distinct key.
        self.representatives = order[firsts] if n else firsts

        n_groups = len(firsts)
        capacity = max(16, int(max(n_groups, 1) * load_factor))
        capacity = 1 << (capacity - 1).bit_length()  # power of two -> mask
        self.capacity = capacity
        self.slots = np.full(capacity, _EMPTY, dtype=np.int64)
        if n_groups and width:
            self._insert_groups()

    # ------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return (
            self.slots.nbytes
            + self.row_ids.nbytes
            + self.group_offsets.nbytes
            + self.group_counts.nbytes
        )

    def _insert_groups(self) -> None:
        """Insert one slot entry per distinct key (group id), resolving
        collisions by vectorized linear-probing rounds with emulated CAS."""
        n_groups = len(self.group_offsets)
        pending = np.arange(n_groups, dtype=np.int64)
        rep_rows = self.representatives
        keys = [c[rep_rows] for c in self.columns[: self.width]]
        slot = (hash_columns(keys, self.width) % np.uint64(self.capacity)).astype(np.int64)
        rounds = 0
        while len(pending):
            rounds += 1
            if rounds > self.capacity + 1:
                raise RuntimeError("hash index build failed to converge")
            empty = self.slots[slot] == _EMPTY
            attempt_groups = pending[empty]
            attempt_slots = slot[empty]
            # Emulated CAS: scatter, read back, losers retry next slot.
            self.slots[attempt_slots] = attempt_groups
            won = self.slots[attempt_slots] == attempt_groups
            resolved_mask = np.zeros(len(pending), dtype=bool)
            resolved_mask[np.flatnonzero(empty)[won]] = True
            pending = pending[~resolved_mask]
            slot = (slot[~resolved_mask] + 1) % self.capacity

    # ------------------------------------------------------------------

    def _locate_groups(self, probe_columns: Sequence[np.ndarray]) -> np.ndarray:
        """Group id matched by each probe row (−1 when absent)."""
        m = len(probe_columns[0]) if probe_columns else 0
        result = np.full(m, -1, dtype=np.int64)
        if self.n_rows == 0 or m == 0 or self.width == 0:
            return result
        probe_cols = [np.asarray(c) for c in probe_columns]
        pending = np.arange(m, dtype=np.int64)
        slot = (hash_columns(probe_cols, self.width) % np.uint64(self.capacity)).astype(np.int64)
        rounds = 0
        while len(pending):
            rounds += 1
            if rounds > self.capacity + 1:
                raise RuntimeError("hash probe failed to converge")
            occupant = self.slots[slot]
            alive = occupant != _EMPTY
            if alive.any():
                live = np.flatnonzero(alive)
                live_pending = pending[live]
                groups = occupant[live]
                rep_rows = self.representatives[groups]
                equal = np.ones(len(live), dtype=bool)
                for k in range(self.width):
                    equal &= self.columns[k][rep_rows] == probe_cols[k][live_pending]
                result[live_pending[equal]] = groups[equal]
                alive[live[equal]] = False  # resolved: stop probing
            pending = pending[alive]
            slot = (slot[alive] + 1) % self.capacity
        return result

    def count(self, probe_columns: Sequence[np.ndarray]) -> np.ndarray:
        """APM ``count``: matching build rows per probe row."""
        groups = self._locate_groups(probe_columns)
        counts = np.zeros(len(groups), dtype=np.int64)
        found = groups >= 0
        counts[found] = self.group_counts[groups[found]]
        return counts

    def probe(
        self, probe_columns: Sequence[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """APM ``join``: full match enumeration.

        Returns ``(probe_row_ids, build_row_ids, counts)``: row
        ``probe_row_ids[i]`` of the probe table matches row
        ``build_row_ids[i]`` of the build table on the key prefix.
        """
        groups = self._locate_groups(probe_columns)
        counts = np.zeros(len(groups), dtype=np.int64)
        found = groups >= 0
        counts[found] = self.group_counts[groups[found]]
        offsets = exclusive_scan(counts)
        probe_ids, ranks = repeat_ranges(counts, offsets)
        build_ids = np.empty(len(probe_ids), dtype=np.int64)
        if len(probe_ids):
            matched_groups = groups[probe_ids]
            build_ids[:] = self.row_ids[self.group_offsets[matched_groups] + ranks]
        return probe_ids, build_ids, counts

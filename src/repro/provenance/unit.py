"""The ``unit`` semiring: discrete reasoning with no tag information.

This is the boolean semiring collapsed to its support — every derived fact
carries the trivial tag, so evaluation degenerates to classic set-semantics
Datalog (the mode used for Transitive Closure, Same Generation, and CSPA).
"""

from __future__ import annotations

import numpy as np

from .base import Provenance

_DTYPE = np.dtype(np.int8)


class UnitProvenance(Provenance):
    """Discrete Datalog: all tags are the single unit value."""

    name = "unit"
    idempotent_oplus = True

    def tag_dtype(self) -> np.dtype:
        return _DTYPE

    def input_tags(self, fact_ids: np.ndarray) -> np.ndarray:
        return np.ones(len(fact_ids), dtype=_DTYPE)

    def one_tags(self, n: int) -> np.ndarray:
        return np.ones(n, dtype=_DTYPE)

    def otimes(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.ones(len(a), dtype=_DTYPE)

    def oplus_reduce(self, tags, segment_ids, nseg) -> np.ndarray:
        return np.ones(nseg, dtype=_DTYPE)

    def merge_existing(self, old, new):
        # A rediscovered discrete fact never improves: no tag to refine.
        return old, np.zeros(len(old), dtype=bool)

    def prob(self, tags: np.ndarray) -> np.ndarray:
        return np.ones(len(tags), dtype=np.float64)

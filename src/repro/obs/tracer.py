"""Deterministic span tracing on the engine's simulated clocks.

Every timestamp a :class:`Span` carries is *modeled* time — the serve
clock's simulated seconds or a :class:`~repro.gpu.device.DeviceProfile`
busy-seconds delta mapped onto it.  Host wall time never enters, so two
runs with the same seed produce byte-identical traces (the same
discipline as the serving layer's latency histograms).

Span and trace IDs are splitmix64 over ``(seed, sequence)`` — the same
finalizer the stats sketches use — so IDs are stable across runs and
carry no object identity or allocation order.

The tracer is opt-in and cheap when off: :data:`NULL_TRACER` is a no-op
singleton whose ``enabled`` is always False, and every instrumentation
site guards on that single attribute before building a span.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """Scalar splitmix64 finalizer (same constants as stats/sketches)."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


class Span:
    """One timed (or instant) region on a track of the modeled timeline.

    Mutable until finished: instrumentation sites open a span at a known
    start time, attach attributes as facts become available (cache hit,
    iteration counts, deopt reasons), and close it at the modeled end
    time.  ``kind`` distinguishes execution flavors ("kernel" vs
    "interpreted" variants); ``track`` names the parallel resource the
    span occupies (a device, a shard, a request lane) for the exporter's
    thread lanes.
    """

    __slots__ = (
        "name",
        "span_id",
        "trace_id",
        "parent_id",
        "track",
        "kind",
        "start_s",
        "end_s",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        trace_id: str,
        parent_id: str | None,
        track: str,
        start_s: float,
        kind: str = "span",
        attrs: dict | None = None,
    ):
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.track = track
        self.kind = kind
        self.start_s = start_s
        self.end_s: float | None = None
        self.attrs: dict = attrs or {}

    @property
    def duration_s(self) -> float:
        return (self.end_s if self.end_s is not None else self.start_s) - self.start_s

    def __repr__(self) -> str:
        end = f"{self.end_s:.9f}" if self.end_s is not None else "open"
        return (
            f"Span({self.name!r}, track={self.track!r}, "
            f"[{self.start_s:.9f}, {end}], id={self.span_id})"
        )


class Tracer:
    """Collects spans keyed to the modeled clock.

    ``now`` is the tracer's clock cursor in simulated seconds; the serve
    scheduler pins it to each micro-batch's dispatch time
    (:meth:`set_time`), and engine runs advance it by their modeled
    service seconds, so nested run/stratum/variant spans line up exactly
    with the scheduler's outcome timestamps.

    ``sample_every=N`` traces every N-th serve request (by ticket);
    untraced batches run under :meth:`muted`, which makes ``enabled``
    False for the duration so the whole instrumentation tree no-ops.

    ``kernels=True`` additionally emits one span per APM instruction —
    the finest (and chattiest) level; off by default.
    """

    def __init__(self, seed: int = 0, sample_every: int = 1, kernels: bool = False):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.seed = seed
        self.sample_every = sample_every
        self.kernels = kernels
        self.spans: list[Span] = []
        self.now = 0.0
        self._sequence = 0
        self._mute_depth = 0

    # -- state ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._mute_depth == 0

    def reset(self) -> None:
        """Drop collected spans and rewind the clock and ID sequence —
        after this, an identical workload replays an identical trace."""
        self.spans = []
        self.now = 0.0
        self._sequence = 0
        self._mute_depth = 0

    @contextmanager
    def muted(self):
        """Suppress span collection for a region (unsampled batches)."""
        self._mute_depth += 1
        try:
            yield
        finally:
            self._mute_depth -= 1

    def sampled(self, index: int) -> bool:
        """Whether the ``index``-th unit (a request ticket) is traced."""
        return index % self.sample_every == 0

    def set_time(self, t: float) -> None:
        """Pin the clock cursor to a known modeled timestamp."""
        self.now = t

    def device_clock(self, device):
        """A callable mapping ``device``'s busy-seconds *from now on*
        onto the modeled timeline, anchored at the current cursor.  Work
        charged to the device's profile after this call moves the
        returned clock forward by exactly the charged seconds."""
        anchor = self.now
        profile = device.profile
        base = profile.busy_seconds
        return lambda: anchor + (profile.busy_seconds - base)

    # -- span lifecycle ------------------------------------------------

    def _next_id(self) -> str:
        self._sequence += 1
        return f"{_mix64(_mix64(self.seed) ^ self._sequence):016x}"

    def start(
        self,
        name: str,
        *,
        t: float | None = None,
        parent: Span | None = None,
        track: str | None = None,
        kind: str = "span",
        **attrs,
    ) -> Span | None:
        """Open a span at modeled time ``t`` (default: the cursor).
        Returns None when muted — callers pass the result straight back
        into :meth:`finish`, which tolerates it."""
        if self._mute_depth:
            return None
        span_id = self._next_id()
        span = Span(
            name,
            span_id,
            parent.trace_id if parent is not None else span_id,
            parent.span_id if parent is not None else None,
            track if track is not None else (parent.track if parent is not None else "main"),
            self.now if t is None else t,
            kind=kind,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def finish(self, span: Span | None, t: float | None = None) -> None:
        if span is None:
            return
        span.end_s = self.now if t is None else t

    def event(
        self,
        name: str,
        *,
        t: float | None = None,
        parent: Span | None = None,
        track: str | None = None,
        **attrs,
    ) -> Span | None:
        """A zero-duration instant (admission verdicts, deopts, WAL
        appends — markers with no modeled cost of their own)."""
        span = self.start(
            name, t=t, parent=parent, track=track, kind="instant", **attrs
        )
        if span is not None:
            span.end_s = span.start_s
        return span

    # -- reporting conveniences ---------------------------------------

    def profile(self, **kwargs) -> str:
        from .report import profile

        return profile(self.spans, **kwargs)

    def explain_run(self, result, **kwargs) -> str:
        from .report import explain_run

        return explain_run(result, self.spans, **kwargs)

    def to_trace_events(self) -> dict:
        from .export import to_trace_events

        return to_trace_events(self.spans)

    def export_perfetto(self, path) -> dict:
        from .export import export_perfetto

        return export_perfetto(self.spans, path)


class NullTracer:
    """The disabled tracer: every operation is a no-op and ``enabled``
    is permanently False, so instrumentation sites cost one attribute
    read.  A single process-wide instance (:data:`NULL_TRACER`) stands
    in wherever no tracer was configured."""

    enabled = False
    kernels = False
    spans: list = []
    now = 0.0
    sample_every = 1

    def reset(self) -> None:
        pass

    @contextmanager
    def muted(self):
        yield

    def sampled(self, index: int) -> bool:
        return False

    def set_time(self, t: float) -> None:
        pass

    def device_clock(self, device):
        return lambda: 0.0

    def start(self, name, **kwargs):
        return None

    def finish(self, span, t=None) -> None:
        pass

    def event(self, name, **kwargs):
        return None


NULL_TRACER = NullTracer()

"""repro — a reproduction of Lobster (ASPLOS 2026): a GPU-accelerated
framework for neurosymbolic programming.

Public API highlights:

* :class:`repro.LobsterEngine` — compile and run Datalog programs with a
  chosen provenance semiring on the virtual GPU device.
* :mod:`repro.provenance` — the semiring library (discrete, probabilistic,
  differentiable).
* :mod:`repro.baselines` — Scallop/Soufflé/ProbLog/FVLog stand-ins.
* :mod:`repro.workloads` — the paper's nine benchmark tasks.
* :mod:`repro.nn` — a minimal autodiff substrate for end-to-end training.
"""

from .errors import (
    CompileError,
    DeviceOutOfMemory,
    EvaluationTimeout,
    ExecutionError,
    LobsterError,
    ParseError,
    ResolutionError,
    StratificationError,
)
from .gpu.device import VirtualDevice
from .runtime.database import Database
from .runtime.engine import ExecutionResult, LobsterEngine, OptimizationConfig

__version__ = "0.1.0"

__all__ = [
    "CompileError",
    "Database",
    "DeviceOutOfMemory",
    "EvaluationTimeout",
    "ExecutionError",
    "ExecutionResult",
    "LobsterEngine",
    "LobsterError",
    "OptimizationConfig",
    "ParseError",
    "ResolutionError",
    "StratificationError",
    "VirtualDevice",
    "__version__",
]

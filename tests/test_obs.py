"""The obs/ subsystem: deterministic tracing, export, and reports.

Three properties anchor the tracer the way bitwise replay anchors the
engine:

* **Determinism** — span IDs, timestamps, and the exported JSON are
  pure functions of (seed, workload); host wall time never enters.
* **Accounting** — a traced serving run's per-request span children
  (queue.wait + batch.wait + serve.execute) sum to exactly the
  request's reported latency; the timeline has no dark time.
* **Neutrality** — tracing off is the NULL_TRACER no-op object, and a
  muted or disabled tracer changes no modeled result.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    LoadGenerator,
    LobsterEngine,
    ProgramCache,
    Scheduler,
    SLOClass,
)
from repro.obs import (
    NULL_TRACER,
    Tracer,
    dumps_trace_events,
    explain_run,
    export_perfetto,
    profile,
    to_trace_events,
    validate_trace_events,
)
from repro.serve import COMPLETED
from repro.workloads.analytics import TRANSITIVE_CLOSURE

from _helpers import random_digraph

TC = """
rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
query path
"""


class TestTracerCore:
    def test_ids_are_deterministic_per_seed(self):
        def collect(seed):
            tracer = Tracer(seed=seed)
            spans = [tracer.start(f"s{i}") for i in range(4)]
            for span in spans:
                tracer.finish(span, 1.0)
            return [s.span_id for s in spans]

        assert collect(7) == collect(7)
        assert collect(7) != collect(8)
        assert all(len(i) == 16 for i in collect(7))

    def test_nesting_inherits_track_and_trace(self):
        tracer = Tracer()
        root = tracer.start("root", t=0.0, track="lane")
        child = tracer.start("child", t=0.1, parent=root)
        assert child.parent_id == root.span_id
        assert child.track == "lane"
        assert child.trace_id == root.trace_id == root.span_id
        tracer.finish(child, 0.2)
        tracer.finish(root, 0.3)
        assert root.duration_s == pytest.approx(0.3)

    def test_event_is_a_zero_duration_instant(self):
        tracer = Tracer()
        root = tracer.start("root", t=0.0)
        inst = tracer.event("tick", t=0.05, parent=root, reason="x")
        assert inst.kind == "instant"
        assert inst.start_s == inst.end_s == 0.05
        assert inst.attrs["reason"] == "x"

    def test_muted_suppresses_and_restores(self):
        tracer = Tracer()
        tracer.start("kept", t=0.0)
        with tracer.muted():
            assert not tracer.enabled
            assert tracer.start("dropped", t=0.0) is None
            assert tracer.event("dropped", t=0.0) is None
        assert tracer.enabled
        assert [s.name for s in tracer.spans] == ["kept"]

    def test_sampling_every_nth(self):
        tracer = Tracer(sample_every=3)
        assert [i for i in range(9) if tracer.sampled(i)] == [0, 3, 6]
        assert all(Tracer().sampled(i) for i in range(5))

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.start("x") is None
        assert NULL_TRACER.event("x") is None
        NULL_TRACER.finish(None)  # no-op, no raise
        NULL_TRACER.set_time(5.0)
        assert NULL_TRACER.spans == []
        with NULL_TRACER.muted():
            pass

    def test_reset_clears_spans_and_ids_replay(self):
        tracer = Tracer(seed=3)
        first = tracer.start("a")
        tracer.finish(first, 1.0)
        ids = [s.span_id for s in tracer.spans]
        tracer.reset()
        assert tracer.spans == []
        again = tracer.start("a")
        tracer.finish(again, 1.0)
        assert [s.span_id for s in tracer.spans] == ids


class TestExport:
    def _spans(self):
        tracer = Tracer(seed=1)
        root = tracer.start("serve.request", t=0.0, track="request#0")
        child = tracer.start("engine.run", t=0.1, parent=root, plan="abc")
        tracer.event("jit.deopt", t=0.15, parent=child, reason="guard")
        tracer.finish(child, 0.4)
        tracer.finish(root, 0.5)
        return tracer.spans

    def test_structure_and_thread_metadata(self):
        obj = to_trace_events(self._spans())
        events = obj["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["request#0"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"serve.request", "engine.run"}
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"
        assert instant["args"]["reason"] == "guard"
        run = next(e for e in complete if e["name"] == "engine.run")
        assert run["cat"] == "engine"
        assert run["ts"] == pytest.approx(0.1e6)
        assert run["dur"] == pytest.approx(0.3e6)
        assert validate_trace_events(obj) == len(events)

    def test_tracks_map_to_tids_in_sorted_order(self):
        tracer = Tracer()
        for track in ("zeta", "alpha", "mid"):
            tracer.finish(tracer.start("s", t=0.0, track=track), 1.0)
        obj = to_trace_events(tracer.spans)
        meta = {e["args"]["name"]: e["tid"] for e in obj["traceEvents"] if e["ph"] == "M"}
        assert meta == {"alpha": 1, "mid": 2, "zeta": 3}

    def test_export_perfetto_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        obj = export_perfetto(self._spans(), path)
        loaded = json.loads(path.read_text())
        assert loaded == obj
        assert validate_trace_events(loaded) > 0

    def test_validator_rejects_malformed_traces(self):
        good = to_trace_events(self._spans())

        def corrupted(mutate):
            obj = json.loads(json.dumps(good))
            mutate(obj["traceEvents"])
            return obj

        cases = [
            lambda ev: ev.append({"ph": "Q", "name": "x", "pid": 1, "tid": 1, "args": {}}),
            lambda ev: ev[1].__setitem__("ts", -5.0),
            lambda ev: ev[2].update(args=dict(ev[1]["args"])),  # duplicate span_id
            lambda ev: ev[1]["args"].__setitem__("parent_id", "feedfeedfeedfeed"),
            # Child escapes its parent's interval.
            lambda ev: ev[2].__setitem__("dur", 1e9),
        ]
        for mutate in cases:
            with pytest.raises(ValueError):
                validate_trace_events(corrupted(mutate))

    def test_dumps_is_byte_stable(self):
        assert dumps_trace_events(self._spans()) == dumps_trace_events(self._spans())


class TestEngineTracing:
    def test_run_span_covers_service_seconds(self):
        tracer = Tracer()
        engine = LobsterEngine(TC, cache=ProgramCache(), tracing=tracer)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2), (2, 3), (0, 3)])
        result = engine.run(db)
        run = next(s for s in tracer.spans if s.name == "engine.run")
        assert run.duration_s == result.service_seconds
        names = {s.name for s in tracer.spans}
        assert {"stratum", "iteration", "variant"} <= names
        assert validate_trace_events(to_trace_events(tracer.spans)) > 0

    def test_kernel_spans_only_when_opted_in(self):
        def kinds(kernels):
            tracer = Tracer(kernels=kernels)
            engine = LobsterEngine(TC, cache=ProgramCache(), tracing=tracer)
            db = engine.create_database()
            db.add_facts("edge", [(0, 1), (1, 2)])
            engine.run(db)
            return {s.kind for s in tracer.spans}

        assert "kernel" not in kinds(False)
        assert "kernel" in kinds(True)

    def test_tracing_true_builds_a_default_tracer(self):
        engine = LobsterEngine(TC, cache=ProgramCache(), tracing=True)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        engine.run(db)
        assert engine.tracer.spans

    def test_disabled_tracing_is_null(self):
        engine = LobsterEngine(TC, cache=ProgramCache())
        assert engine.tracer is NULL_TRACER

    def test_explain_run_joins_feedback_onto_spans(self):
        tracer = Tracer()
        engine = LobsterEngine(
            TC, cache=ProgramCache(), adaptive=True, tracing=tracer
        )
        db = engine.create_database()
        db.add_facts("edge", [(i, i + 1) for i in range(6)])
        result = engine.run(db)
        text = explain_run(result, tracer)
        assert "stats bucket" in text
        assert "est" in text and "obs" in text

    def test_profile_report_renders(self):
        tracer = Tracer()
        engine = LobsterEngine(TC, cache=ProgramCache(), tracing=tracer)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)])
        engine.run(db)
        text = profile(tracer)
        assert "engine.run" in text
        assert "100.0%" in text


def make_workload(engine, *, n_requests=10, seed=3, rate_hz=150.0):
    def factory(rng, index):
        edges = random_digraph(rng, 12, 24)
        db = engine.create_database()
        db.add_facts("edge", edges, probs=[0.9] * len(edges))
        return db, {}

    return LoadGenerator(
        engine, factory, rate_hz=rate_hz, n_requests=n_requests, seed=seed
    )


class TestServingTracing:
    def _run(self, tracer, seed=3):
        engine = LobsterEngine(
            TRANSITIVE_CLOSURE, provenance="minmaxprob", cache=ProgramCache()
        )
        scheduler = Scheduler(n_devices=2, tracer=tracer)
        return scheduler.run(make_workload(engine, seed=seed).generate())

    def test_request_children_account_for_all_latency(self):
        tracer = Tracer()
        report = self._run(tracer)
        assert report.completed == report.submitted
        requests = {
            s.attrs["ticket"]: s for s in tracer.spans if s.name == "serve.request"
        }
        assert len(requests) == report.submitted
        for outcome in report.outcomes:
            span = requests[outcome.ticket]
            assert span.attrs["status"] == COMPLETED
            assert span.start_s == outcome.arrival_s
            assert span.end_s == outcome.finish_s
            children = [
                s for s in tracer.spans if s.parent_id == span.span_id
                and s.kind != "instant"
            ]
            accounted = sum(c.duration_s for c in children)
            # The issue demands >= 95% of modeled latency accounted for;
            # the lanes are built to account for 100% of it.
            assert accounted == pytest.approx(outcome.latency_s, rel=1e-9)
        assert validate_trace_events(to_trace_events(tracer.spans)) > 0

    def test_engine_runs_nest_under_batches(self):
        tracer = Tracer()
        self._run(tracer)
        batches = {s.span_id for s in tracer.spans if s.name == "serve.batch"}
        runs = [s for s in tracer.spans if s.name == "engine.run"]
        assert runs and all(r.parent_id in batches for r in runs)

    def test_two_same_seed_runs_export_identical_json(self):
        a, b = Tracer(seed=5), Tracer(seed=5)
        self._run(a)
        self._run(b)
        assert dumps_trace_events(a.spans) == dumps_trace_events(b.spans)

    def test_sampling_keeps_every_nth_ticket(self):
        tracer = Tracer(sample_every=2)
        report = self._run(tracer)
        tickets = {
            s.attrs["ticket"] for s in tracer.spans if s.name == "serve.request"
        }
        assert tickets == {
            o.ticket for o in report.outcomes if o.ticket % 2 == 0
        }

    def test_tracing_does_not_change_modeled_results(self):
        traced = self._run(Tracer())
        plain = self._run(NULL_TRACER)
        assert traced.completed == plain.completed
        assert traced.makespan_s == plain.makespan_s
        assert [o.latency_s for o in traced.outcomes] == [
            o.latency_s for o in plain.outcomes
        ]

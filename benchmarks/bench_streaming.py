"""Streaming IVM: per-tick maintain latency vs cold recompute.

Following the update-latency-distribution discipline of streaming-system
benchmarking (and SPEC CPU2026's insistence on reporting distributions,
not just end-state throughput — PAPERS.md), this benchmark drives two
long-lived materialized views through seeded sliding-window streams on
the serve clock and reports the **per-tick maintain latency** (p50 /
p95 / p99 of modeled service seconds, the quantity the serving layer
charges) against the cost of a cold from-scratch recompute of the same
database state:

* **sliding-window reachability** — the canonical streaming standing
  query: single-source reachability over a deep, stable backbone graph
  while a window of "observation tap" edges churns at its periphery.
  Cold recompute pays the backbone's whole iteration ladder every time;
  the DRed maintain pass touches only the churn's blast radius (its
  per-tick cost is flat in the backbone depth);
* **sliding-window TC** — the same churn under all-pairs transitive
  closure (a quadratic standing result), which must still be at least
  5x cheaper to maintain than to recompute at steady state;
* **static-analysis churn** — the 28-rule PSA taint analysis
  (minmaxprob) with the ``taint_source`` annotations churning (live
  analysis as code/annotation edits): a wide, shallow program where
  stratum skipping and delta seeding still win, but less dramatically —
  the benchmark reports the honest ratio and asserts a weaker floor.

Fidelity is asserted inline: after the measured ticks, the maintained
view must equal the cold run bit-for-bit (rows and probabilities).
Results go to a versioned markdown summary under ``benchmarks/results/``
(`streaming-<stamp>.md`).  ``LOBSTER_STREAM_TINY=1`` shrinks sizes for
CI smoke.
"""

from __future__ import annotations

import datetime
import os
import platform
from pathlib import Path

import numpy as np
import pytest

from repro import (
    DevicePool,
    LobsterEngine,
    MaterializedView,
    SlidingWindow,
    StreamScheduler,
    __version__,
)
from repro.serve import MetricsRegistry
from repro.stream import RelationStream
from repro.workloads.analytics import TRANSITIVE_CLOSURE
from repro.workloads.static_analysis import PROGRAM as PSA_PROGRAM
from repro.workloads.static_analysis import psa_instance

from _harness import print_table, record, report

SUITE = "streaming"

TINY = bool(os.environ.get("LOBSTER_STREAM_TINY"))

#: Window-workload sizing: backbone depth drives the cold iteration
#: ladder; the window churns leaf edges (small blast radius).
TC_BACKBONE_N = 60 if TINY else 220
REACH_BACKBONE_N = 80 if TINY else 300
TC_WINDOW = 10 if TINY else 24
TC_PER_TICK = 2
TC_WARMUP = TC_WINDOW + 6
TC_MEASURE = 8 if TINY else 25
#: Acceptance floors for the small-churn window workloads.
TC_SPEEDUP_FLOOR = 1.2 if TINY else 5.0
REACH_SPEEDUP_FLOOR = 1.5 if TINY else 7.0

REACHABILITY = """
rel reach(y) :- source(y) or (reach(x) and edge(x, y)).
query reach
"""

PSA_SUBJECT = "sunflow-core" if TINY else "sunflow"
PSA_MEASURE = 6 if TINY else 12
PSA_SPEEDUP_FLOOR = 1.0 if TINY else 1.5

SEED = 17
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def percentiles(values) -> tuple[float, float, float]:
    values = np.asarray(values)
    return (
        float(np.median(values)),
        float(np.quantile(values, 0.95)),
        float(np.quantile(values, 0.99)),
    )


def steady_state_run(view, window, warmup, measure):
    """Warm the view to steady state (window full, allocation sites
    warm) through the stream scheduler, then measure per-tick maintain
    latency over ``measure`` further ticks."""
    scheduler = StreamScheduler(
        pool=DevicePool(1, policy="least-loaded"), metrics=MetricsRegistry()
    )
    scheduler.register(view, window, period_s=5e-3)
    scheduler.run(warmup)
    stream_report = scheduler.run(measure)
    assert stream_report.ticks == measure
    return [delta.service_seconds for delta in stream_report.deltas], stream_report


def cold_recompute_seconds(build_database, trials=3) -> float:
    """Median modeled cost of evaluating the current state from scratch
    (fresh database, cold allocation sites; the program cache keeps
    compilation out of both sides of the comparison)."""
    samples = []
    for _ in range(trials):
        engine, database = build_database()
        samples.append(engine.run(database).service_seconds)
    return float(np.median(samples))


def backbone_edges(n: int) -> list[tuple[int, int]]:
    return [(i, i + 1) for i in range(n)] + [
        (i, i + 7) for i in range(0, n - 7, 9)
    ]


# ---------------------------------------------------------------------------
# Workload 1: sliding-window single-source reachability


@pytest.fixture(scope="module")
def reach_results():
    n = REACH_BACKBONE_N
    leaves = [(i, 1000 + i) for i in range(n)]
    engine = LobsterEngine(REACHABILITY)
    database = engine.create_database()
    database.add_facts("source", [(0,)])
    database.add_facts("edge", backbone_edges(n))
    engine.run(database)
    view = MaterializedView(engine, database=database, name="window_reach")
    window = SlidingWindow(
        RelationStream("edge", leaves, TC_PER_TICK, seed=SEED), TC_WINDOW
    )
    maintain, stream_report = steady_state_run(view, window, TC_WARMUP, TC_MEASURE)
    assert stream_report.maintained_fraction > 0.9

    live = window.live_rows("edge") + backbone_edges(n)

    def build_cold():
        cold_engine = LobsterEngine(REACHABILITY)
        cold_db = cold_engine.create_database()
        cold_db.add_facts("source", [(0,)])
        cold_db.add_facts("edge", sorted(live))
        return cold_engine, cold_db

    cold = cold_recompute_seconds(build_cold)
    cold_engine, cold_db = build_cold()
    cold_engine.run(cold_db)
    assert set(view.result("reach")) == set(cold_db.result("reach").rows())
    report(SUITE, "reach/maintain-tick", samples=maintain, unit="modeled_s", tiny=TINY)
    report(SUITE, "reach/cold-recompute", samples=[cold], unit="modeled_s", tiny=TINY)
    return maintain, cold


# ---------------------------------------------------------------------------
# Workload 2: sliding-window TC


@pytest.fixture(scope="module")
def tc_results():
    n = TC_BACKBONE_N
    backbone = backbone_edges(n)
    leaves = [(i, 1000 + i) for i in range(n)]

    engine = LobsterEngine(TRANSITIVE_CLOSURE)
    database = engine.create_database()
    database.add_facts("edge", backbone)
    engine.run(database)
    view = MaterializedView(engine, database=database, name="window_tc")
    window = SlidingWindow(
        RelationStream("edge", leaves, TC_PER_TICK, seed=SEED), TC_WINDOW
    )
    maintain, stream_report = steady_state_run(view, window, TC_WARMUP, TC_MEASURE)
    assert stream_report.maintained_fraction > 0.9  # retractions every tick

    live = window.live_rows("edge") + backbone

    def build_cold():
        cold_engine = LobsterEngine(TRANSITIVE_CLOSURE)
        cold_db = cold_engine.create_database()
        cold_db.add_facts("edge", sorted(live))
        return cold_engine, cold_db

    cold = cold_recompute_seconds(build_cold)
    # Bitwise fidelity of the maintained view at the measurement's end.
    cold_engine, cold_db = build_cold()
    cold_engine.run(cold_db)
    assert set(view.result("path")) == set(cold_db.result("path").rows())
    report(SUITE, "TC/maintain-tick", samples=maintain, unit="modeled_s", tiny=TINY)
    report(SUITE, "TC/cold-recompute", samples=[cold], unit="modeled_s", tiny=TINY)
    return maintain, cold


# ---------------------------------------------------------------------------
# Workload 3: static-analysis annotation churn


@pytest.fixture(scope="module")
def psa_results():
    instance = psa_instance(PSA_SUBJECT)
    churn_rel = "taint_source"
    base_rows = instance["probabilistic"][churn_rel][0]

    def load_persistent(database):
        for name, rows in instance["discrete"].items():
            database.add_facts(name, rows)
        for name, (rows, probs) in instance["probabilistic"].items():
            if name == churn_rel:
                continue
            database.add_facts(name, rows, probs=list(probs))

    engine = LobsterEngine(PSA_PROGRAM, provenance="minmaxprob")
    database = engine.create_database()
    load_persistent(database)
    engine.run(database)
    view = MaterializedView(engine, database=database, name="psa_churn")
    stream = RelationStream(
        churn_rel, base_rows, 1, seed=SEED, prob_range=(0.7, 1.0)
    )
    window = SlidingWindow(stream, max(2, len(stream) - 2))
    maintain, stream_report = steady_state_run(
        view, window, len(stream) + 4, PSA_MEASURE
    )
    assert stream_report.maintained_fraction > 0.9

    probs = {
        event.row: event.prob
        for tick in range(4 * len(stream))
        for event in stream.batch(tick)
    }
    live = window.live_rows(churn_rel)

    def build_cold():
        cold_engine = LobsterEngine(PSA_PROGRAM, provenance="minmaxprob")
        cold_db = cold_engine.create_database()
        load_persistent(cold_db)
        cold_db.add_facts(churn_rel, live, probs=[probs[r] for r in live])
        return cold_engine, cold_db

    cold = cold_recompute_seconds(build_cold)
    cold_engine, cold_db = build_cold()
    cold_engine.run(cold_db)
    for relation in ("alarm_critical", "alarm_major", "alarm_minor"):
        warm = view.result(relation)
        reference = cold_engine.query_probs(cold_db, relation)
        assert set(warm) == set(reference), relation
        for row, prob in warm.items():
            assert prob == pytest.approx(reference[row], abs=1e-9)
    report(SUITE, "PSA/maintain-tick", samples=maintain, unit="modeled_s", tiny=TINY)
    report(SUITE, "PSA/cold-recompute", samples=[cold], unit="modeled_s", tiny=TINY)
    return maintain, cold


# ---------------------------------------------------------------------------


def write_summary(rows: list[list[str]]) -> None:
    stamp = datetime.datetime.now()
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"streaming-{stamp:%Y%m%d-%H%M%S}.md"
    lines = [
        f"# Streaming IVM summary — {stamp:%Y-%m-%d %H:%M:%S}",
        "",
        f"- lobster-repro version: `{__version__}`",
        f"- Python: `{platform.python_version()}` on `{platform.platform()}`",
        f"- mode: {'tiny (smoke sizes)' if TINY else 'full'}",
        "",
        "Per-tick maintain latency (modeled serve-clock seconds) at steady",
        "state vs a cold from-scratch recompute of the same database state.",
        "",
        "| workload | maintain p50 | p95 | p99 | cold p50 | speedup |",
        "|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(v) for v in row) + " |")
    lines.append("")
    out.write_text("\n".join(lines) + "\n")
    print(f"wrote {out}")


def test_streaming_update_latency(reach_results, tc_results, psa_results, benchmark):
    def check():
        table = []
        summary_rows = []
        for name, (maintain, cold), floor in (
            ("sliding-window reachability", reach_results, REACH_SPEEDUP_FLOOR),
            ("sliding-window TC", tc_results, TC_SPEEDUP_FLOOR),
            ("static-analysis churn", psa_results, PSA_SPEEDUP_FLOOR),
        ):
            p50, p95, p99 = percentiles(maintain)
            speedup = cold / p50
            table.append(
                [
                    name,
                    f"{p50 * 1e6:.0f}us",
                    f"{p95 * 1e6:.0f}us",
                    f"{p99 * 1e6:.0f}us",
                    f"{cold * 1e6:.0f}us",
                    f"{speedup:.1f}x",
                ]
            )
            summary_rows.append(table[-1])
            assert p99 > 0.0
            assert speedup >= floor, (
                f"{name}: maintain p50 {p50 * 1e6:.0f}us vs cold "
                f"{cold * 1e6:.0f}us = {speedup:.1f}x < {floor}x floor"
            )
        print_table(
            "Streaming IVM — per-tick maintain latency vs cold recompute",
            ["workload", "maintain p50", "p95", "p99", "cold p50", "speedup"],
            table,
        )
        write_summary(summary_rows)

    record(benchmark, check)


def test_streaming_benchmark_tick(tc_results, benchmark):
    """pytest-benchmark hook: one steady-state maintain tick's cost is
    already captured in the fixture; re-run a tiny end-to-end slice."""

    def run():
        engine = LobsterEngine(TRANSITIVE_CLOSURE)
        view = MaterializedView(engine, name="bench_tick")
        window = SlidingWindow(
            RelationStream("edge", [(i, i + 1) for i in range(20)], 2, seed=1), 5
        )
        for _ in range(8):
            view.apply(window.advance())

    benchmark.pedantic(run, rounds=2, iterations=1)

"""Strong scaling of sharded execution — TC and CSPA at 1..8 shards.

For one fixed problem, ``LobsterEngine(shards=N)`` splits the semi-naive
frontier across N virtual devices; the *modeled* steady-state makespan
(`ExecutionResult.simulated_parallel_seconds`: the busiest shard's
kernel + transfer + exchange + allocation seconds) should fall as shards
are added, until cross-device exchange traffic — reported separately
through the merged :class:`DeviceProfile` — becomes the bottleneck.
This mirrors the strong-scaling methodology of the SPEC CPU2026
characterization work: controlled shard counts, one workload, the
communication term broken out.

Shape asserted: on a large transitive closure the makespan decreases
monotonically from 1 to 4 shards (the paper-adjacent scaling claim);
the 8-shard point is reported to show where exchange latency turns the
curve.  ``LOBSTER_SCALEOUT_TINY=1`` shrinks the workloads to smoke-test
the sharded paths (CI); the monotonicity assertion is skipped there —
latency terms dominate tiny deltas — but result identity is still
checked at every shard count.
"""

from __future__ import annotations

import os

import pytest

from repro import LobsterEngine
from repro.workloads.analytics import CSPA, TRANSITIVE_CLOSURE, cspa_instance
from repro.workloads.graphs import load_graph, road_grid

from _harness import print_table, profile_metrics, record, report

SUITE = "scaleout"

TINY = bool(os.environ.get("LOBSTER_SCALEOUT_TINY"))
SHARD_COUNTS = [1, 2, 4, 8]


def tc_edges():
    if TINY:
        return road_grid(8, seed=3)
    return load_graph("fe-sphere")


def cspa_facts():
    # httpd is the smallest subject; it is already CI-friendly, so the
    # tiny switch only shrinks the TC graph.
    return cspa_instance("httpd")


def run_tc(shards: int):
    engine = LobsterEngine(TRANSITIVE_CLOSURE, provenance="unit", shards=shards)
    db = engine.create_database()
    db.add_facts("edge", tc_edges())
    result = engine.run(db)
    return result, db.result("path").n_rows


def run_cspa(shards: int):
    engine = LobsterEngine(CSPA, provenance="unit", shards=shards)
    db = engine.create_database()
    facts = cspa_facts()
    db.add_facts("assign", facts["assign"])
    db.add_facts("dereference", facts["dereference"])
    result = engine.run(db)
    return result, db.result("value_flow").n_rows


@pytest.fixture(scope="module")
def results():
    rows = {}
    for name, runner in (("TC", run_tc), ("CSPA", run_cspa)):
        rows[name] = {}
        for shards in SHARD_COUNTS:
            result, n_rows = runner(shards)
            rows[name][shards] = (result, n_rows)
            report(
                SUITE, f"{name}/shards{shards}",
                samples=[result.simulated_parallel_seconds], unit="modeled_s",
                metrics=profile_metrics(result.profile),
                shards=shards, rows=n_rows, tiny=TINY,
            )
    return rows


def _table_rows(per_shard):
    table = []
    base = per_shard[1][0].simulated_parallel_seconds
    for shards, (result, n_rows) in per_shard.items():
        profile = result.profile  # merged across the shard pool
        sim = result.simulated_parallel_seconds
        table.append(
            [
                shards,
                n_rows,
                f"{sim * 1e3:.3f}ms",
                f"{profile.kernel_seconds * 1e3:.3f}ms",
                f"{profile.exchange_seconds * 1e3:.3f}ms",
                f"{profile.exchange_bytes}",
                f"{base / sim:.2f}x" if sim else "-",
            ]
        )
    return table


def test_scaleout_strong_scaling(results, benchmark):
    def check():
        for workload, per_shard in results.items():
            print_table(
                f"Scale-out — {workload} strong scaling"
                + (" (tiny)" if TINY else ""),
                [
                    "shards",
                    "rows",
                    "sim makespan",
                    "kernel (sum)",
                    "exchange (sum)",
                    "exch bytes",
                    "speedup",
                ],
                _table_rows(per_shard),
            )

        # Correctness at every scale: identical result cardinality.
        for per_shard in results.values():
            counts = {n_rows for _, n_rows in per_shard.values()}
            assert len(counts) == 1

        tc = results["TC"]
        # Exchange cost exists exactly when there is more than one shard,
        # and is reported apart from host<->device transfer time.
        assert tc[1][0].profile.exchange_seconds == 0.0
        for shards in SHARD_COUNTS[1:]:
            assert tc[shards][0].profile.exchange_seconds > 0.0

        if not TINY:
            # Shape: makespan falls monotonically from 1 to 4 shards on
            # the large closure (at 8, exchange latency turns the curve).
            sims = [tc[n][0].simulated_parallel_seconds for n in (1, 2, 4)]
            assert sims[0] > sims[1] > sims[2], sims

    record(benchmark, check)


def test_scaleout_benchmark_tc_4shards(benchmark):
    def run():
        run_tc(4)

    benchmark.pedantic(run, rounds=1, iterations=1)

"""High-level program facade: source text -> resolved program."""

from __future__ import annotations

from .parser import parse
from .resolver import ResolvedProgram, resolve
from ..interning import SymbolTable


def compile_source(source: str, symbols: SymbolTable | None = None) -> ResolvedProgram:
    """Parse + resolve Datalog source text in one call.

    This is the front-end entry point used by
    :class:`repro.runtime.engine.LobsterEngine` and by the baseline engines
    (all engines share the front-end, as Lobster reuses Scallop's).
    """
    return resolve(parse(source), symbols)

"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables or figures: it runs
the same logic program on Lobster and on the relevant baselines, prints
rows shaped like the paper's, and asserts the *shape* of the result (who
wins, roughly by how much) rather than absolute numbers — our substrate
is a simulator, not the authors' testbed (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import DeviceOutOfMemory, EvaluationTimeout


@dataclass
class Measurement:
    seconds: float | None
    status: str = "ok"  # ok | oom | timeout

    @property
    def label(self) -> str:
        if self.status == "oom":
            return "OOM"
        if self.status == "timeout":
            return "timeout"
        return f"{self.seconds:.3f}s"


def timed(fn) -> Measurement:
    """Run ``fn`` once, mapping OOM/timeout to status labels."""
    start = time.perf_counter()
    try:
        fn()
    except DeviceOutOfMemory:
        return Measurement(None, "oom")
    except EvaluationTimeout:
        return Measurement(None, "timeout")
    return Measurement(time.perf_counter() - start)


def speedup(baseline: Measurement, ours: Measurement) -> str:
    if baseline.status != "ok" or ours.status != "ok" or ours.seconds == 0:
        return "-"
    return f"{baseline.seconds / ours.seconds:.2f}x"


def record(benchmark, fn) -> None:
    """Run a figure's table-printing + shape assertions under the
    pytest-benchmark fixture, so the figure tests execute (and print their
    paper-shaped tables) in ``--benchmark-only`` mode.  The heavy
    measurement happens in module-scoped fixtures; the recorded time is
    the check itself."""
    benchmark.pedantic(fn, rounds=1, iterations=1)


#: Paper-shaped tables are also appended here, so they survive pytest's
#: output capture when running without ``-s``.  Lives under results/
#: alongside the versioned summaries that ``run_all.py`` writes.
RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "tables.txt"


def print_table(title: str, header: list[str], rows: list[list[str]]) -> None:
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with RESULTS_PATH.open("a") as handle:
        handle.write(text)

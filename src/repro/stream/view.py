"""Materialized views: query results kept continuously correct.

A :class:`MaterializedView` binds one compiled program (through its
engine — the ProgramCache key identifies the artifact) to one database
and keeps the program's query relations evaluated as signed input deltas
arrive.  Each :meth:`MaterializedView.apply` stages a
:class:`~repro.stream.window.TickDelta` (retractions first, then
inserts), runs the engine — the DRed maintain path when it is sound, the
checkpointed-recompute fallback otherwise, never a wrong answer — and
diffs the new results against the previous ones into a
:class:`ViewDelta`: the rows (with probabilities) that entered, left, or
changed.

View deltas satisfy the conservation law by construction:
``state_before ⊎ inserted ∖ retracted == state_after`` per relation (a
changed row appears as a retract of the old value plus an insert of the
new), so replaying the retained history from tick 0 over the baseline
reconstructs the current state exactly — that is what
:meth:`~repro.stream.subscription.Subscription.replay` does, and what
the streaming tests verify.

Staleness: the view records the database's mutation counter after every
apply.  If anything else mutates the database (a direct ``add_facts``,
another view, a rebuild), the next :meth:`apply` raises
:class:`~repro.errors.StaleViewError` instead of silently emitting
deltas relative to a state it never observed; :meth:`refresh`
re-baselines (and invalidates retained history, so stale subscriptions
also fail loudly rather than resume mid-stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .subscription import Subscription
from .window import TickDelta
from ..errors import CheckpointMismatchError, LobsterError, StaleViewError

if TYPE_CHECKING:  # circular-import guard
    from ..runtime.database import Database
    from ..runtime.engine import ExecutionResult, LobsterEngine

__all__ = ["MaterializedView", "ViewDelta"]

#: row -> probability, one relation's materialized state.
RelationState = dict[tuple, float]


@dataclass
class ViewDelta:
    """The result-side delta of one applied tick."""

    tick: int
    #: Per relation: (row, prob) pairs that entered the view (including
    #: the new value of a row whose probability changed).
    inserted: dict[str, list[tuple[tuple, float]]] = field(default_factory=dict)
    #: Per relation: (row, prob) pairs that left the view (including the
    #: old value of a changed row).
    retracted: dict[str, list[tuple[tuple, float]]] = field(default_factory=dict)
    #: Whether the run maintained in place (DRed) vs fell back.
    maintained: bool = False
    #: The fallback reason when the run recomputed instead.
    fallback: str | None = None
    #: Modeled device occupancy of the tick's run (the serve clock's
    #: charge; what the update-latency histograms observe).
    service_seconds: float = 0.0
    #: Host wall seconds of the tick's run.
    wall_seconds: float = 0.0
    #: Source ticks covered (> 1 when the scheduler coalesced).
    ticks_covered: int = 1

    @property
    def is_empty(self) -> bool:
        return not any(self.inserted.values()) and not any(self.retracted.values())

    def change_count(self) -> int:
        return sum(len(rows) for rows in self.inserted.values()) + sum(
            len(rows) for rows in self.retracted.values()
        )

    def state_dict(self) -> dict:
        """Serializable form (checkpointed view history)."""
        return {
            "tick": self.tick,
            "inserted": dict(self.inserted),
            "retracted": dict(self.retracted),
            "maintained": self.maintained,
            "fallback": self.fallback,
            "service_seconds": self.service_seconds,
            "wall_seconds": self.wall_seconds,
            "ticks_covered": self.ticks_covered,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ViewDelta":
        return cls(
            tick=int(state["tick"]),
            inserted={rel: list(rows) for rel, rows in state["inserted"].items()},
            retracted={rel: list(rows) for rel, rows in state["retracted"].items()},
            maintained=bool(state["maintained"]),
            fallback=state["fallback"],
            service_seconds=float(state["service_seconds"]),
            wall_seconds=float(state["wall_seconds"]),
            ticks_covered=int(state["ticks_covered"]),
        )


class MaterializedView:
    """One program's query results, maintained under signed deltas."""

    def __init__(
        self,
        engine: "LobsterEngine",
        relations: list[str] | None = None,
        database: "Database | None" = None,
        name: str = "view",
        max_history: int | None = None,
        metrics=None,
    ):
        """``relations`` defaults to the program's ``query`` declarations
        (every IDB relation when the program declares none).  ``database``
        may carry pre-loaded facts; if it was already evaluated, that
        state becomes the baseline deltas are measured against.
        ``max_history`` bounds the retained :class:`ViewDelta` log
        (``None`` = unbounded, which full replay requires); ``metrics``
        (a MetricsRegistry-shaped object) observes per-tick maintain
        latency and outcomes."""
        self.engine = engine
        self.name = name
        self.database = database or engine.create_database()
        if relations is None:
            relations = list(engine.apm.queries) or [
                predicate
                for stratum in engine.apm.strata
                for predicate in stratum.predicates
            ]
        if not relations:
            raise LobsterError(
                "a MaterializedView needs at least one result relation "
                "(declare `query <rel>` in the program or pass relations=)"
            )
        self.relations = list(relations)
        self.max_history = max_history
        self.metrics = metrics
        self._history: list[ViewDelta] = []
        self._pruned = 0  # deltas dropped from the front of the history
        #: Bumped by refresh(): subscriptions from an earlier epoch fail
        #: loudly even when their cursor happens to equal the prune
        #: point (a caught-up reader still missed the re-baseline).
        self._epoch = 0
        self._subscribers: list[Subscription] = []
        #: Durability hook: called as ``(subscription_name, cursor,
        #: epoch)`` whenever a *named* subscription's cursor advances —
        #: a RecoveryManager logs these so consumers resume exactly-once.
        self.cursor_listener: Callable[[str, int, int], None] | None = None
        #: Cursors recovered from a checkpoint/WAL, waiting for their
        #: consumers to :meth:`resubscribe` by name.
        self._recovered_cursors: dict[str, tuple[int, int]] = {}
        if self.database.evaluated:
            self._baseline = self._current_state()
        else:
            self._baseline = {relation: {} for relation in self.relations}
        self._state = {
            relation: dict(rows) for relation, rows in self._baseline.items()
        }
        self._db_version = self.database.version

    # ------------------------------------------------------------------

    @property
    def ticks_applied(self) -> int:
        return self._pruned + len(self._history)

    @property
    def history(self) -> list[ViewDelta]:
        """The retained delta log (oldest first; may be pruned)."""
        return list(self._history)

    @property
    def pruned_ticks(self) -> int:
        return self._pruned

    def result(self, relation: str) -> RelationState:
        """The view's current state for one relation (row -> prob)."""
        if relation not in self._state:
            raise LobsterError(
                f"relation {relation!r} is not part of this view; "
                f"tracked: {self.relations}"
            )
        return dict(self._state[relation])

    def baseline(self) -> dict[str, RelationState]:
        """The pre-stream state replay starts from."""
        return {relation: dict(rows) for relation, rows in self._baseline.items()}

    # ------------------------------------------------------------------

    def apply(
        self,
        delta: TickDelta,
        runner: "Callable[[Database], ExecutionResult] | None" = None,
    ) -> ViewDelta:
        """Stage ``delta``, run the engine, and emit the result delta.

        ``runner`` overrides how the evaluation executes (the stream
        scheduler passes a session step pinned to a pool device so
        maintenance shares devices with request traffic); the default is
        the engine's own device.  Raises
        :class:`~repro.errors.StaleViewError` if the database was
        mutated outside this view since the last apply.

        Cost note: the maintain pass itself is proportional to the
        delta's blast radius (that is what the latency histograms
        measure, on the modeled device clock), but the *host-side* diff
        that produces the :class:`ViewDelta` re-materializes and
        compares the tracked relations in full — O(|view|) Python work
        per tick.  That exactness is what makes the conservation law
        hold by construction; deriving deltas from the engine's changed
        masks instead would trade that guarantee for per-tick host cost
        proportional to the change."""
        if self.database.version != self._db_version:
            raise StaleViewError(
                f"view {self.name!r}: database was mutated outside the "
                "view's tick path (call refresh() to re-baseline)"
            )
        for relation, rows in delta.retracts.items():
            if rows:
                self.database.retract_facts(relation, rows)
        for relation, (rows, probs) in delta.inserts.items():
            if not rows:
                continue
            if probs is None:
                self.database.add_facts(relation, rows)
                continue
            # A per-row None marks a discrete (untagged) fact in an
            # otherwise probabilistic batch — stage it separately rather
            # than collapsing it to probability 0.
            discrete = [row for row, prob in zip(rows, probs) if prob is None]
            tagged = [
                (row, prob) for row, prob in zip(rows, probs) if prob is not None
            ]
            if discrete:
                self.database.add_facts(relation, discrete)
            if tagged:
                self.database.add_facts(
                    relation,
                    [row for row, _ in tagged],
                    probs=[prob for _, prob in tagged],
                )
        if runner is None:
            result = self.engine.run(self.database)
        else:
            result = runner(self.database)
        self._db_version = self.database.version

        new_state = self._current_state()
        view_delta = ViewDelta(
            tick=delta.tick,
            maintained=result.maintained,
            fallback=result.maintain_fallback,
            service_seconds=result.service_seconds,
            wall_seconds=result.wall_seconds,
            ticks_covered=delta.ticks_covered,
        )
        for relation in self.relations:
            old, new = self._state[relation], new_state[relation]
            retracted = [
                (row, prob)
                for row, prob in sorted(old.items())
                if new.get(row) != prob
            ]
            inserted = [
                (row, prob)
                for row, prob in sorted(new.items())
                if old.get(row) != prob
            ]
            if retracted:
                view_delta.retracted[relation] = retracted
            if inserted:
                view_delta.inserted[relation] = inserted
        self._state = new_state
        self._history.append(view_delta)
        if self.max_history is not None:
            while len(self._history) > self.max_history:
                self._history.pop(0)
                self._pruned += 1
        if self.metrics is not None:
            self.metrics.counter(f"stream.ticks.{self.name}").inc()
            if result.maintained:
                self.metrics.counter(f"stream.maintained.{self.name}").inc()
            elif result.maintain_fallback is not None:
                self.metrics.counter(f"stream.fallbacks.{self.name}").inc()
            self.metrics.histogram(
                f"stream.maintain_latency_s.{self.name}"
            ).observe(result.service_seconds)
            changed = view_delta.change_count()
            if changed:
                # Quiet ticks are visible through stream.ticks minus this
                # histogram's count; folding them in as 1-row ticks would
                # misstate the churn distribution.
                self.metrics.histogram(
                    f"stream.changed_rows.{self.name}", lo=1.0
                ).observe(changed)
        for subscription in self._subscribers:
            subscription._notify(view_delta)
        return view_delta

    def refresh(self) -> None:
        """Re-baseline after an out-of-band database mutation: run the
        engine, capture the current state as the new baseline, and drop
        the retained history (stale subscriptions then fail loudly on
        their next poll instead of resuming mid-stream)."""
        self.engine.run(self.database)
        self._db_version = self.database.version
        self._baseline = self._current_state()
        self._state = {
            relation: dict(rows) for relation, rows in self._baseline.items()
        }
        self._pruned += len(self._history)
        self._history = []
        self._epoch += 1

    def subscribe(self, callback=None, *, name: str | None = None) -> Subscription:
        """A cursor over this view's delta stream from the current tick
        onward; ``callback`` additionally receives every future
        :class:`ViewDelta` as it is applied (push mode).  ``name`` makes
        the cursor *durable*: its position is reported through
        :attr:`cursor_listener` on every poll (a RecoveryManager logs it
        to the WAL) and survives a crash — reclaim it after recovery with
        :meth:`resubscribe`."""
        subscription = Subscription(self, self.ticks_applied, callback)
        subscription.epoch = self._epoch
        subscription.name = name
        self._subscribers.append(subscription)
        return subscription

    def resubscribe(self, name: str, callback=None) -> Subscription:
        """Reclaim a durable cursor after recovery: the subscription
        resumes at the last position the consumer *acknowledged* (polled
        and had durably logged) before the crash — deltas applied since
        are delivered on the next poll, deltas polled before are not
        re-delivered.  A name never seen before subscribes from tick 0
        of the retained history (cursor at the prune point), so a
        consumer that crashed before its first poll still sees every
        delta it missed."""
        cursor, epoch = self._recovered_cursors.pop(
            name, (self._pruned, self._epoch)
        )
        subscription = Subscription(self, cursor, callback)
        subscription.epoch = epoch
        subscription.name = name
        self._subscribers.append(subscription)
        return subscription

    def _cursor_moved(self, subscription: Subscription) -> None:
        """A named subscription advanced its cursor; report it to the
        durability layer (synchronously, *before* the consumer acts on
        the polled deltas, so the acknowledgement is on disk first)."""
        if subscription.name is not None and self.cursor_listener is not None:
            self.cursor_listener(
                subscription.name, subscription.cursor, subscription.epoch
            )

    # ------------------------------------------------------------------
    # Durability (checkpoint snapshot / restore)

    def state_dict(self) -> dict:
        """Serializable view-side state: baseline, current state, the
        retained delta history, epoch/prune bookkeeping, and the durable
        cursors of named subscriptions.  The database is *not* included —
        it is checkpointed alongside (one database can back several
        views)."""
        cursors = dict(self._recovered_cursors)
        for subscription in self._subscribers:
            if subscription.name is not None:
                cursors[subscription.name] = (
                    subscription.cursor, subscription.epoch
                )
        return {
            "relations": list(self.relations),
            "max_history": self.max_history,
            "baseline": {rel: dict(rows) for rel, rows in self._baseline.items()},
            "state": {rel: dict(rows) for rel, rows in self._state.items()},
            "history": [delta.state_dict() for delta in self._history],
            "pruned": self._pruned,
            "epoch": self._epoch,
            "cursors": cursors,
        }

    def restore_state(self, state: dict) -> None:
        """Load :meth:`state_dict` output into this view (whose database
        must already hold the matching restored state).  The tracked
        relation list must agree — a different program checkpointed this
        state otherwise."""
        if list(state["relations"]) != list(self.relations):
            raise CheckpointMismatchError(
                f"view state tracks relations {list(state['relations'])!r} "
                f"but this view tracks {list(self.relations)!r} — the "
                "checkpoint was written by a different program"
            )
        self.max_history = state["max_history"]
        self._baseline = {
            rel: dict(rows) for rel, rows in state["baseline"].items()
        }
        self._state = {rel: dict(rows) for rel, rows in state["state"].items()}
        self._history = [
            ViewDelta.from_state(delta) for delta in state["history"]
        ]
        self._pruned = int(state["pruned"])
        self._epoch = int(state["epoch"])
        self._recovered_cursors = {
            name: (int(cursor), int(epoch))
            for name, (cursor, epoch) in state["cursors"].items()
        }
        self._db_version = self.database.version

    # ------------------------------------------------------------------

    def _current_state(self) -> dict[str, RelationState]:
        return {
            relation: self.engine.query_probs(self.database, relation)
            for relation in self.relations
        }

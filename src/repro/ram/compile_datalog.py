"""Lowering: resolved Datalog rules -> RAM relational algebra.

Each rule body becomes a left-deep tree of joins over its positive atoms
(ordered by the planner), with selections applied as soon as their
variables are bound, anti-joins for negated atoms, and a final projection
computing the head terms.  This mirrors the mid-level representation the
paper assumes as input ("we assume an existing Datalog compiler is capable
of converting a user-level program to a mid-level program based on
relational algebra", §3).

When a :class:`~repro.stats.StatsCatalog` is supplied, atom order comes
from the cost-based planner (:func:`repro.ram.planner.plan_atoms`) and the
lowering additionally *narrows* intermediate layouts: after each join,
variables no longer needed by later atoms, comparisons, negations, or the
head are projected away, so estimated intermediate widths — not just row
counts — shrink.  Both changes affect operator order/shape only; the
produced relation contents are identical either way (asserted bitwise by
the planner tests across semirings).
"""

from __future__ import annotations

from ..datalog import ast
from ..datalog.resolver import ResolvedProgram, ResolvedRule
from ..errors import CompileError
from ..stats.estimate import CostModel
from ..stats.relation_stats import StatsCatalog
from . import exprs as E
from . import planner
from .ir import (
    Antijoin,
    Join,
    Product,
    Project,
    RamProgram,
    RamRule,
    RamStratum,
    Scan,
    Select,
    scans_of,
)


def compile_program(
    resolved: ResolvedProgram,
    stats: StatsCatalog | None = None,
    cost_model: CostModel | None = None,
) -> RamProgram:
    """Lower a resolved Datalog program to RAM.

    ``stats=None`` reproduces the historical syntactic pipeline exactly;
    with a catalog, rule bodies are ordered by estimated cost instead.
    """
    strata: list[RamStratum] = []
    for stratum in resolved.strata:
        pred_set = set(stratum.predicates)
        ram_rules: list[RamRule] = []
        for rule in stratum.rules:
            expr, plan = compile_rule(rule, resolved, stats, cost_model)
            scans = scans_of(expr)
            recursive_atoms = tuple(
                index for index, scan in enumerate(scans) if scan.predicate in pred_set
            )
            ram_rules.append(
                RamRule(
                    rule.head,
                    expr,
                    recursive_atoms,
                    estimated_rows=plan.estimated_rows,
                    estimated_cost=plan.estimated_cost,
                )
            )
        strata.append(RamStratum(stratum.predicates, ram_rules, stratum.recursive))
    return RamProgram(strata, dict(resolved.schemas), list(resolved.queries))


def compile_rule(
    rule: ResolvedRule,
    resolved: ResolvedProgram,
    stats: StatsCatalog | None = None,
    cost_model: CostModel | None = None,
):
    if not rule.positives:
        raise CompileError(
            f"rule for {rule.head!r} has no positive body atoms; "
            "use a fact block for ground facts"
        )
    plan = planner.plan_atoms(rule.positives, rule.comparisons, stats, cost_model)
    ordered = plan.order

    # Variables with a life after the k-th atom: later atoms, pending
    # comparisons, negations, and the head all pin a variable live.
    keep_sets = _live_variables(rule, ordered) if plan.used_stats else None

    current, layout = _compile_atom(ordered[0], resolved)
    applied: set[int] = set()
    current, layout = _apply_ready_comparisons(current, layout, rule.comparisons, applied)

    for position, atom in enumerate(ordered[1:], start=1):
        side, side_layout = _compile_atom(atom, resolved)
        current, layout = _join(current, layout, side, side_layout)
        current, layout = _apply_ready_comparisons(current, layout, rule.comparisons, applied)
        if keep_sets is not None:
            current, layout = _narrow(current, layout, keep_sets[position])

    if len(applied) != len(rule.comparisons):
        raise CompileError(f"rule for {rule.head!r} has unapplicable comparisons")

    for negated in rule.negatives:
        current, layout = _antijoin(current, layout, negated, resolved)

    head_exprs = tuple(_term_to_expr(term, layout) for term in rule.head_terms)
    return Project(current, head_exprs), plan


def _live_variables(rule: ResolvedRule, ordered: list[ast.Atom]) -> list[set[str]]:
    """``keep_sets[k]``: variables still needed after joining atom ``k``."""
    always: set[str] = set()
    for term in rule.head_terms:
        always |= planner.term_vars(term)
    for atom in rule.negatives:
        always |= planner.atom_vars(atom)
    for comparison in rule.comparisons:
        # Comparisons apply as soon as bound; keeping their variables
        # live until then is enough, but tracking exact application
        # points buys little — keep them live throughout.
        always |= planner.term_vars(comparison.lhs)
        always |= planner.term_vars(comparison.rhs)
    keep_sets: list[set[str]] = []
    suffix: set[str] = set()
    for atom in reversed(ordered):
        # Built back to front: when the reversed walk sits on atom k, the
        # suffix holds vars of atoms k+1.., so the appended set is what
        # stays live *after* atom k joins.
        keep_sets.append(set(always) | set(suffix))
        suffix |= planner.atom_vars(atom)
    keep_sets.reverse()
    return keep_sets


def _narrow(expr, layout: list[str], keep: set[str]):
    """Project away dead variables (estimated-width reduction)."""
    wanted = [name for name in layout if name in keep]
    if not wanted or wanted == layout:
        return expr, layout
    return _permute_exact(expr, layout, wanted), wanted


# ---------------------------------------------------------------------------


def _compile_atom(atom: ast.Atom, resolved: ResolvedProgram):
    """Compile one atom into Scan / Select / Project, returning the variable
    layout of the projected columns."""
    expr = Scan(atom.predicate)
    conditions: list[E.Expr] = []
    first_position: dict[str, int] = {}
    layout: list[str] = []

    for position, arg in enumerate(atom.args):
        if isinstance(arg, ast.Wildcard):
            continue
        if isinstance(arg, ast.Var):
            if arg.name in first_position:
                conditions.append(
                    E.Binary("==", E.Col(position), E.Col(first_position[arg.name]))
                )
            else:
                first_position[arg.name] = position
                layout.append(arg.name)
            continue
        if isinstance(arg, ast.IntConst):
            conditions.append(E.Binary("==", E.Col(position), E.Const(int(arg.value))))
            continue
        if isinstance(arg, ast.FloatConst):
            conditions.append(E.Binary("==", E.Col(position), E.Const(float(arg.value))))
            continue
        raise CompileError(
            f"argument {arg!r} of body atom {atom.predicate!r} must be a "
            "variable, wildcard, or constant"
        )

    if conditions:
        expr = Select(expr, _conjoin(conditions))

    arity = len(resolved.schemas[atom.predicate])
    wanted = [first_position[name] for name in layout]
    if wanted != list(range(arity)):
        expr = Project(expr, tuple(E.Col(position) for position in wanted))
    return expr, layout


def _join(left, left_layout: list[str], right, right_layout: list[str]):
    shared = [name for name in left_layout if name in right_layout]
    if not shared:
        return Product(left, right), left_layout + right_layout
    left = _permute(left, left_layout, shared)
    right = _permute(right, right_layout, shared)
    left_rest = [name for name in left_layout if name not in shared]
    right_rest = [name for name in right_layout if name not in shared]
    joined = Join(left, right, len(shared))
    return joined, shared + left_rest + right_rest


def _antijoin(current, layout: list[str], atom: ast.Atom, resolved: ResolvedProgram):
    side, side_layout = _compile_atom(
        ast.Atom(atom.predicate, atom.args, negated=False), resolved
    )
    shared = [name for name in layout if name in side_layout]
    current = _permute(current, layout, shared)
    side = _permute_exact(side, side_layout, shared)
    new_layout = shared + [name for name in layout if name not in shared]
    return Antijoin(current, side, len(shared)), new_layout


def _permute(expr, layout: list[str], prefix: list[str]):
    """Project so ``prefix`` variables come first (rest keep their order)."""
    new_order = prefix + [name for name in layout if name not in prefix]
    if new_order == layout:
        return expr
    return Project(expr, tuple(E.Col(layout.index(name)) for name in new_order))


def _permute_exact(expr, layout: list[str], wanted: list[str]):
    """Project to exactly the ``wanted`` variables, in order."""
    if wanted == layout:
        return expr
    return Project(expr, tuple(E.Col(layout.index(name)) for name in wanted))


def _apply_ready_comparisons(expr, layout, comparisons, applied: set[int]):
    bound = set(layout)
    for index in planner.ready_comparisons(list(comparisons), bound, applied):
        comparison = comparisons[index]
        predicate = E.Binary(
            comparison.op,
            _term_to_expr(comparison.lhs, layout),
            _term_to_expr(comparison.rhs, layout),
        )
        expr = Select(expr, predicate)
        applied.add(index)
    return expr, layout


def _term_to_expr(term: ast.Term, layout: list[str]) -> E.Expr:
    if isinstance(term, ast.Var):
        try:
            return E.Col(layout.index(term.name))
        except ValueError:
            raise CompileError(f"variable {term.name!r} not bound") from None
    if isinstance(term, ast.IntConst):
        return E.Const(int(term.value))
    if isinstance(term, ast.FloatConst):
        return E.Const(float(term.value))
    if isinstance(term, ast.BinOp):
        return E.Binary(term.op, _term_to_expr(term.lhs, layout), _term_to_expr(term.rhs, layout))
    if isinstance(term, ast.Neg):
        return E.Unary("neg", _term_to_expr(term.operand, layout))
    raise CompileError(f"cannot compile term {term!r}")


def _conjoin(conditions: list[E.Expr]) -> E.Expr:
    expr = conditions[0]
    for condition in conditions[1:]:
        expr = E.Binary("and", expr, condition)
    return expr

"""Deterministic fault injection for the recovery test-suite.

The recovery subsystem funnels every disk touch through one
:class:`~repro.recovery.storage.LocalStorage` object, so killing the
"process" at an arbitrary durability boundary is just a storage subclass
that counts write operations and raises :class:`InjectedCrash` at a
scheduled one — optionally after persisting a prefix of the bytes
(a torn write).  A schedule is ``{op_index: frac}``:

* ``append`` with ``frac < 1`` persists ``int(len(data) * frac)`` bytes
  then crashes — the torn WAL tail recovery must silently truncate;
  ``frac == 1.0`` persists *everything* then crashes — the record is
  durable but the in-memory apply it guards never ran, the other half
  of the WAL contract.
* ``write_atomic`` with ``frac < 0.5`` leaves a partial ``.tmp`` file
  (never renamed, invisible to listings); ``0.5 <= frac < 1`` leaves a
  complete ``.tmp`` still unrenamed; ``frac == 1.0`` completes the swap
  then crashes — checkpoint durable, everything after it lost.

Crashes raise through the caller like a process death: in-memory state
is abandoned, and the test resumes by running ``recover()`` against the
same directory.  :meth:`CrashingStorage.suspended` marks consumer-side
critical sections (subscription polls) the fault model treats as
atomic — the crash schedules target the tick path.

Only write operations consume schedule indices (reads cannot lose
data), so a schedule position maps to the same durability boundary
regardless of how often recovery re-reads state.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.recovery.storage import LocalStorage


class InjectedCrash(BaseException):
    """The simulated process death.  Derives from BaseException so no
    library-level ``except Exception`` can accidentally swallow the
    "power loss" and keep running."""


class CrashingStorage(LocalStorage):
    """A LocalStorage that dies on schedule."""

    def __init__(self, root, schedule: dict[int, float] | None = None):
        super().__init__(root)
        #: write-op index -> fraction of the write to persist first.
        self.schedule = dict(schedule or {})
        #: Write operations issued so far (append + write_atomic).
        self.op_index = 0
        self._suspended = 0

    @contextmanager
    def suspended(self):
        """Crash-free critical section (the consumer's poll-and-process
        step, which the fault model treats as atomic).  Suspended
        operations do not consume schedule indices either, so a schedule
        targets the same tick-path boundary whether or not a consumer
        polled in between."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    def _next_crash(self) -> float | None:
        if self._suspended:
            return None
        frac = self.schedule.get(self.op_index)
        self.op_index += 1
        return frac

    def append(self, name: str, data: bytes) -> None:
        frac = self._next_crash()
        if frac is None:
            super().append(name, data)
            return
        persisted = data if frac >= 1.0 else data[: int(len(data) * frac)]
        if persisted:
            super().append(name, persisted)
        raise InjectedCrash(
            f"append({name!r}) killed after {len(persisted)}/{len(data)} bytes"
        )

    def write_atomic(self, name: str, data: bytes) -> None:
        frac = self._next_crash()
        if frac is None:
            super().write_atomic(name, data)
            return
        if frac >= 1.0:
            super().write_atomic(name, data)
            raise InjectedCrash(f"write_atomic({name!r}) killed after the swap")
        # Crash before the rename: leave tmp-file debris only.
        persisted = data[: int(len(data) * (frac * 2.0))]
        tmp = self.path(name + ".tmp")
        tmp.write_bytes(persisted)
        raise InjectedCrash(
            f"write_atomic({name!r}) killed before rename "
            f"({len(persisted)}/{len(data)} tmp bytes)"
        )

"""The ``max-min-prob`` semiring (Fig. 5b).

Tags are probabilities in [0, 1]; conjunction takes the min (a chain is only
as likely as its weakest link), disjunction the max (the best derivation
wins).  This is the fuzzy-logic approximation used by the paper's
Probabilistic Static Analysis benchmark (``minmaxprob`` in Table 2).
"""

from __future__ import annotations

import numpy as np

from .base import SATURATION_EPS, Provenance
from ..gpu.kernels import segment_reduce_max

_DTYPE = np.dtype(np.float64)


class MinMaxProbProvenance(Provenance):
    """Probabilities with ⊗ = min and ⊕ = max."""

    name = "minmaxprob"
    idempotent_oplus = True  # ⊕ = max

    def tag_dtype(self) -> np.dtype:
        return _DTYPE

    def input_tags(self, fact_ids: np.ndarray) -> np.ndarray:
        fact_ids = np.asarray(fact_ids, dtype=np.int64)
        out = np.ones(len(fact_ids), dtype=_DTYPE)
        tagged = fact_ids >= 0
        out[tagged] = self.input_probs[fact_ids[tagged]]
        return out

    def one_tags(self, n: int) -> np.ndarray:
        return np.ones(n, dtype=_DTYPE)

    def otimes(self, a, b) -> np.ndarray:
        return np.minimum(a, b)

    def oplus_reduce(self, tags, segment_ids, nseg) -> np.ndarray:
        return segment_reduce_max(tags, segment_ids, nseg).astype(_DTYPE)

    def merge_existing(self, old, new):
        merged = np.maximum(old, new)
        improved = new > old + SATURATION_EPS
        return merged, improved

    def prob(self, tags) -> np.ndarray:
        return np.asarray(tags, dtype=np.float64)

    def is_absorbing_zero(self, tags) -> np.ndarray:
        return np.asarray(tags) <= 0.0

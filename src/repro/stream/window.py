"""Tumbling and sliding windows: the insert stream becomes signed.

A window turns a :class:`~repro.stream.source.StreamSource`'s insert-only
event stream into per-tick :class:`TickDelta`\\ s carrying both inserts
and **retractions** — rows whose window membership expired this tick.
Retractions are what the maintain path consumes
(:meth:`~repro.runtime.database.Database.retract_facts`), so windows are
the bridge between "facts arrive over time" and "query results stay
continuously correct".

Dedup policy: a window holds at most one live instance per (relation,
row).  Re-inserting a live row *extends its life* (its expiry moves to
the later tick) rather than emitting a duplicate insert — matching
``retract_facts``'s all-instances semantics, so a window never needs to
reason about multiplicities.  Probabilities ride with the row's first
insertion; sources assign them per row, so an extension never sees a
conflicting probability.

Windows are stateful iterators (:meth:`advance` consumes the next tick)
but fully replayable: :meth:`reset` returns to tick 0, and because the
underlying source is a pure function of the tick index, a reset window
re-emits the identical delta sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .source import StreamSource
from ..errors import CheckpointMismatchError

__all__ = ["TickDelta", "SlidingWindow", "TumblingWindow", "Window"]


@dataclass
class TickDelta:
    """The signed input delta of one tick (or several coalesced ticks)."""

    tick: int
    #: Per relation: (rows, probs) to insert.  ``probs`` is None for a
    #: fully discrete batch; otherwise it is per-row, and a None entry
    #: marks that row as a discrete (untagged) fact — consumers must
    #: not conflate "discrete" with "probability 0".
    inserts: dict[str, tuple[list[tuple], list[float | None] | None]] = field(
        default_factory=dict
    )
    #: Per relation: rows whose window membership expired.
    retracts: dict[str, list[tuple]] = field(default_factory=dict)
    #: How many source ticks this delta covers (> 1 after coalescing).
    ticks_covered: int = 1

    @property
    def is_empty(self) -> bool:
        return not any(rows for rows, _ in self.inserts.values()) and not any(
            self.retracts.values()
        )

    def merged_with(self, later: "TickDelta") -> "TickDelta":
        """Coalesce with the delta of a *later* tick: net effect of
        applying ``self`` then ``later``.  A row inserted here and
        retracted later cancels (the insert was never applied, so there
        is nothing to retract); a row retracted here and re-inserted
        later keeps **both** — the old live instance must still leave
        the database before the fresh insert lands (``apply`` stages
        retractions first), otherwise the coalesced tick would leave a
        duplicate instance behind."""
        inserts: dict[str, dict[tuple, float | None]] = {}
        retracts: dict[str, set[tuple]] = {}
        for delta in (self, later):
            for relation, rows in delta.retracts.items():
                rel_inserts = inserts.setdefault(relation, {})
                rel_retracts = retracts.setdefault(relation, set())
                for row in rows:
                    if row in rel_inserts:
                        del rel_inserts[row]  # insert-then-retract cancels
                    else:
                        rel_retracts.add(row)
            for relation, (rows, probs) in delta.inserts.items():
                rel_inserts = inserts.setdefault(relation, {})
                for index, row in enumerate(rows):
                    rel_inserts[row] = probs[index] if probs is not None else None
        merged = TickDelta(
            later.tick, ticks_covered=self.ticks_covered + later.ticks_covered
        )
        for relation, rel_inserts in inserts.items():
            if not rel_inserts:
                continue
            rows = sorted(rel_inserts)
            probs = [rel_inserts[row] for row in rows]
            merged.inserts[relation] = (
                rows, None if all(p is None for p in probs) else probs
            )
        for relation, rows in retracts.items():
            if rows:
                merged.retracts[relation] = sorted(rows)
        return merged

    def state_dict(self) -> dict:
        """Serializable form (the WAL's ``delta`` record body)."""
        return {
            "tick": self.tick,
            "ticks_covered": self.ticks_covered,
            "inserts": {
                relation: (
                    list(rows),
                    None if probs is None else list(probs),
                )
                for relation, (rows, probs) in self.inserts.items()
            },
            "retracts": {
                relation: list(rows) for relation, rows in self.retracts.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "TickDelta":
        delta = cls(
            int(state["tick"]), ticks_covered=int(state["ticks_covered"])
        )
        for relation, (rows, probs) in state["inserts"].items():
            delta.inserts[relation] = (
                list(rows), None if probs is None else list(probs)
            )
        for relation, rows in state["retracts"].items():
            delta.retracts[relation] = list(rows)
        return delta


class Window:
    """Shared live-set bookkeeping; subclasses choose the expiry rule.
    The public base type for anything that feeds a stream scheduler."""

    def __init__(self, source: StreamSource, size: int):
        if size < 1:
            raise ValueError("window size must be >= 1 tick")
        self.source = source
        self.size = size
        self.reset()

    def reset(self) -> None:
        """Return to tick 0 (the replay entry point)."""
        self._next_tick = 0
        #: (relation, row) -> expiry tick of the live instance.
        self._live: dict[tuple[str, tuple], int] = {}
        #: expiry tick -> keys scheduled to expire then.
        self._expiry: dict[int, list[tuple[str, tuple]]] = {}

    @property
    def next_tick(self) -> int:
        return self._next_tick

    @property
    def live_count(self) -> int:
        return len(self._live)

    def live_rows(self, relation: str | None = None) -> list[tuple]:
        """The rows currently inside the window (sorted), optionally
        restricted to one relation — the reference a from-scratch
        evaluation of the window's state loads."""
        return sorted(
            row
            for (rel, row) in self._live
            if relation is None or rel == relation
        )

    def _expiry_of(self, tick: int) -> int:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Serializable snapshot of the live-set bookkeeping, plus the
        window's shape so a restore into a differently configured window
        fails loudly instead of mis-expiring rows."""
        return {
            "kind": type(self).__name__,
            "size": self.size,
            "next_tick": self._next_tick,
            "live": dict(self._live),
            "expiry": {tick: list(keys) for tick, keys in self._expiry.items()},
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this window.  The
        receiving window must have the same class and size as the writer
        (expiry arithmetic differs otherwise) —
        :class:`~repro.errors.CheckpointMismatchError` if not."""
        if state["kind"] != type(self).__name__ or state["size"] != self.size:
            raise CheckpointMismatchError(
                f"window state was written by a {state['kind']}(size="
                f"{state['size']}) but is being loaded into a "
                f"{type(self).__name__}(size={self.size})"
            )
        self._next_tick = int(state["next_tick"])
        self._live = dict(state["live"])
        self._expiry = {
            int(tick): list(keys) for tick, keys in state["expiry"].items()
        }

    def advance(self) -> TickDelta:
        """Consume the next source tick and return its signed delta."""
        tick = self._next_tick
        self._next_tick += 1
        delta = TickDelta(tick)
        inserts: dict[str, tuple[list[tuple], list[float] | None]] = {}
        any_prob: dict[str, bool] = {}
        for event in self.source.batch(tick):
            key = (event.relation, event.row)
            expiry = self._expiry_of(tick)
            if key in self._live:
                # Re-insert of a live row: extend its life, emit nothing.
                if expiry > self._live[key]:
                    self._live[key] = expiry
                    self._expiry.setdefault(expiry, []).append(key)
                continue
            self._live[key] = expiry
            self._expiry.setdefault(expiry, []).append(key)
            rows, probs = inserts.setdefault(event.relation, ([], []))
            rows.append(event.row)
            probs.append(event.prob)
            any_prob[event.relation] = any_prob.get(event.relation, False) or (
                event.prob is not None
            )
        for relation, (rows, probs) in inserts.items():
            delta.inserts[relation] = (
                rows,
                probs if any_prob[relation] else None,
            )
        # Expire after inserting, so a row re-inserted on its expiry tick
        # was extended above and survives.  Stale entries (extended rows,
        # duplicates from repeated extension) fail the expiry check.
        for key in self._expiry.pop(tick, []):
            if self._live.get(key) == tick:
                relation, row = key
                delta.retracts.setdefault(relation, []).append(row)
                del self._live[key]
        return delta


class SlidingWindow(Window):
    """Per-row lifetime: a row inserted at tick ``t`` is live through
    ticks ``t .. t+size-1`` and retracted in the delta of tick
    ``t+size-1``'s successor boundary (i.e. it participates in exactly
    ``size`` ticks), unless re-inserted meanwhile."""

    def _expiry_of(self, tick: int) -> int:
        return tick + self.size


class TumblingWindow(Window):
    """Aligned epochs: all rows inserted during ticks
    ``[k*size, (k+1)*size)`` are retracted together when the epoch ends,
    unless the next epoch re-inserts them."""

    def _expiry_of(self, tick: int) -> int:
        return (tick // self.size + 1) * self.size

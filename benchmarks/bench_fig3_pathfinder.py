"""Fig. 3d: Pathfinder accuracy — pure neural vs neurosymbolic.

The paper's headline motivation: a CNN alone reaches ~71% on Pathfinder
while the neurosymbolic pipeline reaches ~87% (and the gap widens on
Pathfinder-x).  We reproduce the *shape* on synthetic data: an MLP over
raw edge features (the pure-neural baseline, which must learn global
connectivity from scratch) versus a patch scorer + Datalog reachability
(which only needs to learn local dash detection).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LobsterEngine
from repro.nn import MLP, Adam, Tensor, binary_cross_entropy
from repro.workloads import pathfinder

from _harness import record, print_table, report

SUITE = "fig3_pathfinder"

GRID = 5
N_TRAIN = 24
N_TEST = 16
EPOCHS = 14


def make_split():
    train = pathfinder.make_dataset(GRID, N_TRAIN, seed=11)
    test = pathfinder.make_dataset(GRID, N_TEST, seed=77)
    return train, test


def neural_accuracy(train, test) -> float:
    """Pure neural baseline: MLP over the flattened edge features."""
    rng = np.random.default_rng(0)
    n_features = len(train[0].lattice_edges) * pathfinder.FEATURE_DIM

    def featurize(instance):
        flat = instance.edge_features.reshape(-1).copy()
        endpoint_marks = np.zeros(GRID * GRID)
        endpoint_marks[list(instance.endpoints)] = 1.0
        return np.concatenate([flat, endpoint_marks])

    X_train = np.stack([featurize(i) for i in train])
    y_train = np.array([float(i.label) for i in train])
    X_test = np.stack([featurize(i) for i in test])
    y_test = np.array([float(i.label) for i in test])

    model = MLP([X_train.shape[1], 32, 1], rng)
    optimizer = Adam(model.parameters(), lr=0.01)
    for _ in range(EPOCHS * 4):
        optimizer.zero_grad()
        pred = model(Tensor(X_train)).reshape(-1).sigmoid()
        loss = binary_cross_entropy(pred, y_train)
        loss.backward()
        optimizer.step()
    test_pred = model(Tensor(X_test)).reshape(-1).sigmoid().data > 0.5
    return float((test_pred == y_test).mean())


def neurosymbolic_accuracy(train, test) -> float:
    """Patch scorer trained end-to-end through the Datalog program."""
    rng = np.random.default_rng(1)
    from repro.nn import PatchScorer, SGD

    scorer = PatchScorer(pathfinder.FEATURE_DIM, 16, rng)
    optimizer = SGD(scorer.parameters(), lr=0.5)
    engine = LobsterEngine(
        pathfinder.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=64
    )

    def forward(instance):
        features = Tensor(instance.edge_features)
        edge_probs = scorer(features)
        database = engine.create_database()
        ids = pathfinder.populate_database(database, instance, edge_probs.data)
        engine.run(database)
        connected = engine.query_probs(database, "endpoints_connected")
        out = connected.get((), 0.0)

        def backward(grad_scalar):
            grad_facts = engine.backward(
                database, "endpoints_connected", {(): float(grad_scalar)}
            )
            grad = np.zeros_like(edge_probs.data)
            valid = ids >= 0
            grad[valid] = grad_facts[ids[valid]]
            return grad

        return out, edge_probs, backward

    for _ in range(EPOCHS):
        for instance in train:
            out, edge_probs, backward = forward(instance)
            eps = 1e-6
            clipped = min(max(out, eps), 1 - eps)
            target = float(instance.label)
            grad_out = (clipped - target) / (clipped * (1 - clipped))
            optimizer.zero_grad()
            edge_probs.backward(backward(grad_out))
            optimizer.step()

    correct = 0
    for instance in test:
        out, _, _ = forward(instance)
        correct += (out > 0.12) == instance.label
    return correct / len(test)


@pytest.fixture(scope="module")
def accuracies():
    train, test = make_split()
    neural = neural_accuracy(train, test)
    neurosymbolic = neurosymbolic_accuracy(train, test)
    # Quality numbers, not time: unit "fraction" rides along in the
    # record for trend-watching but is never regression-gated.
    report(SUITE, "accuracy/neural", samples=[neural], unit="fraction")
    report(SUITE, "accuracy/neurosymbolic", samples=[neurosymbolic], unit="fraction")
    return neural, neurosymbolic


def test_fig3d_neurosymbolic_beats_neural(accuracies, benchmark):
    def check():
        neural, neurosymbolic = accuracies
        print_table(
            "Fig. 3d — Pathfinder accuracy",
            ["method", "accuracy"],
            [["Neural", f"{neural:.2%}"], ["Neurosymbolic", f"{neurosymbolic:.2%}"]],
        )
        assert neurosymbolic > neural
        # The paper's 87% comes from a 32-hour convergence run on the full
        # LRA corpus; this 14-epoch budget run reproduces the *gap*, not
        # the absolute number (EXPERIMENTS.md).
        assert neurosymbolic >= 0.6


    record(benchmark, check)

def test_fig3d_benchmark_neurosymbolic_step(benchmark):
    train, _ = make_split()
    instance = train[0]
    engine = LobsterEngine(
        pathfinder.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=64
    )
    probs = pathfinder.pretrained_edge_probs(instance, seed=0)

    def run():
        db = engine.create_database()
        pathfinder.populate_database(db, instance, probs)
        engine.run(db)

    benchmark.pedantic(run, rounds=3, iterations=1)

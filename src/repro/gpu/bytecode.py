"""Bytecode interpreter for projection/selection expressions (§5.2).

The paper compiles arithmetic project/select expressions to bytecode for a
tiny stack machine; each GPU thread runs the program against one fact.  Our
vectorized equivalent runs each opcode against whole columns at once: the
stack holds column vectors, so one interpreter step is one fused kernel.

Pure column permutations/subsets never reach the bytecode path — the APM
compiler lowers those to columnar copies (the fast path in §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ExecutionError

# Opcodes -------------------------------------------------------------------

LOAD_COL = "load_col"  # push input column[arg]
LOAD_CONST = "load_const"  # push a scalar constant broadcast to n rows

_BINARY_OPS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "eq": np.equal,
    "ne": np.not_equal,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "and": np.logical_and,
    "or": np.logical_or,
}

_UNARY_OPS = {
    "neg": np.negative,
    "not": np.logical_not,
    "abs": np.abs,
}


@dataclass(frozen=True)
class Instr:
    """One bytecode instruction: an opcode and an optional immediate."""

    op: str
    arg: object = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.op}({self.arg})" if self.arg is not None else self.op


@dataclass(frozen=True)
class BytecodeProgram:
    """A straight-line stack program producing exactly one column."""

    instrs: tuple[Instr, ...]

    def max_stack_depth(self) -> int:
        depth = peak = 0
        for instr in self.instrs:
            if instr.op in (LOAD_COL, LOAD_CONST):
                depth += 1
            elif instr.op in _BINARY_OPS or instr.op in ("div", "mod", "fdiv"):
                depth -= 1
            peak = max(peak, depth)
        return peak


def execute(
    program: BytecodeProgram, columns: Sequence[np.ndarray], n_rows: int
) -> np.ndarray:
    """Run ``program`` against a columnar table, returning one column."""
    stack: list[np.ndarray] = []
    # HWF-style arithmetic can produce inf (x/0) that later multiplies by
    # zero; the resulting NaN rows are legitimate dead values that simply
    # never match an answer, so silence the elementwise warnings wholesale.
    with np.errstate(all="ignore"):
        return _run(program, stack, columns, n_rows)


def _run(program, stack, columns, n_rows) -> np.ndarray:
    for instr in program.instrs:
        op = instr.op
        if op == LOAD_COL:
            stack.append(np.asarray(columns[instr.arg]))
        elif op == LOAD_CONST:
            value = instr.arg
            dtype = np.float64 if isinstance(value, float) else np.int64
            stack.append(np.full(n_rows, value, dtype=dtype))
        elif op in _BINARY_OPS:
            rhs = stack.pop()
            lhs = stack.pop()
            stack.append(_BINARY_OPS[op](lhs, rhs))
        elif op == "div":
            rhs = stack.pop()
            lhs = stack.pop()
            # True division promotes to float, mirroring the paper's HWF
            # requirement for floating point arithmetic.
            with np.errstate(divide="ignore", invalid="ignore"):
                out = np.true_divide(lhs, rhs)
            stack.append(out)
        elif op == "fdiv":
            rhs = stack.pop()
            lhs = stack.pop()
            with np.errstate(divide="ignore", invalid="ignore"):
                stack.append(np.floor_divide(lhs, rhs))
        elif op == "mod":
            rhs = stack.pop()
            lhs = stack.pop()
            with np.errstate(divide="ignore", invalid="ignore"):
                stack.append(np.mod(lhs, rhs))
        elif op in _UNARY_OPS:
            stack.append(_UNARY_OPS[op](stack.pop()))
        else:
            raise ExecutionError(f"unknown bytecode op {op!r}")
    if len(stack) != 1:
        raise ExecutionError(
            f"bytecode program left {len(stack)} values on the stack (want 1)"
        )
    return stack[0]

"""Schema-versioned machine-readable benchmark records (``BENCH_*.json``).

One :class:`SuiteRecord` per benchmark suite (``jit``, ``planner``,
``fig13_tc``, ...), written as ``BENCH_<suite>.json`` next to the
versioned markdown summaries under ``benchmarks/results/``.  A record
carries everything a later run needs to decide whether performance moved:

* per-benchmark raw trial samples (wall seconds *or* modeled simulator
  seconds — the ``unit`` field says which), warmup count, and derived
  :class:`~repro.perf.stats.TrialStats`;
* the modeled-clock metrics from :class:`~repro.gpu.device.DeviceProfile`
  (kernel / exchange / busy seconds, kernel launches) alongside wall
  time, because the simulator clock is the machine-independent number;
* an environment fingerprint (python, platform, machine, library
  version), so the regression gate can refuse to compare wall clocks
  across hosts while still gating modeled metrics.

The format is deliberately hand-validated (:func:`validate_record`)
rather than jsonschema-dependent, and committed records are the
regression baselines :mod:`repro.perf.regress` loads.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import BenchRecordError
from .stats import TrialStats, summarize

__all__ = [
    "SCHEMA_VERSION",
    "BenchmarkResult",
    "SuiteRecord",
    "environment_fingerprint",
    "load_record",
    "record_path",
    "validate_record",
    "write_record",
]

SCHEMA_VERSION = 1

#: DeviceProfile counters a benchmark may attach as modeled metrics.
#: Kept as an explicit vocabulary so records stay diffable across PRs —
#: new metrics extend this tuple (and bump the schema when renamed).
KNOWN_METRICS = (
    "busy_seconds",
    "kernel_seconds",
    "exchange_seconds",
    "transfer_seconds",
    "alloc_seconds",
    "kernel_launches",
    "exchange_bytes",
)

#: Units a benchmark's samples may be measured in.  ``s`` is host wall
#: clock (machine-dependent, never gated across hosts); ``modeled_s`` is
#: the simulator's deterministic device clock (gated everywhere);
#: ``fraction`` is a unitless quality score in [0, 1] (accuracy,
#: coverage...) that the regression gate reports but never fails on —
#: quality shapes are asserted by the benchmarks themselves.
KNOWN_UNITS = ("s", "modeled_s", "fraction")


def environment_fingerprint(version: str) -> dict:
    """Where a record was measured.  ``host_key`` is what the regression
    gate compares to decide whether wall clocks are comparable."""
    return {
        "library_version": version,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def host_key(environment: dict) -> str:
    """The part of a fingerprint that must match for wall-clock numbers
    to be comparable (same interpreter on the same kind of machine)."""
    return "|".join(
        str(environment.get(key, ""))
        for key in ("python", "implementation", "platform", "machine")
    )


@dataclass
class BenchmarkResult:
    """One benchmark's trials within a suite record."""

    name: str
    samples: list[float]
    unit: str = "s"
    warmups: int = 0
    status: str = "ok"  # ok | oom | timeout | failed
    #: Modeled DeviceProfile counters for the measured run (see
    #: KNOWN_METRICS); deterministic, so they gate across machines.
    metrics: dict[str, float] = field(default_factory=dict)
    #: Free-form scalar context (rows, shards, provenance, ...).
    attrs: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok" and bool(self.samples)

    def stats(self) -> TrialStats:
        """Trial statistics (samples are stored post-warmup: the harness
        already discarded warmup runs before recording)."""
        return summarize(self.samples)

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "unit": self.unit,
            "status": self.status,
            "warmups": self.warmups,
            "samples": list(self.samples),
        }
        if self.samples:
            stats = self.stats()
            data["stats"] = {
                "n": stats.n,
                "mean": stats.mean,
                "stddev": stats.stddev,
                "ci95": stats.ci,
            }
        if self.metrics:
            data["metrics"] = dict(self.metrics)
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BenchmarkResult":
        return cls(
            name=data["name"],
            samples=[float(x) for x in data["samples"]],
            unit=data.get("unit", "s"),
            warmups=int(data.get("warmups", 0)),
            status=data.get("status", "ok"),
            metrics=dict(data.get("metrics", {})),
            attrs=dict(data.get("attrs", {})),
        )


@dataclass
class SuiteRecord:
    """Everything one suite measured in one invocation."""

    suite: str
    created: str  # ISO-8601, supplied by the caller (run_all's stamp)
    environment: dict
    benchmarks: list[BenchmarkResult] = field(default_factory=list)
    #: Optional workload-characterization rows (list of flat dicts) —
    #: run_all attaches the suite-wide report to its aggregate record.
    characterization: list[dict] | None = None
    schema_version: int = SCHEMA_VERSION

    def get(self, name: str) -> BenchmarkResult | None:
        for bench in self.benchmarks:
            if bench.name == name:
                return bench
        return None

    def add(self, result: BenchmarkResult) -> None:
        """Append, merging samples into an existing same-name entry
        (multiple trials of one suite funnel into one benchmark row)."""
        existing = self.get(result.name)
        if existing is None:
            self.benchmarks.append(result)
            return
        existing.samples.extend(result.samples)
        existing.warmups += result.warmups
        if existing.status == "ok" and result.status != "ok":
            existing.status = result.status
        existing.metrics.update(result.metrics)
        existing.attrs.update(result.attrs)

    def to_dict(self) -> dict:
        data = {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "created": self.created,
            "environment": dict(self.environment),
            "benchmarks": [bench.to_dict() for bench in self.benchmarks],
        }
        if self.characterization is not None:
            data["characterization"] = self.characterization
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SuiteRecord":
        validate_record(data)
        return cls(
            suite=data["suite"],
            created=data["created"],
            environment=dict(data["environment"]),
            benchmarks=[
                BenchmarkResult.from_dict(bench)
                for bench in data["benchmarks"]
            ],
            characterization=data.get("characterization"),
            schema_version=int(data["schema_version"]),
        )


def record_path(results_dir: Path, suite: str) -> Path:
    """``BENCH_<suite>.json``: a *stable* name (no timestamp) so the file
    diffs across commits and doubles as the committed baseline."""
    return Path(results_dir) / f"BENCH_{suite}.json"


def validate_record(data: object) -> None:
    """Validate a parsed ``BENCH_*.json`` document, raising
    :class:`~repro.errors.BenchRecordError` with every problem found."""
    errors: list[str] = []
    if not isinstance(data, dict):
        raise BenchRecordError("record must be a JSON object")
    version = data.get("schema_version")
    if not isinstance(version, int):
        errors.append("schema_version: missing or not an integer")
    elif version > SCHEMA_VERSION:
        errors.append(
            f"schema_version {version} is newer than supported "
            f"{SCHEMA_VERSION}"
        )
    for key in ("suite", "created"):
        if not isinstance(data.get(key), str) or not data.get(key):
            errors.append(f"{key}: missing or not a non-empty string")
    if not isinstance(data.get("environment"), dict):
        errors.append("environment: missing or not an object")
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        errors.append("benchmarks: missing or not a list")
        benchmarks = []
    for index, bench in enumerate(benchmarks):
        where = f"benchmarks[{index}]"
        if not isinstance(bench, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(bench.get("name"), str) or not bench.get("name"):
            errors.append(f"{where}.name: missing or empty")
        unit = bench.get("unit", "s")
        if unit not in KNOWN_UNITS:
            errors.append(f"{where}.unit: {unit!r} not in {KNOWN_UNITS}")
        samples = bench.get("samples")
        if not isinstance(samples, list) or not all(
            isinstance(x, (int, float)) and not isinstance(x, bool)
            and x >= 0.0
            for x in samples
        ):
            errors.append(
                f"{where}.samples: must be a list of non-negative numbers"
            )
        metrics = bench.get("metrics", {})
        if not isinstance(metrics, dict) or not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in metrics.values()
        ):
            errors.append(f"{where}.metrics: must map names to numbers")
    characterization = data.get("characterization")
    if characterization is not None and (
        not isinstance(characterization, list)
        or not all(isinstance(row, dict) for row in characterization)
    ):
        errors.append("characterization: must be a list of objects")
    if errors:
        raise BenchRecordError(
            "invalid benchmark record: " + "; ".join(errors)
        )


def write_record(record: SuiteRecord, path: Path) -> Path:
    """Serialize with sorted keys and fixed separators (byte-stable for
    identical content, so same-commit re-runs diff clean), validating on
    the way out — a record we would refuse to load is never written."""
    data = record.to_dict()
    validate_record(data)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True, separators=(",", ": "))
        + "\n"
    )
    return path


def load_record(path: Path) -> SuiteRecord:
    """Parse and validate a ``BENCH_*.json`` file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchRecordError(f"cannot read record {path}: {exc}") from exc
    return SuiteRecord.from_dict(data)

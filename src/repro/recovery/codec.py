"""A compact, deterministic binary codec for durability payloads.

Checkpoints and WAL records are nested Python structures — dicts keyed
by strings *and row tuples*, lists, numpy arrays (value columns, tag
columns with structured dtypes, boolean masks), floats that must
round-trip **bit-for-bit** (the whole point of the recovery test
harness), and ints of arbitrary size.  JSON loses tuples, can't key
dicts by them, and can't carry arrays without base64 bloat; pickle is
neither stable across versions nor safe to read back from disk.  So the
format is a small tag-length-value encoding:

* scalars: ``N`` (None), ``T``/``F`` (bool), ``i`` (int64), ``n``
  (big int, decimal utf-8), ``f`` (IEEE-754 float64 — exact), ``s``
  (utf-8 string), ``b`` (bytes);
* containers: ``l`` (list), ``t`` (tuple — *distinct* from list, so
  row tuples survive a round trip and compare equal), ``d`` (dict as a
  (key, value) pair sequence; keys may be any encodable value);
* ``a`` — a numpy array as its ``.npy`` serialization (dtype + shape +
  raw data; handles structured provenance-tag dtypes), read back with
  ``allow_pickle=False`` so a corrupted or hostile payload can never
  execute code.

Everything is length-prefixed, so decoding never scans; a truncated
buffer raises :class:`~repro.errors.CorruptLogError` (the framing layer
above is responsible for deciding whether truncation is a torn tail to
drop silently or a hard error).
"""

from __future__ import annotations

import io
import struct

import numpy as np

from ..errors import CorruptLogError

__all__ = ["decode", "encode"]

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _encode_into(obj, out: bytearray) -> None:
    if obj is None:
        out.append(ord("N"))
    elif obj is True:
        out.append(ord("T"))
    elif obj is False:
        out.append(ord("F"))
    elif isinstance(obj, (int, np.integer)):
        value = int(obj)
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(ord("i"))
            out += _I64.pack(value)
        else:
            digits = str(value).encode("ascii")
            out.append(ord("n"))
            out += _U32.pack(len(digits))
            out += digits
    elif isinstance(obj, (float, np.floating)):
        out.append(ord("f"))
        out += _F64.pack(float(obj))
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out.append(ord("s"))
        out += _U32.pack(len(data))
        out += data
    elif isinstance(obj, (bytes, bytearray)):
        out.append(ord("b"))
        out += _U32.pack(len(obj))
        out += bytes(obj)
    elif isinstance(obj, np.ndarray):
        buffer = io.BytesIO()
        np.save(buffer, obj, allow_pickle=False)
        data = buffer.getvalue()
        out.append(ord("a"))
        out += _U32.pack(len(data))
        out += data
    elif isinstance(obj, (list, tuple)):
        out.append(ord("t" if isinstance(obj, tuple) else "l"))
        out += _U32.pack(len(obj))
        for item in obj:
            _encode_into(item, out)
    elif isinstance(obj, dict):
        out.append(ord("d"))
        out += _U32.pack(len(obj))
        for key, value in obj.items():
            _encode_into(key, out)
            _encode_into(value, out)
    else:
        raise TypeError(f"codec cannot encode {type(obj).__name__!r}")


def encode(obj) -> bytes:
    """Serialize ``obj`` to bytes; raises TypeError on unsupported types."""
    out = bytearray()
    _encode_into(obj, out)
    return bytes(out)


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise CorruptLogError(
                f"payload truncated: needed {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]


def _decode_from(reader: _Reader):
    tag = reader.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack(reader.take(8))[0]
    if tag == b"n":
        return int(reader.take(reader.u32()).decode("ascii"))
    if tag == b"f":
        return _F64.unpack(reader.take(8))[0]
    if tag == b"s":
        return reader.take(reader.u32()).decode("utf-8")
    if tag == b"b":
        return reader.take(reader.u32())
    if tag == b"a":
        data = reader.take(reader.u32())
        try:
            return np.load(io.BytesIO(data), allow_pickle=False)
        except ValueError as exc:
            raise CorruptLogError(f"corrupt array payload: {exc}") from exc
    if tag == b"l":
        return [_decode_from(reader) for _ in range(reader.u32())]
    if tag == b"t":
        return tuple(_decode_from(reader) for _ in range(reader.u32()))
    if tag == b"d":
        n = reader.u32()
        out = {}
        for _ in range(n):
            key = _decode_from(reader)
            out[key] = _decode_from(reader)
        return out
    raise CorruptLogError(f"unknown codec tag {tag!r} at offset {reader.pos - 1}")


def decode(data: bytes):
    """Deserialize one value; raises CorruptLogError on malformed input
    (including trailing bytes — a payload is exactly one value)."""
    reader = _Reader(data)
    value = _decode_from(reader)
    if reader.pos != len(data):
        raise CorruptLogError(
            f"{len(data) - reader.pos} trailing bytes after decoded value"
        )
    return value

"""Trace-JIT tests: hotness lifecycle, bitwise equivalence, guards,
deopts, code-cache accounting, and serving metrics.

The contract under test is absolute: a JIT'd run must be
bitwise-result-equal (rows, tags, gradients) to the interpreted run on
every path — cold, warm delta-seeded incremental, sharded, maintained,
and recovery-restored — and every construct without a fused translation
must deopt cleanly with a recorded reason, never a wrong result.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import JitConfig, LobsterEngine, MetricsRegistry, ProgramCache
from repro.errors import JitUnsupportedError, LobsterError
from repro.jit import DEDUP_SAFE_SEMIRINGS, select_regions, trace_signature
from repro.runtime.session import LobsterSession
from repro.workloads.analytics import CSPA, cspa_instance

from _helpers import TC_PROGRAM, random_digraph


def tc_edges(seed=0, n_nodes=40, n_edges=110):
    return random_digraph(np.random.default_rng(seed), n_nodes, n_edges)


def assert_results_equal(db_a, db_b, names):
    """Bitwise equality of rows AND tags for every queried relation."""
    for name in names:
        ta, tb = db_a.result(name), db_b.result(name)
        assert ta.n_rows == tb.n_rows, name
        for ca, cb in zip(ta.columns, tb.columns):
            assert np.array_equal(ca, cb), name
        assert np.array_equal(ta.tags, tb.tags), name


def run_hot(engine, facts, n_runs=4, probs=None):
    """Run ``n_runs`` fresh databases through ``engine``; return the
    last (database, result) — past the warm/record phases by default."""
    db = result = None
    for _ in range(n_runs):
        db = engine.create_database()
        for name, rows in facts.items():
            db.add_facts(name, rows, probs.get(name) if probs else None)
        result = engine.run(db)
    return db, result


TC_FACTS = {"edge": tc_edges()}


class TestHotnessLifecycle:
    def test_warm_then_record_then_execute(self):
        engine = LobsterEngine(
            TC_PROGRAM, cache=ProgramCache(), jit=JitConfig(hot_runs=2)
        )
        phases = []
        for _ in range(4):
            db = engine.create_database()
            db.add_facts("edge", TC_FACTS["edge"])
            r = engine.run(db)
            phases.append((r.jit, r.jit_recorded))
        # 2 warm interpreted runs, then the recording run (itself
        # interpreted), then code-cache execution.
        assert phases == [
            (False, False),
            (False, False),
            (False, True),
            (True, False),
        ]

    def test_hot_runs_zero_records_immediately(self):
        engine = LobsterEngine(
            TC_PROGRAM, cache=ProgramCache(), jit=JitConfig(hot_runs=0)
        )
        db = engine.create_database()
        db.add_facts("edge", TC_FACTS["edge"])
        assert engine.run(db).jit_recorded
        db2 = engine.create_database()
        db2.add_facts("edge", TC_FACTS["edge"])
        assert engine.run(db2).jit

    def test_jit_true_means_default_config(self):
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), jit=True)
        assert engine.jit == JitConfig()

    def test_jit_requires_a_program_cache(self):
        with pytest.raises(LobsterError, match="ProgramCache"):
            LobsterEngine(TC_PROGRAM, cache=False, jit=True)

    def test_fused_run_is_modeled_faster(self):
        interp = LobsterEngine(TC_PROGRAM, cache=ProgramCache())
        jit = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), jit=True)
        _, ri = run_hot(interp, TC_FACTS)
        _, rj = run_hot(jit, TC_FACTS)
        assert rj.jit
        assert rj.profile.busy_seconds < ri.profile.busy_seconds
        assert rj.profile.kernel_launches < ri.profile.kernel_launches


class TestBitwiseEquivalence:
    @pytest.mark.parametrize(
        "provenance,kwargs",
        [
            ("unit", {}),
            ("minmaxprob", {}),
            ("top-k-proofs-device", {"k": 3}),
        ],
    )
    def test_tc_cold(self, provenance, kwargs):
        edges = TC_FACTS["edge"]
        probs = None
        if provenance != "unit":
            rng = np.random.default_rng(7)
            probs = {"edge": (0.4 + 0.6 * rng.random(len(edges))).tolist()}
        interp = LobsterEngine(
            TC_PROGRAM, provenance=provenance, cache=ProgramCache(), **kwargs
        )
        jit = LobsterEngine(
            TC_PROGRAM,
            provenance=provenance,
            cache=ProgramCache(),
            jit=True,
            **kwargs,
        )
        dbi, _ = run_hot(interp, TC_FACTS, probs=probs)
        dbj, rj = run_hot(jit, TC_FACTS, probs=probs)
        assert rj.jit and rj.jit_deopt is None
        assert_results_equal(dbi, dbj, ["path"])

    @pytest.mark.parametrize("provenance", ["unit", "minmaxprob"])
    def test_cspa_cold(self, provenance):
        facts = cspa_instance("httpd")
        probs = None
        if provenance != "unit":
            rng = np.random.default_rng(11)
            probs = {
                name: (0.5 + 0.5 * rng.random(len(rows))).tolist()
                for name, rows in facts.items()
            }
        interp = LobsterEngine(CSPA, provenance=provenance, cache=ProgramCache())
        jit = LobsterEngine(
            CSPA, provenance=provenance, cache=ProgramCache(), jit=True
        )
        dbi, _ = run_hot(interp, facts, probs=probs)
        dbj, rj = run_hot(jit, facts, probs=probs)
        assert rj.jit and rj.jit_deopt is None
        assert_results_equal(
            dbi, dbj, ["value_flow", "memory_alias", "value_alias"]
        )

    @pytest.mark.parametrize("provenance", ["unit", "minmaxprob"])
    def test_tc_warm_incremental(self, provenance):
        edges = TC_FACTS["edge"]
        split = len(edges) - 25
        rng = np.random.default_rng(3)
        all_probs = (0.4 + 0.6 * rng.random(len(edges))).tolist()

        def warm_run(engine):
            for _ in range(4):
                db = engine.create_database()
                db.add_facts(
                    "edge",
                    edges[:split],
                    None if provenance == "unit" else all_probs[:split],
                )
                engine.run(db)
                db.add_facts(
                    "edge",
                    edges[split:],
                    None if provenance == "unit" else all_probs[split:],
                )
                result = engine.run(db)
            return db, result

        interp = LobsterEngine(
            TC_PROGRAM, provenance=provenance, cache=ProgramCache()
        )
        jit = LobsterEngine(
            TC_PROGRAM, provenance=provenance, cache=ProgramCache(), jit=True
        )
        dbi, ri = warm_run(interp)
        dbj, rj = warm_run(jit)
        assert ri.incremental and rj.incremental
        assert rj.jit and rj.jit_deopt is None
        assert_results_equal(dbi, dbj, ["path"])

    def test_tc_sharded_each_shard_jits(self):
        interp = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), shards=2)
        jit = LobsterEngine(
            TC_PROGRAM, cache=ProgramCache(), shards=2, jit=True
        )
        dbi, _ = run_hot(interp, TC_FACTS)
        dbj, rj = run_hot(jit, TC_FACTS)
        assert rj.jit and rj.shards == 2
        assert_results_equal(dbi, dbj, ["path"])
        # Every shard device ran fused kernels, not just one.
        for profile in rj.shard_profiles:
            assert profile.instruction_counts.get("FusedKernel", 0) > 0

    def test_maintain_pass_runs_fused(self):
        edges = TC_FACTS["edge"]

        def retract_run(engine):
            for _ in range(4):
                db = engine.create_database()
                db.add_facts("edge", edges)
                engine.run(db)
                db.retract_facts("edge", edges[:15])
                result = engine.run(db)
            return db, result

        interp = LobsterEngine(TC_PROGRAM, cache=ProgramCache())
        jit = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), jit=True)
        dbi, ri = retract_run(interp)
        dbj, rj = retract_run(jit)
        assert ri.maintained and rj.maintained
        assert rj.jit
        assert_results_equal(dbi, dbj, ["path"])

    def test_gradients_bitwise_equal(self):
        edges = TC_FACTS["edge"]
        rng = np.random.default_rng(5)
        probs = (0.4 + 0.6 * rng.random(len(edges))).tolist()
        grads = {}
        grad_out = None
        for jit in (False, True):
            engine = LobsterEngine(
                TC_PROGRAM,
                provenance="diff-minmaxprob",
                cache=ProgramCache(),
                jit=jit,
            )
            db, result = run_hot(engine, TC_FACTS, probs={"edge": probs})
            if jit:
                assert result.jit
            if grad_out is None:
                grad_out = {row: 1.0 for row in db.result("path").rows()}
            grads[jit] = engine.backward(db, "path", grad_out)
        assert np.array_equal(grads[False], grads[True])

    def test_recovery_restored_database_jits_correctly(self, tmp_path):
        interp = LobsterEngine(TC_PROGRAM, cache=ProgramCache())
        jit = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), jit=True)
        dbi, _ = run_hot(interp, TC_FACTS)
        path = tmp_path / "tc.db"
        interp.export_database(dbi, path)
        # Warm the jit engine's trace, then run the restored database
        # with fresh deltas through the code cache.
        run_hot(jit, TC_FACTS)
        extra = tc_edges(seed=99, n_edges=20)
        restored = jit.import_database(path)
        restored.add_facts("edge", extra)
        rj = jit.run(restored)
        assert rj.jit and rj.jit_deopt is None
        db_ref = interp.create_database()
        db_ref.add_facts("edge", TC_FACTS["edge"] + extra)
        interp.run(db_ref)
        assert_results_equal(db_ref, restored, ["path"])


NEGATION_PROGRAM = """
rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
rel blocked(x, y) :- candidate(x, y), not path(x, y).
query blocked
"""


class TestDeopts:
    def test_non_idempotent_oplus_deopts_with_reason(self):
        dag = [(i, i + 1) for i in range(15)] + [(i, i + 2) for i in range(13)]
        probs = [0.5] * len(dag)
        interp = LobsterEngine(
            TC_PROGRAM, provenance="addmultprob", cache=ProgramCache()
        )
        jit = LobsterEngine(
            TC_PROGRAM, provenance="addmultprob", cache=ProgramCache(), jit=True
        )
        dbi, _ = run_hot(interp, {"edge": dag}, probs={"edge": probs})
        dbj, rj = run_hot(jit, {"edge": dag}, probs={"edge": probs})
        assert not rj.jit
        assert rj.jit_deopt is not None
        assert "non-idempotent" in rj.jit_deopt
        assert_results_equal(dbi, dbj, ["path"])

    def test_negation_variant_stays_interpreted(self):
        facts = {
            "edge": tc_edges(n_nodes=15, n_edges=30),
            "candidate": [(i, j) for i in range(15) for j in range(0, 15, 3)],
        }
        interp = LobsterEngine(NEGATION_PROGRAM, cache=ProgramCache())
        cache = ProgramCache()
        jit = LobsterEngine(NEGATION_PROGRAM, cache=cache, jit=True)
        dbi, _ = run_hot(interp, facts)
        dbj, rj = run_hot(jit, facts)
        # The path rules fuse; the negation rule is skipped, listed with
        # its reason, and keeps executing through the interpreter.
        trace = next(iter(cache._traces.values()))
        assert trace.unsupported is None
        assert any("negation" in reason for reason in trace.skipped.values())
        assert rj.jit
        assert_results_equal(dbi, dbj, ["path", "blocked"])

    def test_region_selector_rejects_antiprobe(self):
        engine = LobsterEngine(NEGATION_PROGRAM, cache=ProgramCache())
        negated = [
            variant
            for stratum in engine.apm.strata
            for rule in stratum.rules
            for variant in rule.variants
            if any(
                type(instr).__name__ in ("AntiProbe", "PassIfEmpty")
                for instr in variant.instructions
            )
        ]
        assert negated
        with pytest.raises(JitUnsupportedError, match="negation"):
            select_regions(negated[0])

    def test_guard_failure_deopts_cleanly(self):
        cache = ProgramCache()
        jit = LobsterEngine(TC_PROGRAM, cache=cache, jit=True)
        run_hot(jit, TC_FACTS)
        trace = next(iter(cache._traces.values()))
        # Sabotage one kernel's specialization: its guard must now fail
        # before any side effect, falling back to the interpreter.
        kernel = next(iter(trace.kernels.values()))
        kernel.tag_dtype = np.dtype(np.float32)
        deopts_before = cache.stats.trace_deopts
        db = jit.create_database()
        db.add_facts("edge", TC_FACTS["edge"])
        result = jit.run(db)
        assert result.jit  # the unsabotaged kernels still ran fused
        assert result.jit_deopt is not None
        assert "tag dtype" in result.jit_deopt
        assert cache.stats.trace_deopts > deopts_before
        reference = LobsterEngine(TC_PROGRAM, cache=ProgramCache())
        db_ref = reference.create_database()
        db_ref.add_facts("edge", TC_FACTS["edge"])
        reference.run(db_ref)
        assert_results_equal(db_ref, db, ["path"])

    def test_every_kernel_sabotaged_means_fully_interpreted(self):
        cache = ProgramCache()
        jit = LobsterEngine(TC_PROGRAM, cache=cache, jit=True)
        run_hot(jit, TC_FACTS)
        trace = next(iter(cache._traces.values()))
        for kernel in trace.kernels.values():
            kernel.tag_dtype = np.dtype(np.float32)
        db = jit.create_database()
        db.add_facts("edge", TC_FACTS["edge"])
        result = jit.run(db)
        assert not result.jit
        assert result.jit_deopt is not None


class TestCodeCache:
    def test_trace_stats_separate_from_plan_stats(self):
        cache = ProgramCache()
        engine = LobsterEngine(
            TC_PROGRAM, cache=cache, jit=JitConfig(hot_runs=1)
        )
        for _ in range(4):
            db = engine.create_database()
            db.add_facts("edge", TC_FACTS["edge"])
            engine.run(db)
        # Plan side: one compile, no further constructions.
        assert cache.stats.misses == 1
        # Trace side: warm run misses, recording run misses, then hits.
        assert cache.stats.trace_misses == 2
        assert cache.stats.trace_hits == 2
        assert cache.stats.trace_lookups == 4
        assert cache.stats.trace_deopts == 0

    def test_invalidation_drops_the_trace_with_the_plan(self):
        cache = ProgramCache()
        engine = LobsterEngine(
            TC_PROGRAM, cache=cache, jit=JitConfig(hot_runs=0)
        )
        db, _ = run_hot(engine, TC_FACTS, n_runs=2)
        assert cache._traces
        assert cache.invalidate(engine.compiled.key)
        assert not cache._traces

    def test_signature_separates_databases(self):
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), jit=True)
        db = engine.create_database()
        db.add_facts("edge", TC_FACTS["edge"])
        signature = trace_signature(db)
        assert "unit" in signature and "edge" in signature

    def test_stale_apm_instance_is_a_miss(self):
        cache = ProgramCache()
        engine = LobsterEngine(
            TC_PROGRAM, cache=cache, jit=JitConfig(hot_runs=0)
        )
        db, _ = run_hot(engine, TC_FACTS, n_runs=2)
        ((plan_key, signature),) = list(cache._traces)
        hit = cache.get_trace(plan_key, signature, apm=engine.compiled.apm)
        assert hit is not None
        # A recompiled plan is a different ApmProgram instance: the trace
        # must be treated as a miss and dropped, not dispatched stale.
        miss = cache.get_trace(plan_key, signature, apm=object())
        assert miss is None
        assert not cache._traces

    def test_dedup_whitelist_is_order_insensitive_only(self):
        assert "unit" in DEDUP_SAFE_SEMIRINGS
        assert "minmaxprob" in DEDUP_SAFE_SEMIRINGS
        assert "addmultprob" not in DEDUP_SAFE_SEMIRINGS
        assert "top-k-proofs-device" not in DEDUP_SAFE_SEMIRINGS


class TestServingMetrics:
    def test_session_jit_counters_and_report(self):
        metrics = MetricsRegistry()
        engine = LobsterEngine(
            TC_PROGRAM, cache=ProgramCache(), jit=JitConfig(hot_runs=1)
        )
        session = LobsterSession(engine, metrics=metrics)
        for _ in range(4):
            db = session.create_database()
            db.add_facts("edge", TC_FACTS["edge"])
            session.submit(db)
        report = session.run_all()
        # Run 1 warm, run 2 records, runs 3-4 enter the code cache.
        assert report.jit_runs == 2
        assert report.jit_deopts == 0
        assert metrics.counter("jit.trace_hits").value == 2
        assert metrics.counter("jit.recordings").value == 1
        assert metrics.counter("jit.deopts").value == 0

    def test_session_deopt_counter(self):
        metrics = MetricsRegistry()
        cache = ProgramCache()
        engine = LobsterEngine(
            TC_PROGRAM,
            provenance="addmultprob",
            cache=cache,
            jit=JitConfig(hot_runs=0),
        )
        session = LobsterSession(engine, metrics=metrics)
        dag = [(i, i + 1) for i in range(10)]
        for _ in range(2):
            db = session.create_database()
            db.add_facts("edge", dag, [0.5] * len(dag))
            session.submit(db)
        report = session.run_all()
        assert report.jit_runs == 0
        assert report.jit_deopts == 1  # run 1 records, run 2 deopts
        assert metrics.counter("jit.deopts").value == 1


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_nodes=st.integers(4, 24),
    n_edges=st.integers(4, 60),
    hot_runs=st.integers(0, 3),
    provenance=st.sampled_from(["unit", "minmaxprob"]),
    split=st.floats(0.3, 0.9),
    sabotage=st.booleans(),
)
def test_property_interpreted_vs_jit_bitwise_equal(
    seed, n_nodes, n_edges, hot_runs, provenance, split, sabotage
):
    """At any hotness threshold, on cold and delta-seeded warm runs, and
    across guard-failure deopt points, JIT'd execution is bitwise equal
    to interpreted execution."""
    rng = np.random.default_rng(seed)
    edges = random_digraph(rng, n_nodes, n_edges)
    if not edges:
        return
    probs = (
        None
        if provenance == "unit"
        else (0.3 + 0.7 * rng.random(len(edges))).tolist()
    )
    cut = max(1, int(len(edges) * split))

    def run_engine(jit):
        cache = ProgramCache()
        engine = LobsterEngine(
            TC_PROGRAM,
            provenance=provenance,
            cache=cache,
            jit=JitConfig(hot_runs=hot_runs) if jit else False,
        )
        for run_index in range(hot_runs + 3):
            if jit and sabotage and run_index == hot_runs + 2 and cache._traces:
                trace = next(iter(cache._traces.values()))
                for kernel in list(trace.kernels.values())[:1]:
                    kernel.tag_dtype = np.dtype(np.float16)
            db = engine.create_database()
            db.add_facts(
                "edge", edges[:cut], probs[:cut] if probs else None
            )
            engine.run(db)
            db.add_facts(
                "edge", edges[cut:], probs[cut:] if probs else None
            )
            engine.run(db)
        return db

    dbi = run_engine(False)
    dbj = run_engine(True)
    assert_results_equal(dbi, dbj, ["path"])

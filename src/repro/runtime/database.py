"""The fact database: EDB input facts + IDB derived relations.

Facts are registered through :meth:`Database.add_facts`; probabilistic
facts additionally carry probabilities and optional mutual-exclusion
groups.  Input facts receive globally contiguous ids (returned to the
caller, which is how the neural bridge routes gradients back), and
exclusion groups occupy contiguous id ranges — the invariant top-1-proof
conflict detection relies on.

A database may keep receiving facts *after* it has been evaluated: the
new rows accumulate as a pending delta, and the next :meth:`finalize`
folds them into the stored relations (marking them recent/changed) so an
incremental re-run can seed the semi-naive frontier from them instead of
recomputing the full fix point.  When incremental evaluation is unsound
for the program or provenance, :meth:`rebuild` replays every fact ever
added through a fresh cold load — re-running then matches a from-scratch
evaluation by construction.

Deltas are *signed*: :meth:`retract_facts` stages the removal of input
facts the same way :meth:`add_facts` stages additions.  The engine's
maintain path consumes the staged retractions through
:meth:`retraction_seeds` / :meth:`apply_retractions` (the DRed
over-delete/re-derive protocol); the fallback path simply drops the
retracted instances from the input-fact log and rebuilds, so a cold
rerun evaluates exactly the surviving multiset.  Fact ids are *never*
reused: a retracted probabilistic fact keeps its slot in the
probability/group arrays (its gradient just stops receiving mass), so
ids handed to the neural bridge stay stable across any mix of inserts
and retractions.
"""

from __future__ import annotations

import numpy as np

from .relation import StoredRelation
from .table import Table
from ..errors import ResolutionError
from ..provenance.base import Provenance
from ..stats.relation_stats import RelationStats, StatsCatalog


class Database:
    """Named relations sharing one provenance semiring."""

    def __init__(self, schemas: dict[str, tuple[np.dtype, ...]], provenance: Provenance):
        self.provenance = provenance
        self.schemas = dict(schemas)
        self.relations: dict[str, StoredRelation] = {}
        #: Facts added but not yet loaded into relations (this round).
        self._pending: dict[str, tuple[list[tuple], list[int]]] = {}
        #: Every fact already loaded, kept for cold rebuilds.
        self._loaded: dict[str, tuple[list[tuple], list[int]]] = {}
        #: Rows staged for retraction against the loaded facts (this
        #: round); consumed by the engine's maintain path or by
        #: :meth:`discard_retractions` on the rebuild fallback.
        self._retractions: dict[str, list[tuple]] = {}
        #: Bumped on every mutation (add/retract/rebuild) so long-lived
        #: observers (e.g. a MaterializedView) can detect out-of-band
        #: writes and fail with StaleViewError instead of drifting.
        self.version = 0
        self._probs: list[float] = []
        self._groups: list[int] = []
        self._next_group = 0
        self.input_probs = np.zeros(0, dtype=np.float64)
        self.exclusion_groups = np.zeros(0, dtype=np.int64)
        self._finalized = False
        #: Set by the engine after a successful run; a later add_facts
        #: then makes the next run a warm (incremental or rebuilt) one.
        self.evaluated = False

    # ------------------------------------------------------------------

    @property
    def n_input_facts(self) -> int:
        return len(self._probs)

    @property
    def has_pending_facts(self) -> bool:
        """Whether facts were added since the last :meth:`finalize`."""
        return any(rows for rows, _ in self._pending.values())

    @property
    def has_pending_retractions(self) -> bool:
        """Whether retractions were staged since the last run."""
        return any(self._retractions.values())

    def relation(self, name: str) -> StoredRelation:
        rel = self.relations.get(name)
        if rel is None:
            if name not in self.schemas:
                raise ResolutionError(f"unknown relation {name!r}")
            rel = StoredRelation(name, self.schemas[name], self.provenance)
            self.relations[name] = rel
        return rel

    def new_exclusion_group(self) -> int:
        """Reserve a mutual-exclusion group id for use across several
        :meth:`add_facts` calls (e.g. op candidates spread over multiple
        relations).  Calls sharing a group must be issued back-to-back so
        the group's fact ids stay contiguous — top-1-proof conflict
        detection relies on that invariant."""
        group = self._next_group
        self._next_group += 1
        return group

    def add_facts(
        self,
        name: str,
        rows: list[tuple],
        probs: list[float] | np.ndarray | None = None,
        exclusive: bool = False,
        group: int | None = None,
    ) -> np.ndarray:
        """Register input facts for relation ``name``.

        ``probs`` attaches a probability per row (None = discrete facts).
        ``exclusive=True`` puts all rows of this call into one fresh
        mutual-exclusion group (e.g. the outcomes of one softmax);
        ``group`` joins an existing group from
        :meth:`new_exclusion_group` instead.
        Returns the assigned input-fact ids (−1 for discrete facts).

        Calling this after the database has been evaluated marks the rows
        as a pending delta; the next engine run folds them in.
        """
        if name not in self.schemas:
            self.schemas[name] = self._infer_schema(rows)
        self.version += 1
        pending_rows, pending_ids = self._pending.setdefault(name, ([], []))
        if probs is None:
            ids = np.full(len(rows), -1, dtype=np.int64)
            pending_rows.extend(tuple(row) for row in rows)
            pending_ids.extend([-1] * len(rows))
            return ids
        if len(probs) != len(rows):
            raise ValueError("probs length must match rows length")
        if group is None:
            group = -1
            if exclusive:
                group = self.new_exclusion_group()
        start = len(self._probs)
        ids = np.arange(start, start + len(rows), dtype=np.int64)
        for row, prob in zip(rows, probs):
            pending_rows.append(tuple(row))
            pending_ids.append(len(self._probs))
            self._probs.append(float(prob))
            self._groups.append(group)
        return ids

    @staticmethod
    def _infer_schema(rows: list[tuple]) -> tuple[np.dtype, ...]:
        if not rows:
            return ()
        arity = len(rows[0])
        return tuple(
            np.dtype(np.float64)
            if any(isinstance(row[j], float) for row in rows)
            else np.dtype(np.int64)
            for j in range(arity)
        )

    def finalize(self) -> None:
        """Bind the provenance to the input facts and load EDB tables.

        Idempotent; may be called again after more :meth:`add_facts` —
        fact ids are stable across rounds (the probability/group arrays
        only ever extend), so previously issued tags stay valid.  Rows
        landing in an already-populated relation are folded in through
        :meth:`~repro.runtime.relation.StoredRelation.advance`, which
        marks them recent/changed for incremental re-evaluation.
        """
        if self._finalized and not self.has_pending_facts:
            return
        self.input_probs = np.asarray(self._probs, dtype=np.float64)
        self.exclusion_groups = np.asarray(self._groups, dtype=np.int64)
        self.provenance.setup(self.input_probs, self.exclusion_groups)
        for name, (rows, ids) in self._pending.items():
            if not rows:
                continue
            tags = self.provenance.input_tags(np.asarray(ids, dtype=np.int64))
            table = Table.from_rows(rows, self.schemas[name], tags)
            rel = self.relation(name)
            if rel.n_facts():
                rel.advance(table)
            else:
                rel.set_facts(table)
            loaded_rows, loaded_ids = self._loaded.setdefault(name, ([], []))
            loaded_rows.extend(rows)
            loaded_ids.extend(ids)
        self._pending.clear()
        self._finalized = True

    # ------------------------------------------------------------------
    # Retraction support (signed deltas)

    def retract_facts(self, name: str, rows: list[tuple]) -> int:
        """Stage the removal of input facts: every instance of each given
        row — pending or already loaded, discrete or probabilistic — is
        withdrawn at the next engine run, exactly as if it had never been
        added (a cold evaluation of the surviving facts is the semantic
        reference).  Rows with no matching instance are ignored: they
        contribute nothing either way, so the equivalence holds trivially.

        Returns the number of fact instances the retraction matched.
        Fact ids are never reused; a retracted probabilistic fact keeps
        its probability-array slot and simply stops receiving gradient.
        """
        if name not in self.schemas:
            raise ResolutionError(f"unknown relation {name!r}")
        self.version += 1
        row_set = {tuple(row) for row in rows}
        matched = 0
        # Pending inserts die immediately: add-then-retract in one round
        # means the fact never existed.
        pending = self._pending.get(name)
        if pending and pending[0]:
            kept = [
                (row, fid)
                for row, fid in zip(*pending)
                if row not in row_set
            ]
            matched += len(pending[0]) - len(kept)
            self._pending[name] = (
                [row for row, _ in kept],
                [fid for _, fid in kept],
            )
        # Loaded instances are withdrawn at the next run (maintain or
        # rebuild); stage the rows that actually match something.
        loaded = self._loaded.get(name)
        if loaded:
            loaded_hits = sum(1 for row in loaded[0] if row in row_set)
            if loaded_hits:
                matched += loaded_hits
                loaded_set = set(loaded[0])
                staged = self._retractions.setdefault(name, [])
                staged_set = set(staged)
                staged.extend(
                    sorted(row_set & loaded_set - staged_set)
                )
        return matched

    def retraction_seeds(self) -> dict[str, list[tuple]]:
        """Staged retracted rows per relation — the over-delete seeds."""
        return {
            name: list(rows)
            for name, rows in self._retractions.items()
            if rows
        }

    def discard_retractions(self) -> None:
        """Apply staged retractions to the input-fact log only (drop the
        matching ``_loaded`` instances).  Used by the rebuild fallback —
        a subsequent cold reload then evaluates exactly the surviving
        facts — and by :meth:`apply_retractions` after over-delete."""
        for name, rows in self._retractions.items():
            if not rows:
                continue
            loaded = self._loaded.get(name)
            if not loaded:
                continue
            row_set = set(rows)
            kept = [
                (row, fid) for row, fid in zip(*loaded) if row not in row_set
            ]
            self._loaded[name] = (
                [row for row, _ in kept],
                [fid for _, fid in kept],
            )
        self._retractions = {}

    def apply_retractions(self, doomed: dict[str, np.ndarray]) -> dict[str, Table]:
        """The removal + re-insertion half of a DRed maintain pass.

        ``doomed`` maps relation names to boolean masks over their
        ``full`` rows (retracted seeds plus everything transitively
        derivable from them, as computed by the interpreter's
        over-delete).  This method removes the doomed rows, drops the
        retracted instances from the input-fact log, and re-stages every
        *surviving* input-fact instance whose row was doomed — the next
        :meth:`finalize` folds those back in with their original tags and
        ids, and the re-derive phase recovers the derived facts.

        Returns the removed rows per relation (sorted tables, old tags)
        — the re-derive phase's head restriction.
        """
        removed: dict[str, Table] = {}
        doomed_rows: dict[str, set[tuple]] = {}
        for name, mask in doomed.items():
            if not mask.any():
                continue
            rel = self.relations[name]
            removed[name] = rel.remove_rows(mask)
            doomed_rows[name] = set(removed[name].rows())
        self.discard_retractions()
        for name, rows in doomed_rows.items():
            loaded = self._loaded.get(name)
            if not loaded or not loaded[0]:
                continue
            kept: list[tuple[tuple, int]] = []
            restage: list[tuple[tuple, int]] = []
            for row, fid in zip(*loaded):
                (restage if row in rows else kept).append((row, fid))
            if restage:
                self._loaded[name] = (
                    [row for row, _ in kept],
                    [fid for _, fid in kept],
                )
                p_rows, p_ids = self._pending.setdefault(name, ([], []))
                p_rows.extend(row for row, _ in restage)
                p_ids.extend(fid for _, fid in restage)
        return removed

    # ------------------------------------------------------------------
    # Incremental-evaluation support

    def begin_delta_tracking(self) -> None:
        """Zero every relation's ``changed`` mask so the next finalize +
        run can identify exactly the rows this round added/improved."""
        for rel in self.relations.values():
            rel.begin_delta_tracking()

    def rebuild(self) -> None:
        """Drop all derived state and stage every fact ever added for a
        cold reload (the sound fallback when incremental re-evaluation is
        unavailable).  Fact ids, probabilities, and exclusion groups are
        preserved, so gradients and returned ids remain meaningful.
        Staged retractions are applied to the fact log first, so the
        reload stages exactly the surviving facts."""
        self.discard_retractions()
        self.version += 1
        merged: dict[str, tuple[list[tuple], list[int]]] = {}
        for name, (rows, ids) in self._loaded.items():
            merged[name] = (list(rows), list(ids))
        for name, (rows, ids) in self._pending.items():
            rows_acc, ids_acc = merged.setdefault(name, ([], []))
            rows_acc.extend(rows)
            ids_acc.extend(ids)
        self._pending = merged
        self._loaded = {}
        self.relations = {}
        self._finalized = False
        self.evaluated = False

    # ------------------------------------------------------------------
    # Durability (checkpoint / export interchange)

    def state_dict(self) -> dict:
        """Full serializable state: the input-fact log (rows, ids,
        probabilities, exclusion groups), every stored relation's tables
        + masks + optional statistics, staged deltas, and the mutation
        counter.  Everything the constructor plus the add/retract history
        would have produced — restoring via :meth:`from_state` yields a
        database indistinguishable from the original, including fact-id
        allocation (ids are never reused, so the log is the allocator).
        """
        return {
            "schemas": {
                name: tuple(dtype.str for dtype in dtypes)
                for name, dtypes in self.schemas.items()
            },
            "relations": {
                name: {
                    "columns": list(rel.full.columns),
                    "tags": rel.full.tags,
                    "n_rows": rel.full.n_rows,
                    "recent_mask": rel.recent_mask,
                    "changed_mask": rel.changed_mask,
                    "stats": (
                        rel.stats.state_dict() if rel.stats is not None else None
                    ),
                }
                for name, rel in self.relations.items()
            },
            "pending": {
                name: (list(rows), list(ids))
                for name, (rows, ids) in self._pending.items()
            },
            "loaded": {
                name: (list(rows), list(ids))
                for name, (rows, ids) in self._loaded.items()
            },
            "retractions": {
                name: list(rows) for name, rows in self._retractions.items()
            },
            "version": self.version,
            "probs": list(self._probs),
            "groups": list(self._groups),
            "next_group": self._next_group,
            "finalized": self._finalized,
            "evaluated": self.evaluated,
        }

    @classmethod
    def from_state(cls, state: dict, provenance: Provenance) -> "Database":
        """Reconstruct a database from :meth:`state_dict` output onto a
        *fresh* provenance instance (the caller supplies one matching the
        semiring the state was written under; tags are data, so a fresh
        instance set up on the restored input facts reads them)."""
        schemas = {
            name: tuple(np.dtype(spec) for spec in dtypes)
            for name, dtypes in state["schemas"].items()
        }
        database = cls(schemas, provenance)
        database._pending = {
            name: (list(rows), list(ids))
            for name, (rows, ids) in state["pending"].items()
        }
        database._loaded = {
            name: (list(rows), list(ids))
            for name, (rows, ids) in state["loaded"].items()
        }
        database._retractions = {
            name: list(rows) for name, rows in state["retractions"].items()
        }
        database.version = int(state["version"])
        database._probs = [float(p) for p in state["probs"]]
        database._groups = [int(g) for g in state["groups"]]
        database._next_group = int(state["next_group"])
        database._finalized = bool(state["finalized"])
        database.evaluated = bool(state["evaluated"])
        database.input_probs = np.asarray(database._probs, dtype=np.float64)
        database.exclusion_groups = np.asarray(database._groups, dtype=np.int64)
        if database._finalized:
            provenance.setup(database.input_probs, database.exclusion_groups)
        for name, rel_state in state["relations"].items():
            rel = StoredRelation(name, schemas[name], provenance)
            rel.full = Table(
                [np.asarray(column) for column in rel_state["columns"]],
                np.asarray(rel_state["tags"]),
                int(rel_state["n_rows"]),
            )
            rel.recent_mask = np.asarray(rel_state["recent_mask"], dtype=bool)
            rel.changed_mask = np.asarray(rel_state["changed_mask"], dtype=bool)
            if rel_state["stats"] is not None:
                rel._stats = RelationStats.from_state(rel_state["stats"])
            database.relations[name] = rel
        return database

    # ------------------------------------------------------------------

    def stats_catalog(self) -> StatsCatalog:
        """Planner statistics for every materialized relation.

        Enables incremental stats maintenance on each relation (a no-op
        after the first call), so the catalog's
        :class:`~repro.stats.RelationStats` entries stay current as runs
        advance the relations.  Before the first run the catalog holds
        EDB relations only; afterwards it includes observed IDB
        cardinalities — the feedback the adaptive planner re-plans from.
        """
        return StatsCatalog.from_database(self)

    def total_bytes(self) -> int:
        return sum(rel.nbytes() for rel in self.relations.values())

    def result(self, name: str) -> Table:
        """Final contents of a relation after execution."""
        return self.relation(name).snapshot("full")

    def result_probs(self, name: str) -> tuple[list[tuple], np.ndarray]:
        table = self.result(name)
        return table.rows(), self.provenance.prob(table.tags)

"""Trace-JIT: record hot APM traces, compile them to fused kernels.

The interpreter dispatches one APM instruction at a time and
materializes every intermediate register.  This subsystem applies the
dynamic-binary-instrumentation playbook to that loop: after a program
runs warm, one run *records* its executed instruction trace (plus
observed cardinalities via the planner's feedback machinery), the
*region selector* (:mod:`repro.jit.regions`) cuts it into straight-line
fusible segments, the *fusion compiler* (:mod:`repro.jit.fuse`) lowers
each segment into a single fused vectorized kernel specialized on dtype
and semiring, and the *code cache* (:class:`repro.runtime.cache
.ProgramCache`) stores the translation next to the plan so subsequent
runs re-enter it directly.  Guards re-validate the specialization on
every entry and deopt to the interpreter on drift — results are always
bitwise-identical to interpreted execution.
"""

from .fuse import VariantKernel, compile_variant
from .regions import Region, fused_kernel_count, select_regions
from .trace import (
    DEDUP_SAFE_SEMIRINGS,
    CompiledTrace,
    JitConfig,
    JitRunState,
    TraceRecorder,
    compile_trace,
    trace_signature,
)

__all__ = [
    "CompiledTrace",
    "DEDUP_SAFE_SEMIRINGS",
    "JitConfig",
    "JitRunState",
    "Region",
    "TraceRecorder",
    "VariantKernel",
    "compile_trace",
    "compile_variant",
    "fused_kernel_count",
    "select_regions",
    "trace_signature",
]

"""Trace-JIT: fused kernels vs. the interpreter on a hot serving loop.

The serving scenario the JIT targets: one compiled program executed over
and over on same-shaped databases.  The interpreter launches one kernel
per APM instruction every run; after ``hot_runs`` warm executions the
trace-JIT records the instruction trace once and replays fused kernels —
one launch per join region instead of one per instruction, with no
intermediate-register round-trips.

Workloads: hot transitive closure (unit and minmaxprob provenance) and
hot CSPA.  For each, the same request loop runs on an interpreted engine
and a JIT'd engine; identity of results is asserted row-for-row and
tag-for-tag.  Gate: >= 2x on modeled device busy seconds for the unit-TC
loop (the deterministic simulated clock — wall time is reported as a
multi-trial mean +/- stddev but never gated).  ``LOBSTER_JIT_TINY=1``
shrinks inputs for CI smoke runs and skips the gate (tiny inputs are
launch-latency noise).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import JitConfig, LobsterEngine, ProgramCache
from repro.workloads.analytics import CSPA

from _harness import print_table, record, report, timed

SUITE = "jit"

TINY = bool(os.environ.get("LOBSTER_JIT_TINY"))

TC = """
rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
query path
"""

#: Runs per request loop: enough past the warm/record phases that the
#: steady state dominates the modeled totals.
N_RUNS = 4 if TINY else 8
HOT_RUNS = 2
WALL_TRIALS = 2 if TINY else 3


def tc_facts():
    n_nodes = 30 if TINY else 90
    n_edges = 70 if TINY else 260
    rng = np.random.default_rng(17)
    edges = {
        (int(a), int(b))
        for a, b in rng.integers(0, n_nodes, size=(n_edges, 2))
        if a != b
    }
    return {"edge": sorted(edges)}


def cspa_facts():
    n_vars = 25 if TINY else 60
    rng = np.random.default_rng(23)
    assign = {
        (int(a), int(b))
        for a, b in rng.integers(0, n_vars, size=(n_vars * 2, 2))
        if a != b
    }
    deref = {
        (int(a), int(b))
        for a, b in rng.integers(0, n_vars, size=(n_vars // 2, 2))
    }
    return {"assign": sorted(assign), "dereference": sorted(deref)}


WORKLOADS = {
    "hot-TC/unit": (TC, "path", "unit", tc_facts),
    "hot-TC/minmaxprob": (TC, "path", "minmaxprob", tc_facts),
    "hot-CSPA/unit": (CSPA, "value_flow", "unit", cspa_facts),
}


def fact_probs(provenance, facts):
    if provenance == "unit":
        return None
    rng = np.random.default_rng(5)
    return {
        name: (0.4 + 0.6 * rng.random(len(rows))).tolist()
        for name, rows in facts.items()
    }


def run_loop(source, provenance, facts, probs, jit):
    """One serving loop: N_RUNS same-shaped databases through one engine.
    Returns (last database, last result, steady-state modeled seconds)."""
    engine = LobsterEngine(
        source,
        provenance=provenance,
        cache=ProgramCache(),
        jit=JitConfig(hot_runs=HOT_RUNS) if jit else False,
    )
    db = result = None
    steady = []
    for i in range(N_RUNS):
        db = engine.create_database()
        for name, rows in facts.items():
            db.add_facts(name, rows, probs.get(name) if probs else None)
        result = engine.run(db)
        if i > HOT_RUNS:  # past warm + record: the JIT's steady state
            steady.append(result.profile.busy_seconds)
    return db, result, sum(steady)


@pytest.fixture(scope="module")
def results():
    out = {}
    for name, (source, query, provenance, loader) in WORKLOADS.items():
        facts = loader()
        probs = fact_probs(provenance, facts)
        idb, ires, i_modeled = run_loop(source, provenance, facts, probs, jit=False)
        jdb, jres, j_modeled = run_loop(source, provenance, facts, probs, jit=True)
        # Wall clock goes through the shared multi-trial harness; the
        # modeled steady-state seconds are the gated numbers.
        i_wall = timed(
            lambda: run_loop(source, provenance, facts, probs, jit=False),
            trials=WALL_TRIALS,
        )
        j_wall = timed(
            lambda: run_loop(source, provenance, facts, probs, jit=True),
            trials=WALL_TRIALS,
        )
        report(
            SUITE, f"{name}/interp", samples=[i_modeled], unit="modeled_s",
            mode="interp", tiny=TINY,
        )
        report(
            SUITE, f"{name}/jit", samples=[j_modeled], unit="modeled_s",
            mode="jit", tiny=TINY,
        )
        report(SUITE, f"{name}/interp-wall", i_wall, mode="interp", tiny=TINY)
        report(SUITE, f"{name}/jit-wall", j_wall, mode="jit", tiny=TINY)
        out[name] = (query, idb, ires, i_modeled, i_wall, jdb, jres, j_modeled, j_wall)
    return out


def test_jit_vs_interpreter(results, benchmark):
    def check():
        table = []
        for name, (
            query, idb, ires, i_modeled, i_wall, jdb, jres, j_modeled, j_wall,
        ) in results.items():
            table.append(
                [
                    name,
                    idb.result(query).n_rows,
                    f"{i_modeled * 1e3:.3f}ms",
                    f"{j_modeled * 1e3:.3f}ms",
                    f"{i_modeled / j_modeled:.2f}x" if j_modeled else "-",
                    i_wall.label,
                    j_wall.label,
                ]
            )
        print_table(
            "Trace-JIT vs interpreter on hot loops (modeled busy seconds)"
            + (" (tiny)" if TINY else ""),
            [
                "workload",
                "rows",
                "interp",
                "jit",
                "speedup",
                "interp wall",
                "jit wall",
            ],
            table,
        )

        for name, (query, idb, _, _, _, jdb, jres, _, _) in results.items():
            # Identity: the JIT's contract is bitwise equality.
            itab, jtab = idb.result(query), jdb.result(query)
            assert itab.n_rows == jtab.n_rows, name
            for ic, jc in zip(itab.columns, jtab.columns):
                assert np.array_equal(ic, jc), name
            assert np.array_equal(itab.tags, jtab.tags), name
            # And the last run really went through the code cache.
            assert jres.jit and jres.jit_deopt is None, name

        # Fused kernels launch far fewer times than one-per-instruction.
        for name, (_, _, ires, _, _, _, jres, _, _) in results.items():
            assert (
                jres.profile.kernel_launches < ires.profile.kernel_launches
            ), name

        if not TINY:
            # The headline gate: >= 2x modeled on the hot unit-TC loop.
            (_, _, _, i_modeled, _, _, _, j_modeled, _) = results["hot-TC/unit"]
            ratio = i_modeled / j_modeled
            assert ratio >= 2.0, f"hot-TC/unit speedup {ratio:.2f}x < 2.0x"
            # And the JIT never loses on the other hot loops.
            for name in ("hot-TC/minmaxprob", "hot-CSPA/unit"):
                (_, _, _, i_m, _, _, _, j_m, _) = results[name]
                assert j_m <= i_m * 1.05, name

    record(benchmark, check)

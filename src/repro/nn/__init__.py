"""Minimal numpy autodiff: the PyTorch stand-in for perception models."""

from .bridge import NeurosymbolicFunction
from .layers import MLP, Classifier, Linear, Module, PatchScorer
from .losses import binary_cross_entropy, mse, nll
from .optim import SGD, Adam, Optimizer
from .tensor import Tensor

__all__ = [
    "Adam",
    "Classifier",
    "Linear",
    "MLP",
    "Module",
    "NeurosymbolicFunction",
    "Optimizer",
    "PatchScorer",
    "SGD",
    "Tensor",
    "binary_cross_entropy",
    "mse",
    "nll",
]

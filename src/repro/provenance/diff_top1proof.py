"""The ``diff-top-1-proofs`` semiring (§2.4, §3.5).

The workhorse of the paper's differentiable benchmarks: tags are top-1
proofs (as in :mod:`.top1proof`) and the probability of a fact is the
product of its proof's input probabilities.  The gradient w.r.t. input fact
``i`` in the proof is the leave-one-out product of the other members —
computed exactly, including rows containing zero probabilities.
"""

from __future__ import annotations

import numpy as np

from .top1proof import PAD, Top1ProofProvenance, leave_one_out_products


class DiffTop1ProofProvenance(Top1ProofProvenance):
    """Differentiable single-proof tracking."""

    name = "diff-top-1-proofs"
    is_differentiable = True

    def backward(self, tags, grad_out, grad_in) -> None:
        if len(tags) == 0:
            return
        proofs = tags["proof"]
        valid = (proofs != PAD) & (tags["size"][:, None] > 0)
        safe = np.clip(proofs, 0, max(self.n_inputs - 1, 0))
        probs = np.where(valid, self.input_probs[safe], 1.0)
        partials = leave_one_out_products(probs, valid)
        weighted = partials * grad_out[:, None]
        np.add.at(grad_in, safe[valid], weighted[valid])

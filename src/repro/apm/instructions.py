"""The APM instruction set (Table 1), in executable form.

APM is assembly-style: SSA vector registers, explicit allocation, no
control flow.  Every instruction below corresponds to one row of Table 1
or to a short fixed pipeline of them (documented per class); each maps to
a fixed sequence of data-parallel kernels, so a compiled program is
guaranteed massively parallel execution.

Fusions relative to Table 1 (the interpreter executes the same kernels the
paper's discrete instructions would):

* :class:`Probe` fuses ``count``/``scan``/``join`` — the three-step hash
  join expansion of Fig. 6 — because the intermediate histogram registers
  are never observable by other instructions.
* :class:`EvalFilter` fuses ``eval`` (producing a selection mask) with the
  ``scan``+``gather`` compaction of the surviving rows.

A table at the register level is a *pack*: one register per column plus a
tag register.  The tag register always exists, so arity-0 relations still
carry a row count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.bytecode import BytecodeProgram

#: Database partitions used by semi-naive evaluation (§3.4).
FULL = "full"
RECENT = "recent"
STABLE = "stable"
#: Rows added or improved since delta tracking began — the partition
#: incremental re-evaluation seeds its variants from.
DELTA = "delta"


@dataclass(frozen=True)
class Pack:
    """A register-level table: column registers + a tag register."""

    cols: tuple[str, ...]
    tags: str
    dtypes: tuple[np.dtype, ...]


@dataclass(frozen=True)
class Load:
    """``[s_n, s_t] = load⟨ρ⟩()`` from a database partition."""

    dst: Pack
    predicate: str
    partition: str


@dataclass(frozen=True)
class StoreDelta:
    """``store⟨ρ⟩(s_n, s_t)`` into the target relation's delta set."""

    predicate: str
    src: Pack


@dataclass(frozen=True)
class EvalProject:
    """``d_m <- eval⟨α⟩(s_n)``: row-parallel projection.

    ``programs[j]`` is either an ``int`` (plain columnar copy of source
    column j — the §5.2 fast path) or a :class:`BytecodeProgram`.  Tags are
    copied through unchanged (projection is provenance-preserving).
    """

    dst: Pack
    src: Pack
    programs: tuple[object, ...]


@dataclass(frozen=True)
class EvalFilter:
    """Selection: evaluate a boolean bytecode program, compact survivors."""

    dst: Pack
    src: Pack
    program: BytecodeProgram


@dataclass(frozen=True)
class Build:
    """``d <- build(s_n)``: hash index over the first ``width`` columns.

    ``static_key`` marks the §4.2 optimization: when not None, the index is
    iteration-invariant and cached on the device across fix-point
    iterations (the ``static`` register qualifier).
    """

    dst: str
    src: Pack
    width: int
    static_key: str | None = None


@dataclass(frozen=True)
class Probe:
    """Hash join: fused count/scan/join of Fig. 6.

    Writes two index registers: ``dst_build`` (rows of the build-side
    table) and ``dst_probe`` (rows of the probe-side table), one entry per
    matching pair.
    """

    dst_build: str
    dst_probe: str
    index: str
    probe: Pack
    width: int


@dataclass(frozen=True)
class AntiProbe:
    """Indices of probe rows with *no* match (stratified negation)."""

    dst: str
    index: str
    probe: Pack
    width: int


@dataclass(frozen=True)
class Gather:
    """``d_n <- gather(i, s_n)``: row gather of selected columns."""

    dst_cols: tuple[str, ...]
    index: str
    src_cols: tuple[str, ...]


@dataclass(frozen=True)
class GatherTags:
    """``d <- gather⟨⊗⟩([i_l, i_r], [a_t, b_t])``: gather both side's tags
    and conjoin them with the provenance's ⊗."""

    dst: str
    left_index: str
    right_index: str
    left_tags: str
    right_tags: str


@dataclass(frozen=True)
class CopyTags:
    """Tag pass-through for projections (``copy`` on the tag register)."""

    dst: str
    src: str


@dataclass(frozen=True)
class CrossIndices:
    """Index pair enumeration for a cartesian product (×)."""

    dst_left: str
    dst_right: str
    left_tags: str
    right_tags: str


@dataclass(frozen=True)
class PassIfEmpty:
    """Keep all source rows iff the guard table is empty (width-0 negation)."""

    dst: Pack
    src: Pack
    guard_tags: str


#: Trace-JIT region metadata (see :mod:`repro.jit.regions`).  *Eager*
#: instructions begin a new fused segment: their outputs are consumed at
#: data-dependent positions (hash lookups, match enumeration), so a fused
#: pipeline cannot stream through them row-for-row.  *Fusible*
#: instructions are pure row-parallel dataflow — the fusion compiler
#: pipelines them into the enclosing segment so their intermediates never
#: materialize.  *Unsupported* instructions (stratified negation's probe
#: and the width-0 negation guard) have no fused translation; variants
#: containing them always execute through the interpreter.
EAGER = (Load, Build, Probe, CrossIndices)
FUSIBLE = (EvalProject, EvalFilter, Gather, GatherTags, CopyTags, StoreDelta)
JIT_UNSUPPORTED = (AntiProbe, PassIfEmpty)


Instruction = (
    Load
    | StoreDelta
    | EvalProject
    | EvalFilter
    | Build
    | Probe
    | AntiProbe
    | Gather
    | GatherTags
    | CopyTags
    | CrossIndices
    | PassIfEmpty
)

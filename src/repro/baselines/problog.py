"""The ProbLog baseline: exact probabilistic inference.

The publicly released ProbLog performs *exact* inference (§6.2), which is
why it times out on every PSA and RNA SSP instance in the paper's
evaluation.  This stand-in reproduces that behaviour mechanism and all:
it collects the **complete** proof DNF of every queried fact (no top-k
truncation) via the tuple-level engine, then computes exact weighted model
counting by Shannon expansion over the input facts.  Both phases are
exponential in the worst case; a wall-clock budget turns that into the
paper's timeout rows.
"""

from __future__ import annotations

import time

import numpy as np

from .scallop import ScallopInterpreter
from ..errors import EvaluationTimeout
from ..provenance.topkproofs import TopKProofsProvenance


class ExactProofsProvenance(TopKProofsProvenance):
    """Top-k-proofs with unbounded k: the complete proof DNF."""

    name = "exact-proofs"

    def __init__(self):
        super().__init__(k=1)

    def _top_k(self, proofs):
        # Keep everything; subsumption pruning (a proof that is a superset
        # of another is redundant) keeps the DNF irredundant but exact.
        ranked = sorted(proofs, key=lambda p: (len(p), sorted(p)))
        kept: list = []
        for proof in ranked:
            if not any(previous <= proof for previous in kept):
                kept.append(proof)
        return tuple(kept)

    def scalar_prob(self, tag) -> float:
        return _wmc(list(tag), self.input_probs, self.exclusion_groups)


def _wmc(proofs, probs: np.ndarray, groups: np.ndarray, deadline=None) -> float:
    """Exact weighted model counting by Shannon expansion.

    P(any proof satisfied), branching on the variable occurring in the
    most proofs.  Facts sharing an exclusion group are outcomes of one
    categorical variable (a softmax), so the expansion branches over the
    group's outcomes — each member true (others false), plus the residual
    "none of the mentioned members" mass — rather than treating members
    as independent booleans.  Exponential in general — deliberately so.
    """
    if not proofs:
        return 0.0
    if any(len(p) == 0 for p in proofs):
        return 1.0
    if deadline is not None and time.perf_counter() > deadline:
        raise EvaluationTimeout("exact WMC exceeded its budget")

    counts: dict[int, int] = {}
    for proof in proofs:
        for fact in proof:
            counts[fact] = counts.get(fact, 0) + 1
    pivot = max(counts, key=lambda fact: counts[fact])
    group = int(groups[pivot])

    if group < 0:
        # Independent boolean fact: classic two-way expansion.
        p = float(probs[pivot])
        positive = [proof - {pivot} for proof in proofs]
        negative = [proof for proof in proofs if pivot not in proof]
        return p * _wmc(positive, probs, groups, deadline) + (1.0 - p) * _wmc(
            negative, probs, groups, deadline
        )

    # Categorical variable: branch over each group member appearing in the
    # proofs, then the residual mass where none of them fires.
    members = sorted(
        {fact for proof in proofs for fact in proof if int(groups[fact]) == group}
    )
    total = 0.0
    for member in members:
        weight = float(probs[member])
        conditioned = [
            proof - {member}
            for proof in proofs
            if not any(
                int(groups[fact]) == group and fact != member for fact in proof
            )
        ]
        total += weight * _wmc(conditioned, probs, groups, deadline)
    residual = max(0.0, 1.0 - sum(float(probs[m]) for m in members))
    if residual > 0.0:
        without_group = [
            proof
            for proof in proofs
            if not any(int(groups[fact]) == group for fact in proof)
        ]
        total += residual * _wmc(without_group, probs, groups, deadline)
    return total


class ProbLogEngine(ScallopInterpreter):
    """Exact-inference engine with a wall-clock budget."""

    def __init__(self, source: str, timeout_seconds: float | None = 60.0):
        super().__init__(
            source,
            provenance=ExactProofsProvenance(),
            timeout_seconds=timeout_seconds,
        )
        # The Provenance-instance path loses constructor kwargs; restore it.
        self._provenance_factory = ExactProofsProvenance

    def query_prob(self, database, name: str, row: tuple) -> float:
        deadline = (
            time.perf_counter() + self.timeout_seconds
            if self.timeout_seconds is not None
            else None
        )
        tag = database.rows(name).get(tuple(row))
        if tag is None:
            return 0.0
        return _wmc(
            list(tag),
            database.provenance.input_probs,
            database.provenance.exclusion_groups,
            deadline,
        )

"""Datalog front-end: lexer, parser, resolver, stratifier."""

from . import ast
from .parser import parse
from .program import compile_source
from .resolver import ResolvedProgram, ResolvedRule, Stratum, resolve
from .stratify import stratify

__all__ = [
    "ResolvedProgram",
    "ResolvedRule",
    "Stratum",
    "ast",
    "compile_source",
    "parse",
    "resolve",
    "stratify",
]

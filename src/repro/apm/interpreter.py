"""APM execution (Algorithm 1).

Executes a compiled :class:`~repro.apm.compiler.ApmProgram` against a
:class:`~repro.runtime.database.Database` on a
:class:`~repro.gpu.device.VirtualDevice`.

Each stratum runs to a least fix point: per iteration the interpreter
executes every rule variant's straight-line instruction list, accumulates
delta tables, and advances each relation (the Appendix A "Stratum" rule's
sort/unique⟨⊕⟩/merge sequence, executed by
:meth:`~repro.runtime.relation.StoredRelation.advance` on the same device
kernels).  Iteration stops when the frontier — new facts plus facts whose
tags improved — is empty.

The interpreter also drives the paper's runtime optimizations:

* buffer accounting and reuse (§4.1) — fresh allocations after the first
  iteration at a known allocation site are counted as reused and skip the
  simulated allocation latency;
* static hash-index reuse (§4.2) — ``Build`` instructions with a
  ``static_key`` consult the device's static-register cache;
* stratum offload scheduling (§5.3) — host<->device transfers are charged
  according to the plan from :mod:`repro.apm.schedule`.
"""

from __future__ import annotations

import numpy as np

from . import instructions as I
from .compiler import ApmProgram, CompiledStratum, Variant
from .schedule import cached_plan
from ..errors import DeviceOutOfMemory, ExecutionError, TraceGuardError
from ..gpu import bytecode
from ..obs import NULL_TRACER
from ..gpu.device import ALLOC_LATENCY_S, VirtualDevice
from ..gpu.hash_table import HashIndex
from ..runtime.database import Database
from ..runtime.relation import RowLocator
from ..runtime.table import Table

DEFAULT_MAX_ITERATIONS = 100_000


def scans_of_variant(variant: Variant) -> list[str]:
    """Predicates of a variant's Load instructions, in order.  For an
    unoptimized variant this is the RAM ``scans_of`` order, which is
    what aligns ``rederive_filters``' scan indices with Load positions."""
    return [
        instruction.predicate
        for instruction in variant.instructions
        if isinstance(instruction, I.Load)
    ]


class ApmInterpreter:
    """Executes APM programs on the virtual device."""

    def __init__(
        self,
        device: VirtualDevice,
        enable_static_reuse: bool = True,
        enable_buffer_reuse: bool = True,
        enable_stratum_scheduling: bool = True,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        retain_allocation_sites: bool = False,
    ):
        self.device = device
        self.enable_static_reuse = enable_static_reuse
        self.enable_buffer_reuse = enable_buffer_reuse
        self.enable_stratum_scheduling = enable_stratum_scheduling
        self.max_iterations = max_iterations
        #: Keep allocation sites warm across run() calls — a session
        #: batching several databases through one program reuses the
        #: previous database's buffers at the same sites, so only the
        #: first database pays the simulated allocation latency.  Sites
        #: are registers, unique program-wide, so retention is safe.
        self.retain_allocation_sites = retain_allocation_sites
        self.iterations_run = 0
        self._seen_sites: set[str] = set()
        self._retained_bytes = 0
        #: When set (by the engine, under its drain lock), executed
        #: variants report observed cardinalities here: join matches,
        #: selection survivors, and per-rule delta outputs — the actuals
        #: the adaptive planner compares against its estimates.
        self.feedback = None
        #: Trace-JIT attachments (set by the engine around a run).  With
        #: a recorder, executed variants report themselves — the recorded
        #: trace.  With a run state, variants with a compiled fused
        #: kernel dispatch to it instead of the interpreted loop below,
        #: deopting back here when a guard fails.
        self.jit_recorder = None
        self.jit_state = None
        #: Tracing attachments (set by the engine around a run): the
        #: tracer, a clock mapping this device's busy seconds onto the
        #: modeled timeline, and the span new spans nest under.  The
        #: defaults make every instrumentation site a single falsy
        #: attribute read.
        self.tracer = NULL_TRACER
        self.trace_clock = None
        self.trace_parent = None

    # ------------------------------------------------------------------

    def run(
        self, program: ApmProgram, database: Database, incremental: bool = False
    ) -> None:
        """Execute ``program`` to fix point against ``database``.

        ``incremental=True`` runs the delta-seeded warm path: instead of
        marking every fact recent and replaying EDB rules, iteration 1 of
        each stratum executes the compiler's delta variants over the rows
        changed since :meth:`Database.begin_delta_tracking`, and the
        frontier grows only from their consequences.  Callers are
        responsible for eligibility (idempotent ⊕, no negation).
        """
        database.finalize()
        transfers = cached_plan(program, self.enable_stratum_scheduling)
        for index, stratum in enumerate(program.strata):
            span = self._start_stratum_span(index, stratum)
            self._charge_transfers(transfers.get(index, ()), database, to_device=True)
            self.begin_stratum()
            try:
                self._run_stratum(stratum, database, program, incremental)
                self._charge_transfers(
                    transfers.get(index, ()), database, to_device=False
                )
            finally:
                self._finish_stratum_span(span)

    def maintain(self, program: ApmProgram, database: Database) -> None:
        """DRed-style maintenance: keep ``database``'s fix point correct
        under staged retractions (plus any pending insertions).

        Three phases, each reusing the normal execution machinery:

        1. **over-delete** — propagate dooms from the retracted rows
           through every rule (the compiled DELTA/RECENT variants with
           the frontier masks repurposed as doom frontiers), against the
           *pre-retraction* state, to a fix point: anything with at least
           one derivation touching a doomed row is doomed;
        2. **remove + re-stage** — doomed rows leave their relations;
           surviving input-fact instances whose rows were doomed are
           re-staged (:meth:`Database.apply_retractions`), and pending
           insertions fold in through the usual finalize;
        3. **re-derive + propagate** — per touched stratum, in order:
           first the head-restricted re-derivation step recovers removed
           rows still derivable from all-untouched survivors (each rule
           whose head relation lost rows executes over leaf scans
           semijoin-filtered by the removed rows' column projections,
           outputs post-filtered to exactly the removed set), then the
           stratum's semi-naive loop runs *delta-seeded* from everything
           that changed since the pass began — restaged inputs, pending
           insertions, and the re-derived rows.  Surviving rows are
           exactly correct already (any derivation through a doomed row
           would have doomed them), so nothing else needs revisiting,
           and untouched strata are skipped outright.

        Callers are responsible for eligibility (idempotent ⊕, no
        negation): non-idempotent ⊕ would double-count re-derived
        alternatives, and a retraction can *add* conclusions under
        negation, which over-delete/re-derive cannot express.
        """
        seeds = database.retraction_seeds()
        opened = None
        if self.tracer.enabled and self.trace_parent is not None:
            span = self.tracer.start(
                "maintain.over_delete",
                t=self.trace_clock(),
                parent=self.trace_parent,
            )
            opened = (span, self.trace_parent)
            self.trace_parent = span
        try:
            doomed = self._over_delete(program, database, seeds)
        finally:
            self._finish_stratum_span(opened)
        affected = set(seeds)
        affected.update(name for name, mask in doomed.items() if mask.any())
        database.begin_delta_tracking()
        removed = database.apply_retractions(doomed)
        database.finalize()
        for name, rel in database.relations.items():
            if rel.n_changed():
                affected.add(name)
        transfers = cached_plan(program, self.enable_stratum_scheduling)
        for index, stratum in enumerate(program.strata):
            touched = affected & (
                self._stratum_reads(stratum) | set(stratum.predicates)
            )
            if not touched:
                continue
            span = self._start_stratum_span(index, stratum)
            self._charge_transfers(transfers.get(index, ()), database, to_device=True)
            self.begin_stratum()
            try:
                rederive_opened = None
                if self.tracer.enabled and self.trace_parent is not None:
                    rederive_span = self.tracer.start(
                        "maintain.rederive",
                        t=self.trace_clock(),
                        parent=self.trace_parent,
                    )
                    rederive_opened = (rederive_span, self.trace_parent)
                    self.trace_parent = rederive_span
                try:
                    self._rederive(stratum, database, program, removed)
                finally:
                    self._finish_stratum_span(rederive_opened)
                self._run_stratum(stratum, database, program, incremental=True)
                self._charge_transfers(
                    transfers.get(index, ()), database, to_device=False
                )
            finally:
                self._finish_stratum_span(span)
            for predicate in stratum.predicates:
                if database.relation(predicate).n_changed():
                    affected.add(predicate)

    def _rederive(
        self,
        stratum: CompiledStratum,
        database: Database,
        program: ApmProgram,
        removed: dict[str, Table],
    ) -> None:
        """The DRed re-derive step: recover removed rows that are still
        one-step derivable from the surviving (post-removal) state.

        The delta-seeded loop that follows only fires rule instances
        touching a changed row, so it would miss a removed fact whose
        surviving derivation uses exclusively untouched facts — this
        step finds exactly those.  Each rule with removed head rows
        executes its all-FULL variant with every leaf scan pre-filtered
        by a per-column semijoin against the removed rows' projections
        (sound: an instance producing a removed head must draw the
        head-mapped columns from those value sets), and the outputs are
        post-filtered to exactly the removed rows.  Deeper re-derivations
        chain through the semi-naive tail as the recovered rows enter
        the frontier.
        """
        provenance = database.provenance
        deltas: dict[str, list[Table]] = {p: [] for p in stratum.predicates}
        locators: dict[str, RowLocator] = {}
        any_rederived = False
        for rule in stratum.rules:
            removed_head = removed.get(rule.target)
            if (
                removed_head is None
                or removed_head.n_rows == 0
                or rule.rederive_variant is None
            ):
                continue
            locator = locators.get(rule.target)
            if locator is None:
                locator = locators[rule.target] = RowLocator(removed_head)
            load_tables: list[Table | None] = []
            for scan_index, scan in enumerate(scans_of_variant(rule.rederive_variant)):
                mapped = rule.rederive_filters.get(scan_index)
                if not mapped:
                    load_tables.append(None)
                    continue
                table = database.relation(scan).snapshot(I.FULL)
                keep = np.ones(table.n_rows, dtype=bool)
                for scan_col, head_col in mapped:
                    keep &= np.isin(
                        table.columns[scan_col],
                        removed_head.columns[head_col],
                    )
                filtered = table.take(np.flatnonzero(keep))
                # The semijoin is a real kernel: charge its output.
                self.device.record_kernel(filtered.n_rows)
                load_tables.append(filtered)
            before = deltas[rule.target]
            staged: dict[str, list[Table]] = {rule.target: []}
            self._execute_variant(
                rule.rederive_variant, database, staged, iteration=1,
                load_tables=load_tables,
            )
            for table in staged[rule.target]:
                hit = locator.contains(table.columns, n_query=table.n_rows)
                if hit.any():
                    before.append(table.take(np.flatnonzero(hit)))
                    any_rederived = True
        # Builds over semijoin-filtered tables must never serve later
        # iterations as "static" indices — they are data-dependent.
        self.device.clear_statics()
        if not any_rederived:
            return
        for predicate in stratum.predicates:
            tables = deltas[predicate]
            if not tables:
                continue
            delta = Table.concat(tables, program.schemas[predicate], provenance)
            # advance() marks recovered rows recent/changed, so the
            # delta-seeded loop picks them up as frontier.
            database.relation(predicate).advance(delta)

    @staticmethod
    def _stratum_reads(stratum: CompiledStratum) -> set[str]:
        """Every predicate any of the stratum's variants loads."""
        return {
            instruction.predicate
            for rule in stratum.rules
            for variant in rule.variants + rule.delta_variants
            for instruction in variant.instructions
            if isinstance(instruction, I.Load)
        }

    def _over_delete(
        self,
        program: ApmProgram,
        database: Database,
        seeds: dict[str, list[tuple]],
    ) -> dict[str, np.ndarray]:
        """Doom propagation: boolean masks (over each relation's ``full``
        rows) of everything with a derivation through a retracted row.

        Runs against the pre-retraction state — nothing is removed here,
        so side atoms scan the original relations (the classic DRed
        over-approximation) and per-relation row locators stay valid for
        the whole pass.  Only variants whose frontier predicate gained
        doomed rows execute, so a quiescent iteration costs nothing."""
        provenance = database.provenance
        doomed: dict[str, np.ndarray] = {}
        newly: dict[str, np.ndarray] = {}
        locators: dict[str, object] = {}

        def locator(name: str):
            found = locators.get(name)
            if found is None:
                found = locators[name] = database.relation(name).locator()
            return found

        for name, rows in seeds.items():
            rel = database.relation(name)
            if rel.full.n_rows == 0 or not rows:
                continue
            columns = [
                np.array([row[j] for row in rows], dtype=dt)
                for j, dt in enumerate(rel.dtypes)
            ]
            mask = locator(name).member_mask(columns)
            if mask.any():
                doomed[name] = mask.copy()
                newly[name] = mask

        self.begin_stratum()
        all_preds = [p for stratum in program.strata for p in stratum.predicates]
        iteration = 0
        previous_frontier: set[str] = set()
        while newly:
            iteration += 1
            self.iterations_run += 1
            if iteration > self.max_iterations:
                raise ExecutionError(
                    f"over-delete exceeded {self.max_iterations} iterations "
                    "without saturating"
                )
            # Expose the doom frontier through the semi-naive masks: the
            # compiled DELTA/RECENT variants then enumerate exactly the
            # rule instances touching a newly doomed row.  Only last
            # iteration's frontier relations need re-zeroing — variants
            # are executed only when their frontier relation is in
            # ``newly``, so other relations' masks are never read here
            # (and everything is reset once the loop ends).
            for name in previous_frontier - set(newly):
                rel = database.relation(name)
                rel.recent_mask = np.zeros(rel.full.n_rows, dtype=bool)
                rel.changed_mask = rel.recent_mask
            for name, frontier in newly.items():
                rel = database.relation(name)
                rel.recent_mask = frontier
                rel.changed_mask = frontier
            previous_frontier = set(newly)
            deltas: dict[str, list[Table]] = {p: [] for p in all_preds}
            for stratum in program.strata:
                for rule in stratum.rules:
                    for variant in rule.delta_variants:
                        if self._frontier_live(variant, newly):
                            # iteration + 1 > 1 keeps static hash indices
                            # warm: FULL relations never change mid-pass.
                            self._execute_variant(
                                variant, database, deltas, iteration + 1
                            )
                    if rule.edb_only:
                        continue
                    for variant in rule.variants:
                        if self._frontier_live(variant, newly):
                            self._execute_variant(
                                variant, database, deltas, iteration + 1
                            )
            newly = {}
            for predicate, tables in deltas.items():
                if not tables:
                    continue
                rel = database.relation(predicate)
                if rel.full.n_rows == 0:
                    continue
                table = Table.concat(
                    tables, program.schemas[predicate], provenance
                )
                if table.n_rows == 0:
                    continue
                hit = locator(predicate).member_mask(table.columns)
                prior = doomed.setdefault(
                    predicate, np.zeros(rel.full.n_rows, dtype=bool)
                )
                fresh = hit & ~prior
                if fresh.any():
                    prior |= fresh
                    newly[predicate] = fresh
        # Leave no stale frontier behind for the re-derive phase.
        for rel in database.relations.values():
            rel.clear_recent()
            rel.changed_mask = np.zeros(rel.full.n_rows, dtype=bool)
        return doomed

    @staticmethod
    def _frontier_live(variant: Variant, newly: dict[str, np.ndarray]) -> bool:
        if variant.frontier is None:
            return False
        frontier = newly.get(variant.frontier[0])
        return frontier is not None and bool(frontier.any())

    def _start_stratum_span(self, index: int, stratum: CompiledStratum):
        """Open a stratum span on the attached trace clock and make it
        the parent for the spans the stratum's execution opens; returns
        the previous parent for :meth:`_finish_stratum_span`."""
        if not self.tracer.enabled or self.trace_parent is None:
            return None
        span = self.tracer.start(
            "stratum",
            t=self.trace_clock(),
            parent=self.trace_parent,
            index=index,
            predicates=",".join(stratum.predicates),
            recursive=stratum.recursive,
        )
        previous, self.trace_parent = self.trace_parent, span
        return span, previous

    def _finish_stratum_span(self, opened) -> None:
        if opened is None:
            return
        span, previous = opened
        self.tracer.finish(span, self.trace_clock())
        self.trace_parent = previous

    def begin_stratum(self) -> None:
        """The per-stratum reset protocol, shared with the sharded
        executor (which drives strata itself): static hash indices are
        data-dependent (always reset); allocation sites persist across
        strata only under retention; retained-temporary accounting — the
        no-buffer-reuse failure mode — is per-stratum.
        """
        self.device.clear_statics()
        if not self.retain_allocation_sites:
            self._seen_sites.clear()
        # Without buffer reuse (§4.1), temporaries released across
        # iterations fragment the arena and their footprint accumulates —
        # the failure mode GDLog's over-allocate-and-reuse fix addresses.
        # With reuse, an iteration's temporaries recycle into the next.
        self._retained_bytes = 0

    def _charge_transfers(self, spec, database: Database, to_device: bool) -> None:
        if not spec:
            return
        relations = spec[0] if to_device else spec[1]
        for name in relations:
            if name in database.relations:
                nbytes = database.relations[name].nbytes()
                self.device.record_transfer(nbytes, to_device)

    # ------------------------------------------------------------------

    def _run_stratum(
        self,
        stratum: CompiledStratum,
        database: Database,
        program: ApmProgram,
        incremental: bool = False,
    ) -> None:
        provenance = database.provenance
        for predicate in stratum.predicates:
            relation = database.relation(predicate)
            if incremental:
                # Seed the frontier with only the rows changed this pass
                # (e.g. EDB facts folded directly into an IDB predicate).
                relation.seed_recent_from_changes()
            else:
                relation.mark_all_recent()

        iteration = 0
        while True:
            iteration += 1
            self.iterations_run += 1
            opened = None
            if self.tracer.enabled and self.trace_parent is not None:
                span = self.tracer.start(
                    "iteration",
                    t=self.trace_clock(),
                    parent=self.trace_parent,
                    n=iteration,
                )
                opened = (span, self.trace_parent)
                self.trace_parent = span
            deltas: dict[str, list[Table]] = {p: [] for p in stratum.predicates}
            for rule in stratum.rules:
                if incremental and iteration == 1:
                    # Δ(A ⋈ B) over non-recursive atoms: each delta
                    # variant scans one atom's changed rows against the
                    # others' full partitions.  Recursive atoms are
                    # handled by the normal RECENT variants below.
                    for variant in rule.delta_variants:
                        self._execute_variant(variant, database, deltas, iteration)
                if rule.edb_only and (incremental or iteration > 1):
                    # An incremental pass never replays flat rules in
                    # full — their prior output is already stored.
                    continue
                for variant in rule.variants:
                    self._execute_variant(variant, database, deltas, iteration)

            frontier = 0
            for predicate in stratum.predicates:
                dtypes = program.schemas[predicate]
                delta = Table.concat(deltas[predicate], dtypes, provenance)
                frontier += database.relation(predicate).advance(delta)

            if opened is not None:
                opened[0].attrs["frontier"] = frontier
                self._finish_stratum_span(opened)
            if not stratum.recursive or frontier == 0:
                break
            if iteration >= self.max_iterations:
                raise ExecutionError(
                    f"stratum over {stratum.predicates} exceeded "
                    f"{self.max_iterations} iterations without saturating"
                )

    # ------------------------------------------------------------------

    def _execute_variant(
        self,
        variant: Variant,
        database: Database,
        deltas: dict[str, list[Table]],
        iteration: int,
        load_tables: list[Table | None] | None = None,
    ) -> None:
        """``load_tables``, when given, substitutes the k-th Load
        instruction's table (None entries fall through to the database
        partition) — the DRed re-derive step uses this to execute a
        rule over semijoin-filtered leaf scans.  Entries are consumed in
        Load order, which for an unoptimized variant is the RAM
        ``scans_of`` order."""
        tracer = self.tracer
        tracing = tracer.enabled and self.trace_parent is not None
        if load_tables is None:
            # Trace-JIT entry point.  Substituted-scan executions (the
            # DRed re-derive step) always interpret: their inputs are not
            # the database partitions the trace was specialized against.
            if self.jit_recorder is not None:
                self.jit_recorder.record_variant(variant, iteration)
            state = self.jit_state
            if state is not None:
                kernel = state.kernels.get(id(variant))
                if kernel is not None:
                    start_s = self.trace_clock() if tracing else 0.0
                    try:
                        kernel.execute(self, database, deltas, iteration)
                    except TraceGuardError as exc:
                        # Guards fire before any side effect, so falling
                        # through to the interpreted loop is clean.
                        state.deopts.append(exc.reason)
                        if tracing:
                            tracer.event(
                                "jit.deopt",
                                t=self.trace_clock(),
                                parent=self.trace_parent,
                                reason=exc.reason,
                                rule=variant.rule_key or "",
                            )
                    else:
                        state.executed += 1
                        if tracing:
                            span = tracer.start(
                                "variant",
                                t=start_s,
                                parent=self.trace_parent,
                                kind="kernel",
                                rule=variant.rule_key or "",
                            )
                            tracer.finish(span, self.trace_clock())
                        return
        variant_span = None
        if tracing:
            # The interpreted (or deopted-to-interpreter) execution of
            # this variant; ``kind`` tells the two apart from fused
            # kernel dispatches in the profile.
            variant_span = tracer.start(
                "variant",
                t=self.trace_clock(),
                parent=self.trace_parent,
                kind="interpreted",
                rule=variant.rule_key or "",
            )
        kernel_trace = tracing and tracer.kernels
        registers: dict[str, np.ndarray] = {}
        provenance = database.provenance
        profile = self.device.profile
        load_index = 0

        def put(name: str, array: np.ndarray, charge: bool = True) -> None:
            registers[name] = array
            if not charge:
                return
            # Charged registers are kernel outputs: tick the modeled
            # compute clock (launch overhead + per-row cost, §5.3-style
            # accounting) alongside the allocation counters.
            self.device.record_kernel(len(array))
            profile.allocation_count += 1
            if self.enable_buffer_reuse and name in self._seen_sites:
                profile.reused_allocations += 1
            else:
                profile.bytes_allocated += array.nbytes
                profile.alloc_seconds += ALLOC_LATENCY_S
            self._seen_sites.add(name)
            self._check_capacity(database, registers)

        for instruction in variant.instructions:
            profile.record_instruction(type(instruction).__name__)
            if kernel_trace:
                kernel_start_s = self.trace_clock()

            if isinstance(instruction, I.Load):
                table = None
                if load_tables is not None and load_index < len(load_tables):
                    table = load_tables[load_index]
                load_index += 1
                if table is None:
                    table = database.relation(instruction.predicate).snapshot(
                        instruction.partition
                    )
                for reg, column in zip(instruction.dst.cols, table.columns):
                    put(reg, column, charge=False)
                put(instruction.dst.tags, table.tags, charge=False)

            elif isinstance(instruction, I.EvalProject):
                src = instruction.src
                n = len(registers[src.tags])
                source_cols = [registers[c] for c in src.cols]
                for j, program in enumerate(instruction.programs):
                    dtype = instruction.dst.dtypes[j]
                    if isinstance(program, int):
                        column = source_cols[program]
                        if column.dtype != dtype:
                            column = column.astype(dtype)
                        put(instruction.dst.cols[j], column)
                    else:
                        value = bytecode.execute(program, source_cols, n)
                        put(instruction.dst.cols[j], np.asarray(value).astype(dtype))
                put(instruction.dst.tags, registers[src.tags], charge=False)

            elif isinstance(instruction, I.EvalFilter):
                src = instruction.src
                n = len(registers[src.tags])
                source_cols = [registers[c] for c in src.cols]
                mask = bytecode.execute(instruction.program, source_cols, n)
                keep = np.flatnonzero(mask.astype(bool))
                if self.feedback is not None:
                    self.feedback.record_instruction("EvalFilter", len(keep))
                for dst, col in zip(instruction.dst.cols, source_cols):
                    put(dst, col[keep])
                put(instruction.dst.tags, registers[src.tags][keep])

            elif isinstance(instruction, I.Build):
                index = None
                if instruction.static_key and self.enable_static_reuse and iteration > 1:
                    index = self.device.get_static(instruction.static_key)
                if index is None:
                    columns = [registers[c] for c in instruction.src.cols]
                    index = HashIndex(columns, instruction.width)
                    profile.bytes_allocated += index.nbytes
                    if instruction.static_key and self.enable_static_reuse:
                        self.device.set_static(instruction.static_key, index)
                else:
                    profile.reused_allocations += 1
                registers[instruction.dst] = index  # type: ignore[assignment]

            elif isinstance(instruction, I.Probe):
                index = registers[instruction.index]
                probe_cols = [registers[c] for c in instruction.probe.cols[: instruction.width]]
                probe_ids, build_ids, _counts = index.probe(probe_cols)
                if self.feedback is not None:
                    self.feedback.record_instruction("Probe", len(probe_ids))
                put(instruction.dst_build, build_ids)
                put(instruction.dst_probe, probe_ids)

            elif isinstance(instruction, I.AntiProbe):
                index = registers[instruction.index]
                probe_cols = [registers[c] for c in instruction.probe.cols[: instruction.width]]
                counts = index.count(probe_cols)
                put(instruction.dst, np.flatnonzero(counts == 0))

            elif isinstance(instruction, I.Gather):
                idx = registers[instruction.index]
                for dst, src in zip(instruction.dst_cols, instruction.src_cols):
                    put(dst, registers[src][idx])

            elif isinstance(instruction, I.GatherTags):
                left = registers[instruction.left_tags][registers[instruction.left_index]]
                right = registers[instruction.right_tags][registers[instruction.right_index]]
                put(instruction.dst, provenance.otimes(left, right))

            elif isinstance(instruction, I.CopyTags):
                put(instruction.dst, registers[instruction.src], charge=False)

            elif isinstance(instruction, I.CrossIndices):
                n_left = len(registers[instruction.left_tags])
                n_right = len(registers[instruction.right_tags])
                put(instruction.dst_left, np.repeat(np.arange(n_left, dtype=np.int64), n_right))
                put(instruction.dst_right, np.tile(np.arange(n_right, dtype=np.int64), n_left))

            elif isinstance(instruction, I.PassIfEmpty):
                guard_empty = len(registers[instruction.guard_tags]) == 0
                src = instruction.src
                if guard_empty:
                    for dst, col in zip(instruction.dst.cols, src.cols):
                        put(dst, registers[col], charge=False)
                    put(instruction.dst.tags, registers[src.tags], charge=False)
                else:
                    for dst, dtype in zip(instruction.dst.cols, instruction.dst.dtypes):
                        put(dst, np.empty(0, dtype=dtype), charge=False)
                    put(
                        instruction.dst.tags,
                        np.empty(0, dtype=provenance.tag_dtype()),
                        charge=False,
                    )

            elif isinstance(instruction, I.StoreDelta):
                src = instruction.src
                tags = registers[src.tags]
                columns = [registers[c] for c in src.cols]
                # Drop absorbing-zero facts eagerly — they can never
                # contribute to the fix point.
                dead = provenance.is_absorbing_zero(tags)
                if dead.any():
                    keep = np.flatnonzero(~dead)
                    columns = [c[keep] for c in columns]
                    tags = tags[keep]
                table = Table(columns, tags, len(tags))
                if self.feedback is not None:
                    self.feedback.record_instruction("StoreDelta", table.n_rows)
                    if variant.rule_key is not None:
                        self.feedback.record_rule(variant.rule_key, table.n_rows)
                if table.n_rows:
                    deltas[instruction.predicate].append(table)

            else:
                raise ExecutionError(f"unknown APM instruction {instruction!r}")

            if kernel_trace:
                span = tracer.start(
                    type(instruction).__name__,
                    t=kernel_start_s,
                    parent=variant_span,
                    kind="kernel",
                )
                tracer.finish(span, self.trace_clock())

        if variant_span is not None:
            tracer.finish(variant_span, self.trace_clock())
        if not self.enable_buffer_reuse:
            self._retained_bytes += sum(
                value.nbytes
                for value in registers.values()
                if isinstance(value, np.ndarray)
            )

    # ------------------------------------------------------------------

    def _check_capacity(self, database: Database, registers: dict) -> None:
        if self.device.capacity_bytes is None:
            return
        register_bytes = sum(
            value.nbytes for value in registers.values() if isinstance(value, np.ndarray)
        )
        live = register_bytes + database.total_bytes() + self._retained_bytes
        self.device.profile.peak_arena_bytes = max(
            self.device.profile.peak_arena_bytes, live
        )
        if live > self.device.capacity_bytes:
            raise DeviceOutOfMemory(
                f"live bytes {live} exceed device capacity "
                f"{self.device.capacity_bytes}"
            )

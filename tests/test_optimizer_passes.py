"""Focused APM optimizer pass tests (DCE and projection fusion)."""

from __future__ import annotations

import numpy as np

from repro import LobsterEngine, OptimizationConfig
from repro.apm import instructions as I
from repro.apm.compiler import compile_ram
from repro.apm.optimizer import _eliminate_dead, _fuse_projections, optimize
from repro.datalog import compile_source
from repro.ram import compile_program


def variants_of(apm):
    for stratum in apm.strata:
        for rule in stratum.rules:
            yield from rule.variants


class TestProjectionFusion:
    def test_chained_permutations_collapse(self):
        # b(y, x) :- a(x, y) then c(x) :- b(_, x): the planner emits
        # permutation projections that fusion can merge.
        source = """
        rel b(y, x) :- a(x, y).
        rel c(x, y, z) :- b(x, w), d(w, y), e(y, z).
        """
        unopt = compile_ram(compile_program(compile_source(source)))
        before = unopt.instruction_count()
        optimize(unopt)
        after = unopt.instruction_count()
        assert after <= before

    def test_fusion_preserves_semantics(self):
        source = """
        rel swapped(y, x) :- a(x, y).
        rel back(x, y) :- swapped(y, x).
        """
        results = {}
        for passes in (True, False):
            engine = LobsterEngine(
                source,
                provenance="unit",
                optimizations=OptimizationConfig(apm_passes=passes),
            )
            db = engine.create_database()
            db.add_facts("a", [(1, 2), (3, 4)])
            engine.run(db)
            results[passes] = sorted(db.result("back").rows())
        assert results[True] == results[False] == [(1, 2), (3, 4)]


class TestDeadCodeElimination:
    def test_transitively_dead_chain_removed(self):
        """A chain of instructions feeding nothing is removed entirely."""
        engine = LobsterEngine("rel p(x) :- q(x, y).", provenance="unit")
        variant = next(variants_of(engine.apm))
        # Every remaining instruction's outputs must be (transitively)
        # consumed by the StoreDelta.
        live = set()
        from repro.apm.optimizer import _reads, _writes

        for instruction in reversed(variant.instructions):
            writes = _writes(instruction)
            assert isinstance(instruction, I.StoreDelta) or not writes or (
                writes & live
            ), f"dead instruction survived: {instruction}"
            live |= _reads(instruction)

    def test_store_is_never_removed(self):
        engine = LobsterEngine("rel p(x) :- q(x).", provenance="unit")
        for variant in variants_of(engine.apm):
            assert any(
                isinstance(instruction, I.StoreDelta)
                for instruction in variant.instructions
            )

    def test_eliminate_dead_is_pure_on_live_code(self):
        engine = LobsterEngine(
            "rel tc(x, y) :- e(x, y) or (tc(x, z) and e(z, y)).", provenance="unit"
        )
        for variant in variants_of(engine.apm):
            again = _eliminate_dead(list(variant.instructions))
            assert again == list(variant.instructions)


class TestBatchingWithNegation:
    def test_negation_respects_sample_boundaries(self):
        """A fact negated in one sample must not suppress another's."""
        source = """
        rel ok(x) :- node(x), not bad(x).
        """
        engine = LobsterEngine(source, provenance="unit", batched=True)
        db = engine.create_database()
        engine.add_batch_facts(db, "node", 0, [(1,), (2,)])
        engine.add_batch_facts(db, "node", 1, [(1,), (2,)])
        engine.add_batch_facts(db, "bad", 0, [(1,)])  # only sample 0
        engine.run(db)
        by_sample = engine.query_by_sample(db, "ok")
        assert set(by_sample[0]) == {(2,)}
        assert set(by_sample[1]) == {(1,), (2,)}

    def test_arity_zero_head_batched(self):
        source = "rel found() :- e(x, y), x != y."
        engine = LobsterEngine(source, provenance="unit", batched=True)
        db = engine.create_database()
        engine.add_batch_facts(db, "e", 0, [(1, 1)])
        engine.add_batch_facts(db, "e", 1, [(1, 2)])
        engine.run(db)
        by_sample = engine.query_by_sample(db, "found")
        assert 0 not in by_sample
        assert set(by_sample[1]) == {()}

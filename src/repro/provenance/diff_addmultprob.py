"""The ``diff-add-mult-prob`` semiring.

The differentiable counterpart of add-mult-prob implemented with dual
numbers: each tag is a probability plus a **dense gradient vector** over
the run's probabilistic input facts.  Memory is O(#tags × #inputs), which
is why the paper prefers diff-top-1-proofs for large workloads; we provide
both, and the HWF workload (small per-sample fact counts) uses this one.

The tag dtype depends on the number of input facts, so it is finalized in
:meth:`setup` — semirings are bound to a run before compilation anyway.
"""

from __future__ import annotations

import numpy as np

from .base import SATURATION_EPS, Provenance
from ..gpu.kernels import segment_reduce_sum


class DiffAddMultProbProvenance(Provenance):
    """Differentiable sum-of-products via dense dual numbers."""

    name = "diff-addmultprob"
    is_differentiable = True

    def __init__(self) -> None:
        super().__init__()
        self._dtype: np.dtype | None = None

    def setup(self, input_probs, exclusion_groups=None) -> None:
        super().setup(input_probs, exclusion_groups)
        width = max(self.n_inputs, 1)
        self._dtype = np.dtype([("prob", "f8"), ("grad", "f8", (width,))])

    def tag_dtype(self) -> np.dtype:
        if self._dtype is None:
            raise RuntimeError("diff-addmultprob requires setup() before use")
        return self._dtype

    def one_tags(self, n: int) -> np.ndarray:
        out = np.zeros(n, dtype=self.tag_dtype())
        out["prob"] = 1.0
        return out

    def input_tags(self, fact_ids: np.ndarray) -> np.ndarray:
        fact_ids = np.asarray(fact_ids, dtype=np.int64)
        out = self.one_tags(len(fact_ids))
        tagged = np.flatnonzero(fact_ids >= 0)
        out["prob"][tagged] = self.input_probs[fact_ids[tagged]]
        out["grad"][tagged, fact_ids[tagged]] = 1.0
        return out

    def otimes(self, a, b) -> np.ndarray:
        out = np.zeros(len(a), dtype=self.tag_dtype())
        out["prob"] = a["prob"] * b["prob"]
        # Product rule on the dual part.
        out["grad"] = a["grad"] * b["prob"][:, None] + b["grad"] * a["prob"][:, None]
        return out

    def oplus_reduce(self, tags, segment_ids, nseg) -> np.ndarray:
        out = np.zeros(nseg, dtype=self.tag_dtype())
        out["prob"] = segment_reduce_sum(tags["prob"], segment_ids, nseg)
        np.add.at(out["grad"], segment_ids, tags["grad"])
        return out

    def merge_existing(self, old, new):
        merged = old.copy()
        merged["prob"] = old["prob"] + new["prob"]
        merged["grad"] = old["grad"] + new["grad"]
        improved = new["prob"] > SATURATION_EPS
        return merged, improved

    def prob(self, tags) -> np.ndarray:
        return np.clip(tags["prob"].astype(np.float64), 0.0, 1.0)

    def is_absorbing_zero(self, tags) -> np.ndarray:
        return tags["prob"] <= 0.0

    def backward(self, tags, grad_out, grad_in) -> None:
        if len(tags) == 0:
            return
        # Clip gradient is zero outside [0, 1]; inside it is the dual part.
        inside = (tags["prob"] > 0.0) & (tags["prob"] < 1.0)
        scale = np.where(inside, grad_out, 0.0)
        contribution = scale @ tags["grad"]
        grad_in[: len(contribution)] += contribution[: len(grad_in)]

"""Abstract syntax tree for the Datalog surface language.

The surface language follows Scallop's (Fig. 3c): ``type`` declarations,
``rel`` rules with ``:-`` or ``=`` bodies, conjunction via ``,``/``and``,
disjunction via ``or``, comparisons, arithmetic in terms, and stratified
negation via ``not`` (an extension; see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# ---------------------------------------------------------------------------
# Terms


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Wildcard:
    pass


@dataclass(frozen=True)
class IntConst:
    value: int


@dataclass(frozen=True)
class FloatConst:
    value: float


@dataclass(frozen=True)
class StringConst:
    value: str


@dataclass(frozen=True)
class BinOp:
    """Arithmetic over terms: op in {+, -, *, /, //, %}."""

    op: str
    lhs: "Term"
    rhs: "Term"


@dataclass(frozen=True)
class Neg:
    operand: "Term"


Term = Union[Var, Wildcard, IntConst, FloatConst, StringConst, BinOp, Neg]

# ---------------------------------------------------------------------------
# Literals


@dataclass(frozen=True)
class Atom:
    predicate: str
    args: tuple[Term, ...]
    negated: bool = False


@dataclass(frozen=True)
class Comparison:
    """op in {==, !=, <, <=, >, >=}."""

    op: str
    lhs: Term
    rhs: Term


Literal = Union[Atom, Comparison]

# ---------------------------------------------------------------------------
# Body formulas (pre-desugaring)


@dataclass(frozen=True)
class Conj:
    items: tuple["Formula", ...]


@dataclass(frozen=True)
class Disj:
    items: tuple["Formula", ...]


Formula = Union[Atom, Comparison, Conj, Disj]

# ---------------------------------------------------------------------------
# Declarations, rules, program


@dataclass(frozen=True)
class TypeAlias:
    """``type Cell = u32``"""

    name: str
    base: str


@dataclass(frozen=True)
class RelationDecl:
    """``type edge(x: Cell, y: Cell)``"""

    name: str
    arg_names: tuple[str, ...]
    arg_types: tuple[str, ...]


@dataclass(frozen=True)
class Rule:
    head: Atom
    body: Formula


@dataclass(frozen=True)
class FactBlock:
    """``rel edge = {(0, 1), (1, 2)}`` — inline ground facts."""

    predicate: str
    facts: tuple[tuple[Term, ...], ...]


@dataclass(frozen=True)
class Query:
    predicate: str


@dataclass
class ProgramAst:
    type_aliases: list[TypeAlias] = field(default_factory=list)
    relation_decls: list[RelationDecl] = field(default_factory=list)
    rules: list[Rule] = field(default_factory=list)
    fact_blocks: list[FactBlock] = field(default_factory=list)
    queries: list[Query] = field(default_factory=list)

"""The byte-level storage seam durability writes through.

Every disk touch the recovery subsystem makes — WAL appends, atomic
checkpoint swaps, reads, listings, deletions — goes through one
:class:`LocalStorage` object.  That single indirection is what makes
the fault-injection harness possible: the tests substitute a
``CrashingStorage`` subclass (``tests/_faults.py``) that kills the
"process" at any scheduled byte boundary of any scheduled write, and
the recovery code cannot tell the difference.

Durability semantics modeled on POSIX:

* :meth:`LocalStorage.append` — bytes reach the file in order; a crash
  mid-append leaves a prefix (the torn tail the framing layer detects).
* :meth:`LocalStorage.write_atomic` — write-to-temp + fsync +
  ``os.replace``: after a crash the destination holds either the old
  bytes or the complete new bytes, never a mixture.  Leftover ``.tmp``
  files from a crash before the rename are ignored by listings.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["LocalStorage"]

_TMP_SUFFIX = ".tmp"


class LocalStorage:
    """Filesystem-backed storage rooted at one directory."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, name: str) -> Path:
        return self.root / name

    # -- writes --------------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        with open(self.path(name), "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def write_atomic(self, name: str, data: bytes) -> None:
        tmp = self.path(name + _TMP_SUFFIX)
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path(name))

    def remove(self, name: str) -> None:
        try:
            os.remove(self.path(name))
        except FileNotFoundError:
            pass

    # -- reads ---------------------------------------------------------

    def exists(self, name: str) -> bool:
        return self.path(name).exists()

    def read(self, name: str) -> bytes:
        return self.path(name).read_bytes()

    def list(self) -> list[str]:
        """Durable file names (leftover ``.tmp`` files are invisible —
        they are the debris of a crash before an atomic rename)."""
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_file() and not entry.name.endswith(_TMP_SUFFIX)
        )

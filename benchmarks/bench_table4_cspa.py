"""Table 4: CSPA runtimes — Lobster vs FVLog on httpd/linux/postgres.

The paper reports the two engines approximately matched, with Lobster
holding a modest geometric-mean advantage (1.27x) attributed to APM-level
optimizations.
"""

from __future__ import annotations

import pytest

from repro import LobsterEngine
from repro.baselines import FVLogEngine
from repro.workloads.analytics import CSPA, cspa_instance

from repro.perf.stats import geomean_ratio

from _harness import record, print_table, report, speedup, timed

SUITE = "table4_cspa"

SUBJECTS = ["httpd", "linux", "postgres"]


def load(engine, subject):
    facts = cspa_instance(subject)
    db = engine.create_database()
    db.add_facts("assign", facts["assign"])
    db.add_facts("dereference", facts["dereference"])
    return db


@pytest.fixture(scope="module")
def results():
    rows = {}
    for subject in SUBJECTS:
        # Fresh engine + database per trial, built untimed — a
        # fixpointed db re-runs warm.
        def setup_lobster():
            lobster = LobsterEngine(CSPA, provenance="unit")
            return lobster, load(lobster, subject)

        def setup_fvlog():
            fvlog = FVLogEngine(CSPA)
            return fvlog, load(fvlog, subject)

        run = lambda state: state[0].run(state[1])
        rows[subject] = (timed(run, setup=setup_lobster), timed(run, setup=setup_fvlog))
        lobster_m, fvlog_m = rows[subject]
        report(SUITE, f"CSPA/{subject}/lobster", lobster_m, engine="lobster")
        report(SUITE, f"CSPA/{subject}/fvlog", fvlog_m, engine="fvlog")
    return rows


def test_table4_cspa(results, benchmark):
    def check():
        table = [
            [subject, lobster.label, fvlog.label, speedup(fvlog, lobster)]
            for subject, (lobster, fvlog) in results.items()
        ]
        print_table(
            "Table 4 — CSPA runtime",
            ["dataset", "lobster", "fvlog", "lobster adv."],
            table,
        )
        # Shape: approximately matched with a Lobster geomean edge
        # (typed geomean with propagated trial noise; an unmeasurable
        # subject fails loudly instead of being skipped).
        ratios = [
            speedup(fvlog, lobster) for lobster, fvlog in results.values()
        ]
        assert all(r.ok for r in ratios), [r.status for r in ratios]
        geomean = geomean_ratio(ratios)
        print(
            f"CSPA geomean Lobster advantage: {geomean.label()} (paper: 1.27x)"
        )
        assert geomean.value > 0.9


    record(benchmark, check)

def test_table4_benchmark_cspa_lobster(benchmark):
    def run():
        engine = LobsterEngine(CSPA, provenance="unit")
        db = load(engine, "httpd")
        engine.run(db)

    benchmark.pedantic(run, rounds=2, iterations=1)

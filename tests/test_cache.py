"""The compile-once program cache: identity, keying, and reuse."""

from __future__ import annotations

import pytest

from repro import LobsterEngine, OptimizationConfig, ProgramCache
from repro.runtime.cache import cache_key, compile_source, normalize_source

TC = "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."


class TestKeying:
    def test_identical_sources_share_a_key(self):
        assert cache_key(TC, "unit", OptimizationConfig(), False) == cache_key(
            TC, "unit", OptimizationConfig(), False
        )

    def test_normalization_ignores_layout_and_comments(self):
        noisy = "\n  // transitive closure\n\n   " + TC + "   \n\n"
        assert normalize_source(noisy) == normalize_source(TC)
        assert cache_key(noisy, "unit", OptimizationConfig(), False) == cache_key(
            TC, "unit", OptimizationConfig(), False
        )

    def test_distinct_programs_distinct_keys(self):
        other = "rel p(x) :- q(x)."
        assert cache_key(TC, "unit", OptimizationConfig(), False) != cache_key(
            other, "unit", OptimizationConfig(), False
        )

    def test_provenance_and_config_and_batched_partition_keys(self):
        base = cache_key(TC, "unit", OptimizationConfig(), False)
        assert base != cache_key(TC, "minmaxprob", OptimizationConfig(), False)
        assert base != cache_key(TC, "unit", OptimizationConfig.none(), False)
        assert base != cache_key(TC, "unit", OptimizationConfig(), True)

    def test_inner_whitespace_is_preserved(self):
        # String literals must never make two distinct programs collide.
        a = 'rel name = {("a b",)}\nrel out(x) :- name(x).'
        b = 'rel name = {("a  b",)}\nrel out(x) :- name(x).'
        assert normalize_source(a) != normalize_source(b)


class TestProgramCache:
    def test_hit_returns_identical_artifact(self):
        cache = ProgramCache()
        first, hit1 = cache.get_or_compile(TC, "unit", OptimizationConfig(), False)
        second, hit2 = cache.get_or_compile(TC, "unit", OptimizationConfig(), False)
        assert (hit1, hit2) == (False, True)
        assert second is first  # same object: zero recompilation
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_miss_on_different_program(self):
        cache = ProgramCache()
        cache.get_or_compile(TC, "unit", OptimizationConfig(), False)
        _, hit = cache.get_or_compile("rel p(x) :- q(x).", "unit", OptimizationConfig(), False)
        assert not hit
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = ProgramCache(capacity=1)
        cache.get_or_compile(TC, "unit", OptimizationConfig(), False)
        cache.get_or_compile("rel p(x) :- q(x).", "unit", OptimizationConfig(), False)
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        # The first program was evicted: fetching it again is a miss.
        _, hit = cache.get_or_compile(TC, "unit", OptimizationConfig(), False)
        assert not hit

    def test_clear(self):
        cache = ProgramCache()
        cache.get_or_compile(TC, "unit", OptimizationConfig(), False)
        cache.clear()
        assert len(cache) == 0 and cache.stats.lookups == 0


class TestEngineIntegration:
    def test_engines_share_compiled_program(self):
        cache = ProgramCache()
        first = LobsterEngine(TC, cache=cache)
        second = LobsterEngine(TC, cache=cache)
        assert not first.cache_hit and second.cache_hit
        assert second.apm is first.apm
        assert second.resolved is first.resolved
        assert second.compile_seconds == 0.0
        assert first.compile_seconds > 0.0

    def test_cache_false_bypasses(self):
        cache = ProgramCache()
        LobsterEngine(TC, cache=cache)
        bypass = LobsterEngine(TC, cache=False)
        assert not bypass.cache_hit
        assert cache.stats.lookups == 1  # bypass never touched the cache

    def test_cached_engines_compute_identical_results(self):
        cache = ProgramCache()
        edges = [(0, 1), (1, 2), (2, 3)]
        rows = []
        for _ in range(3):
            engine = LobsterEngine(TC, cache=cache)
            db = engine.create_database()
            db.add_facts("edge", edges)
            result = engine.run(db)
            rows.append(sorted(db.result("path").rows()))
            assert result.program_from_cache == engine.cache_hit
        assert rows[0] == rows[1] == rows[2]
        assert cache.stats.misses == 1 and cache.stats.hits == 2

    def test_proof_capacity_does_not_affect_compilation(self):
        # Compilation is provenance-independent; same source + provenance
        # name share an artifact even with different runtime kwargs.
        cache = ProgramCache()
        a = LobsterEngine(TC, provenance="prob-top-1-proofs", proof_capacity=8, cache=cache)
        b = LobsterEngine(TC, provenance="prob-top-1-proofs", proof_capacity=64, cache=cache)
        assert b.cache_hit and b.apm is a.apm
        # ... but each engine's databases get their own provenance config.
        assert a.create_database().provenance.proof_capacity == 8
        assert b.create_database().provenance.proof_capacity == 64

    def test_ablation_arms_do_not_share_artifacts(self):
        cache = ProgramCache()
        full = LobsterEngine(TC, cache=cache)
        none = LobsterEngine(TC, optimizations=OptimizationConfig.none(), cache=cache)
        assert not none.cache_hit
        assert none.apm is not full.apm

    def test_compile_errors_are_not_cached(self):
        cache = ProgramCache()
        with pytest.raises(Exception):
            LobsterEngine("rel broken(x :- q(x).", cache=cache)
        assert len(cache) == 0


class TestCompileSource:
    def test_artifact_reports_compile_time(self):
        compiled = compile_source(TC, "unit", OptimizationConfig(), False)
        assert compiled.compile_seconds > 0.0
        assert compiled.apm.instruction_count() > 0
        assert not compiled.apm.has_negation

    def test_negation_flag(self):
        compiled = compile_source(
            "rel ok(x) :- v(x), not bad(x).", "unit", OptimizationConfig(), False
        )
        assert compiled.apm.has_negation

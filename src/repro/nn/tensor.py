"""A minimal reverse-mode autodiff tensor (the PyTorch stand-in).

The paper trains neural components with PyTorch; this repo substitutes a
small numpy tape-based autodiff sufficient for the perception models the
workloads need (MLPs, logistic heads, softmax classifiers).  Only the
symbolic side is under test, so this stays deliberately small — but it is
a real reverse-mode implementation, not a mock: gradients flow end to end
through the Datalog engine via
:class:`repro.nn.bridge.NeurosymbolicFunction`.
"""

from __future__ import annotations

import numpy as np


class Tensor:
    """An n-d array with a gradient tape."""

    def __init__(self, data, requires_grad: bool = False, _parents=(), _backward=None):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad
        self.grad: np.ndarray | None = None
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse-mode sweep from this tensor."""
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: Tensor) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad, dtype=np.float64)}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            for parent, parent_grad in node._backward(node_grad):
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + parent_grad
                else:
                    grads[id(parent)] = parent_grad

    # -- operators ---------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = _wrap(other)
        out = Tensor(
            self.data + other.data,
            _parents=(self, other),
            _backward=lambda g: [
                (self, _unbroadcast(g, self.data.shape)),
                (other, _unbroadcast(g, other.data.shape)),
            ],
        )
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor(-self.data, _parents=(self,), _backward=lambda g: [(self, -g)])

    def __sub__(self, other) -> "Tensor":
        return self + (-_wrap(other))

    def __rsub__(self, other) -> "Tensor":
        return _wrap(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = _wrap(other)
        return Tensor(
            self.data * other.data,
            _parents=(self, other),
            _backward=lambda g: [
                (self, _unbroadcast(g * other.data, self.data.shape)),
                (other, _unbroadcast(g * self.data, other.data.shape)),
            ],
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _wrap(other)
        return Tensor(
            self.data / other.data,
            _parents=(self, other),
            _backward=lambda g: [
                (self, _unbroadcast(g / other.data, self.data.shape)),
                (
                    other,
                    _unbroadcast(-g * self.data / other.data**2, other.data.shape),
                ),
            ],
        )

    def matmul(self, other: "Tensor") -> "Tensor":
        return Tensor(
            self.data @ other.data,
            _parents=(self, other),
            _backward=lambda g: [
                (self, g @ other.data.swapaxes(-1, -2)),
                (other, self.data.swapaxes(-1, -2) @ g),
            ],
        )

    __matmul__ = matmul

    def sum(self, axis=None) -> "Tensor":
        def backward(g):
            if axis is None:
                return [(self, np.broadcast_to(g, self.data.shape).copy())]
            expanded = np.expand_dims(g, axis)
            return [(self, np.broadcast_to(expanded, self.data.shape).copy())]

        return Tensor(self.data.sum(axis=axis), _parents=(self,), _backward=backward)

    def mean(self) -> "Tensor":
        n = self.data.size
        return self.sum() * (1.0 / n)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor(
            self.data * mask,
            _parents=(self,),
            _backward=lambda g: [(self, g * mask)],
        )

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))
        return Tensor(
            value,
            _parents=(self,),
            _backward=lambda g: [(self, g * value * (1.0 - value))],
        )

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        return Tensor(
            value,
            _parents=(self,),
            _backward=lambda g: [(self, g * (1.0 - value**2))],
        )

    def log(self) -> "Tensor":
        return Tensor(
            np.log(np.clip(self.data, 1e-12, None)),
            _parents=(self,),
            _backward=lambda g: [(self, g / np.clip(self.data, 1e-12, None))],
        )

    def exp(self) -> "Tensor":
        value = np.exp(np.clip(self.data, -60, 60))
        return Tensor(value, _parents=(self,), _backward=lambda g: [(self, g * value)])

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        value = exp / exp.sum(axis=axis, keepdims=True)

        def backward(g):
            dot = (g * value).sum(axis=axis, keepdims=True)
            return [(self, value * (g - dot))]

        return Tensor(value, _parents=(self,), _backward=backward)

    def reshape(self, *shape) -> "Tensor":
        return Tensor(
            self.data.reshape(*shape),
            _parents=(self,),
            _backward=lambda g: [(self, g.reshape(self.data.shape))],
        )

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        indices = np.asarray(indices, dtype=np.int64)

        def backward(g):
            grad = np.zeros_like(self.data)
            np.add.at(grad, indices, g)
            return [(self, grad)]

        return Tensor(self.data[indices], _parents=(self,), _backward=backward)


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum a gradient back down to the shape it was broadcast from."""
    grad = np.asarray(grad, dtype=np.float64)
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad

"""APM compiler, instruction, and scheduler structure tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LobsterEngine
from repro.apm import instructions as I
from repro.apm.compiler import compile_ram
from repro.apm.schedule import plan_transfers, stratum_inputs, stratum_outputs
from repro.datalog import compile_source
from repro.ram import compile_program

TC = "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."


def compile_tc():
    return compile_ram(compile_program(compile_source(TC)))


class TestCompilerStructure:
    def test_semi_naive_variants(self):
        apm = compile_tc()
        stratum = apm.strata[0]
        base_rule, recursive_rule = stratum.rules
        assert base_rule.edb_only and len(base_rule.variants) == 1
        assert not recursive_rule.edb_only
        # One variant per recursive atom; TC's recursive rule has one.
        assert len(recursive_rule.variants) == 1
        loads = [
            instr
            for instr in recursive_rule.variants[0].instructions
            if isinstance(instr, I.Load)
        ]
        partitions = sorted(load.partition for load in loads)
        assert partitions == ["full", "recent"]

    def test_every_variant_ends_in_store(self):
        apm = compile_tc()
        for stratum in apm.strata:
            for rule in stratum.rules:
                for variant in rule.variants:
                    assert isinstance(variant.instructions[-1], I.StoreDelta)
                    assert variant.instructions[-1].predicate == rule.target

    def test_ssa_registers_never_rewritten(self):
        apm = compile_tc()
        from repro.apm.optimizer import _writes

        for stratum in apm.strata:
            for rule in stratum.rules:
                for variant in rule.variants:
                    written: set[str] = set()
                    for instr in variant.instructions:
                        for reg in _writes(instr):
                            assert reg not in written, reg
                            written.add(reg)

    def test_static_key_on_edb_build_side(self):
        apm = compile_tc()
        recursive = apm.strata[0].rules[1]
        builds = [
            instr
            for instr in recursive.variants[0].instructions
            if isinstance(instr, I.Build)
        ]
        assert len(builds) == 1
        assert builds[0].static_key is not None  # built over the EDB edge

    def test_no_static_key_for_recursive_build(self):
        # Both join inputs recursive -> no side is iteration-invariant.
        apm = compile_ram(
            compile_program(
                compile_source("rel p(x, y) :- e(x, y). rel p(x, z) :- p(x, y), p(y, z).")
            )
        )
        recursive = apm.strata[0].rules[1]
        for variant in recursive.variants:
            for instr in variant.instructions:
                if isinstance(instr, I.Build):
                    assert instr.static_key is None

    def test_score_counts_recursive_joins(self):
        apm = compile_tc()
        assert apm.strata[0].score == 1

    def test_instruction_count(self):
        apm = compile_tc()
        assert apm.instruction_count() > 5


class TestSchedule:
    SRC = """
    rel tc(x, y) :- e(x, y) or (tc(x, z) and e(z, y)).
    rel mutual(x, y) :- tc(x, y), tc(y, x).
    rel labelled(x) :- mutual(x, y), tag(y).
    query labelled
    """

    def test_inputs_outputs(self):
        apm = compile_ram(compile_program(compile_source(self.SRC)))
        assert "e" in stratum_inputs(apm, 0)
        assert stratum_outputs(apm, 0) == {"tc"}

    def test_naive_plan_transfers_every_stratum(self):
        apm = compile_ram(compile_program(compile_source(self.SRC)))
        plan = plan_transfers(apm, optimized=False)
        assert set(plan) == {0, 1, 2}

    def test_optimized_plan_single_window(self):
        apm = compile_ram(compile_program(compile_source(self.SRC)))
        plan = plan_transfers(apm, optimized=True)
        ins = [spec[0] for spec in plan.values() if spec[0]]
        outs = [spec[1] for spec in plan.values() if spec[1]]
        assert len(ins) == 1 and len(outs) >= 1

    def test_empty_program(self):
        apm = compile_ram(compile_program(compile_source("rel p(x) :- q(x).")))
        assert plan_transfers(apm, True)


class TestInterpreterInstructionLevel:
    def test_profile_counts_instructions(self):
        engine = LobsterEngine(TC, provenance="unit")
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)])
        result = engine.run(db)
        counts = result.profile.instruction_counts
        assert counts.get("Load", 0) > 0
        assert counts.get("Probe", 0) > 0
        assert counts.get("StoreDelta", 0) > 0

    def test_max_iterations_guard(self):
        from repro.errors import ExecutionError

        engine = LobsterEngine(
            "rel count(x + 1) :- count(x), limit(y), x < y.",
            provenance="unit",
            max_iterations=5,
        )
        db = engine.create_database()
        db.add_facts("count", [(0,)])
        db.add_facts("limit", [(1000,)])
        with pytest.raises(ExecutionError, match="exceeded"):
            engine.run(db)

    def test_counting_to_fixpoint(self):
        engine = LobsterEngine(
            "rel count(x + 1) :- count(x), limit(y), x < y.", provenance="unit"
        )
        db = engine.create_database()
        db.add_facts("count", [(0,)])
        db.add_facts("limit", [(10,)])
        engine.run(db)
        assert sorted(db.result("count").rows()) == [(i,) for i in range(11)]

"""Every example script must run to completion (they are the docs)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)

#: Scripts whose full run is too slow for the unit-test budget run with a
#: reduced workload via environment knobs... none currently need it; the
#: slowest (pathfinder_training) is bounded below instead.
TIMEOUT_S = 600


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=TIMEOUT_S,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor; we ship six

"""Tokenizer for the Datalog surface language."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParseError

KEYWORDS = {"type", "rel", "query", "and", "or", "not"}

# Multi-character operators first so maximal munch works.
SYMBOLS = [
    ":-",
    "!=",
    "==",
    "<=",
    ">=",
    "(",
    ")",
    "{",
    "}",
    ",",
    ".",
    ":",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "~",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "ident", "keyword", "int", "float", "string", "symbol", "eof"
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}:{self.value!r}"


def tokenize(source: str) -> list[Token]:
    """Convert source text into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)

    def column() -> int:
        return i - line_start + 1

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "/" and source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise ParseError("unterminated block comment", line, column())
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            col = column()
            while i < n and source[i].isdigit():
                i += 1
            is_float = False
            if i < n and source[i] == "." and i + 1 < n and source[i + 1].isdigit():
                is_float = True
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "eE":
                is_float = True
                i += 1
                if i < n and source[i] in "+-":
                    i += 1
                while i < n and source[i].isdigit():
                    i += 1
            kind = "float" if is_float else "int"
            tokens.append(Token(kind, source[start:i], line, col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            col = column()
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, col))
            continue
        if ch == '"':
            col = column()
            end = source.find('"', i + 1)
            if end == -1:
                raise ParseError("unterminated string literal", line, col)
            tokens.append(Token("string", source[i + 1 : end], line, col))
            i = end + 1
            continue
        matched = False
        for symbol in SYMBOLS:
            if source.startswith(symbol, i):
                # A lone "/" inside "//" comment handling already happened;
                # here "//" is integer division.
                tokens.append(Token("symbol", symbol, line, column()))
                i += len(symbol)
                matched = True
                break
        if not matched:
            raise ParseError(f"unexpected character {ch!r}", line, column())

    tokens.append(Token("eof", "", line, column()))
    return tokens

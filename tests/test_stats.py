"""The stats subsystem: sketches, incremental maintenance, estimators.

The load-bearing property (hypothesis-checked): statistics maintained
*incrementally* through any interleaving of ``StoredRelation.advance``
and retraction paths are exactly equal — sketch state included — to
statistics recomputed from the final ``full`` table.  Everything the
planner reads is therefore independent of mutation history.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.provenance.registry import create as create_provenance
from repro.runtime.relation import StoredRelation
from repro.runtime.table import Table
from repro.stats import CostModel, RelationStats, StatsCatalog
from repro.stats.estimate import (
    Binding,
    VarStats,
    atom_binding,
    join_bindings,
)
from repro.stats.relation_stats import ColumnStats, log2_bucket
from repro.stats.sketches import CountMinSketch, KmvSketch

INT2 = (np.dtype(np.int64), np.dtype(np.int64))


def make_relation(dtypes=INT2) -> StoredRelation:
    return StoredRelation("r", dtypes, create_provenance("unit"))


def unit_table(rows: list[tuple], relation: StoredRelation) -> Table:
    prov = relation.provenance
    tags = prov.input_tags(np.full(len(rows), -1, dtype=np.int64))
    return Table.from_rows(rows, relation.dtypes, tags)


class TestSketches:
    def test_kmv_exact_below_k(self):
        sketch = KmvSketch(k=16)
        sketch.add(np.arange(10, dtype=np.int64))
        sketch.add(np.arange(5, dtype=np.int64))  # duplicates
        assert sketch.estimate() == 10.0

    def test_kmv_merge_equals_recompute(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 10_000, size=5_000)
        split = KmvSketch()
        for chunk in np.array_split(values, 7):
            split.add(chunk)
        whole = KmvSketch()
        whole.add(values)
        assert split == whole

    def test_kmv_estimate_bounded_on_uniform(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 50_000, size=30_000)
        sketch = KmvSketch()
        sketch.add(values)
        true = len(np.unique(values))
        assert true / 2 <= sketch.estimate() <= true * 2

    def test_cms_is_linear(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 100, size=2_000)
        split = CountMinSketch()
        for chunk in np.array_split(values, 5):
            split.add(chunk)
        whole = CountMinSketch()
        whole.add(values)
        assert split == whole
        # Signed removal inverts exactly.
        split.add(values[:500], sign=-1)
        partial = CountMinSketch()
        partial.add(values[500:])
        assert split == partial

    def test_cms_point_query_never_undercounts(self):
        values = np.array([7] * 40 + [1, 2, 3] * 5, dtype=np.int64)
        sketch = CountMinSketch()
        sketch.add(values)
        assert sketch.count(7) >= 40
        assert sketch.max_frequency() >= 40

    def test_cms_inner_product_sees_skew(self):
        # One shared heavy hitter dominates the true join size; the
        # distinct-count formula would miss it by orders of magnitude.
        left = np.array([5] * 900 + list(range(100)), dtype=np.int64)
        right = np.array([5] * 900 + list(range(200, 300)), dtype=np.int64)
        l, r = CountMinSketch(), CountMinSketch()
        l.add(left)
        r.add(right)
        true = 900 * 900
        estimate = l.inner_product(r)
        assert estimate >= true  # never undercounts
        assert estimate <= true * 1.5  # and stays in the ballpark


rows_strategy = st.lists(
    st.tuples(st.integers(0, 50), st.integers(0, 50)), min_size=0, max_size=60
)


class TestIncrementalMaintenance:
    @settings(max_examples=60, deadline=None)
    @given(batches=st.lists(rows_strategy, min_size=1, max_size=6))
    def test_advances_match_recompute(self, batches):
        rel = make_relation()
        rel.enable_stats()
        for rows in batches:
            if rows:
                rel.advance(unit_table(rows, rel))
        assert rel.stats == RelationStats.from_table(rel.full)
        assert rel.stats.row_count == rel.full.n_rows

    @settings(max_examples=60, deadline=None)
    @given(
        batches=st.lists(rows_strategy, min_size=1, max_size=4),
        removals=st.lists(st.integers(0, 52), min_size=0, max_size=20),
        data=st.data(),
    )
    def test_advances_and_retractions_match_recompute(
        self, batches, removals, data
    ):
        """Interleaved advance / remove_rows sequences always leave the
        incrementally maintained stats equal to a from-scratch build."""
        rel = make_relation()
        rel.enable_stats()
        for rows in batches:
            if rows:
                rel.advance(unit_table(rows, rel))
            if rel.full.n_rows and removals:
                mask = np.zeros(rel.full.n_rows, dtype=bool)
                doomed = data.draw(
                    st.sets(
                        st.integers(0, rel.full.n_rows - 1),
                        max_size=min(len(removals), rel.full.n_rows),
                    )
                )
                mask[list(doomed)] = True
                rel.remove_rows(mask)
        assert rel.stats == RelationStats.from_table(rel.full)

    def test_set_facts_resets_stats(self):
        rel = make_relation()
        rel.enable_stats()
        rel.advance(unit_table([(1, 2), (3, 4)], rel))
        rel.set_facts(unit_table([(9, 9)], rel))
        assert rel.stats == RelationStats.from_table(rel.full)
        assert rel.stats.row_count == 1

    def test_stats_opt_in(self):
        rel = make_relation()
        rel.advance(unit_table([(1, 2)], rel))
        assert rel.stats is None  # hot path untouched until enabled
        live = rel.enable_stats()
        assert live.row_count == 1
        rel.advance(unit_table([(5, 6)], rel))
        assert live.row_count == 2  # same object observes later advances

    def test_arity_zero_relation(self):
        rel = make_relation(dtypes=())
        rel.enable_stats()
        rel.advance(unit_table([(), (), ()], rel))
        assert rel.stats.row_count == 1  # dedup to one logical row
        assert rel.stats == RelationStats.from_table(rel.full)


class TestEstimator:
    def test_uniform_join_estimate_bounded(self):
        """On uniform independent data the classic estimate lands within
        a small constant factor of the true equi-join size."""
        rng = np.random.default_rng(3)
        n, domain = 4_000, 500
        left_rows = [
            (int(a), int(b)) for a, b in rng.integers(0, domain, size=(n, 2))
        ]
        right_rows = [
            (int(a), int(b)) for a, b in rng.integers(0, domain, size=(n, 2))
        ]
        rel_l, rel_r = make_relation(), make_relation()
        rel_l.advance(unit_table(left_rows, rel_l))
        rel_r.advance(unit_table(right_rows, rel_r))
        catalog = StatsCatalog(
            {"l": rel_l.enable_stats(), "r": rel_r.enable_stats()}
        )
        left = atom_binding("l", [("var", "x"), ("var", "y")], catalog)
        right = atom_binding("r", [("var", "y"), ("var", "z")], catalog)
        joined = join_bindings(left, right, ["y"])

        l_col = np.array([row[1] for row in rel_l.full.rows()])
        r_col = np.array([row[0] for row in rel_r.full.rows()])
        true = int(
            sum(
                np.sum(l_col == v) * np.sum(r_col == v)
                for v in np.unique(np.concatenate([l_col, r_col]))
            )
        )
        assert true / 3 <= joined.rows <= true * 3

    def test_constant_selectivity_uses_frequency(self):
        rows = [(7, i) for i in range(90)] + [(i + 100, i) for i in range(10)]
        rel = make_relation()
        rel.advance(unit_table(rows, rel))
        catalog = StatsCatalog({"r": rel.enable_stats()})
        heavy = atom_binding("r", [("const", 7), ("var", "y")], catalog)
        light = atom_binding("r", [("const", 105), ("var", "y")], catalog)
        assert heavy.rows > 10 * light.rows  # skew visible to the planner

    def test_int_constant_probes_float_column(self):
        """An integer literal against a float column must hash through
        the column's dtype: 5 and 5.0 are the same value at runtime."""
        rows = [(float(5), i * 0.5) for i in range(100)]
        rel = make_relation(dtypes=(np.dtype(np.float64), np.dtype(np.float64)))
        rel.advance(unit_table(rows, rel))
        catalog = StatsCatalog({"r": rel.enable_stats()})
        from repro.stats.estimate import eq_const_selectivity

        stats = catalog.get("r")
        assert eq_const_selectivity(stats, 0, 5) == pytest.approx(1.0)
        # A fractional constant can never match an int column.
        int_rel = make_relation()
        int_rel.advance(unit_table([(5, i) for i in range(10)], int_rel))
        int_stats = StatsCatalog({"r": int_rel.enable_stats()}).get("r")
        assert eq_const_selectivity(int_stats, 0, 5.5) < 0.5
        assert eq_const_selectivity(int_stats, 0, 5.0) == pytest.approx(1.0)

    def test_unknown_relation_uses_default(self):
        binding = atom_binding("ghost", [("var", "x")], StatsCatalog({}))
        assert binding.rows > 1.0

    def test_cost_model_prices_exchange(self):
        single = CostModel.for_shards(1)
        sharded = CostModel.for_shards(4)
        assert single.exchange_cost(10_000) == 0.0
        assert sharded.exchange_cost(10_000) > 0.0
        # More shards -> more cross-shard copies per derived row.
        assert CostModel.for_shards(8).exchange_cost(10_000) > sharded.exchange_cost(
            10_000
        )

    def test_cross_product_estimate(self):
        a = Binding(10.0, {"x": VarStats(10.0)})
        b = Binding(20.0, {"y": VarStats(20.0)})
        assert join_bindings(a, b, []).rows == 200.0


class TestCatalog:
    def test_bucket_key_stable_and_shape_sensitive(self):
        rel = make_relation()
        rel.advance(unit_table([(i, i % 5) for i in range(100)], rel))
        catalog = StatsCatalog({"edge": rel.enable_stats()})
        key = catalog.bucket_key()
        assert key == catalog.bucket_key()  # deterministic
        # Same order of magnitude -> same bucket.
        rel.advance(unit_table([(1000, 1)], rel))
        assert catalog.bucket_key() == key
        # An order-of-magnitude jump -> a different bucket.
        rel.advance(unit_table([(i + 2000, i) for i in range(900)], rel))
        assert catalog.bucket_key() != key

    def test_log2_bucket(self):
        assert log2_bucket(0) == 0
        assert log2_bucket(1) == 1
        assert log2_bucket(600) == log2_bucket(1000)
        assert log2_bucket(1000) != log2_bucket(3000)

    def test_from_database_enables_stats(self):
        from repro import LobsterEngine

        engine = LobsterEngine("rel p(x) :- q(x).")
        db = engine.create_database()
        db.add_facts("q", [(1,), (2,)])
        db.finalize()
        catalog = db.stats_catalog()
        assert catalog.get("q").row_count == 2
        assert db.relations["q"].stats is catalog.get("q")

    def test_empty_catalog_is_falsy(self):
        assert not StatsCatalog({})
        rel = make_relation()
        assert not StatsCatalog({"r": rel.enable_stats()})


class TestColumnStats:
    def test_min_max_and_skew(self):
        stats = ColumnStats.from_column(np.array([5] * 95 + list(range(5))))
        assert stats.min == 0.0 and stats.max == 5.0
        assert stats.skew() >= 0.9

    def test_float_column(self):
        stats = ColumnStats.from_column(np.array([0.5, -1.5, 2.5]))
        assert stats.min == -1.5 and stats.max == 2.5
        assert stats.n_distinct == pytest.approx(3.0)

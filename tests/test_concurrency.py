"""Concurrency hardening: the program cache and sessions under threads.

The serving layer's contract is that a pool of worker threads can share
one :class:`ProgramCache` (compile-once) and one :class:`LobsterSession`
(submit/lookup) without corruption: every lookup is a hit or a miss,
LRU never overshoots capacity, tickets are unique, and every submitted
query gets exactly one result.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import (
    DevicePool,
    LobsterEngine,
    LobsterSession,
    OptimizationConfig,
    ProgramCache,
)
from _helpers import TC_PROGRAM, random_digraph

N_THREADS = 8


def _program(index: int) -> str:
    """A family of distinct (non-colliding) programs."""
    return f"rel out{index}(x, y) :- edge(x, y).\nquery out{index}\n"


class TestProgramCacheUnderThreads:
    def test_hammer_lru_hits_and_evictions(self):
        """Many threads, few slots: lookups race with evictions and the
        cache must stay consistent (no exceptions, stats add up, size
        bounded by capacity)."""
        capacity = 4
        cache = ProgramCache(capacity=capacity)
        config = OptimizationConfig()
        n_programs = 12
        rounds = 30
        errors: list[Exception] = []
        barrier = threading.Barrier(N_THREADS)

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            barrier.wait()
            try:
                for _ in range(rounds):
                    index = int(rng.integers(0, n_programs))
                    compiled, _ = cache.get_or_compile(
                        _program(index), "unit", config, False
                    )
                    # The artifact must always match the requested program.
                    assert f"out{index}" in compiled.resolved.schemas
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(cache) <= capacity
        stats = cache.stats
        assert stats.lookups == N_THREADS * rounds
        assert stats.hits + stats.misses == stats.lookups
        # With 12 programs over 4 slots both hits and evictions must occur.
        assert stats.hits > 0
        assert stats.evictions > 0

    def test_concurrent_same_key_yields_one_retained_artifact(self):
        cache = ProgramCache(capacity=8)
        config = OptimizationConfig()
        results = []
        barrier = threading.Barrier(N_THREADS)

        def worker() -> None:
            barrier.wait()
            compiled, _ = cache.get_or_compile(_program(0), "unit", config, False)
            results.append(compiled)

        with ThreadPoolExecutor(N_THREADS) as pool:
            for _ in range(N_THREADS):
                pool.submit(worker)
        assert len(results) == N_THREADS
        # Whatever raced, every later lookup serves one retained artifact.
        retained, hit = cache.get_or_compile(_program(0), "unit", config, False)
        assert hit
        assert len(cache) == 1
        assert retained in results


class TestSessionUnderThreads:
    def _datasets(self, count: int):
        rng = np.random.default_rng(23)
        return [random_digraph(rng, 18, 45) for _ in range(count)]

    def test_threaded_submit_then_drain(self):
        """Worker threads race submit(); tickets stay unique and every
        query runs exactly once with the right answer."""
        engine = LobsterEngine(TC_PROGRAM, provenance="unit")
        session = LobsterSession(engine)
        datasets = self._datasets(24)
        tickets: dict[int, int] = {}
        lock = threading.Lock()

        def submit(index: int) -> None:
            db = session.create_database()
            db.add_facts("edge", datasets[index])
            ticket = session.submit(db)
            with lock:
                tickets[index] = ticket

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(submit, range(len(datasets))))

        assert len(set(tickets.values())) == len(datasets)  # unique tickets
        report = session.run_all()
        assert len(report.results) == len(datasets)

        reference = LobsterEngine(TC_PROGRAM, provenance="unit")
        for index, ticket in tickets.items():
            db = reference.create_database()
            db.add_facts("edge", datasets[index])
            reference.run(db)
            assert (
                session.database(ticket).result("path").rows()
                == db.result("path").rows()
            )

    def test_threaded_submit_with_pool_drain(self):
        engine = LobsterEngine(TC_PROGRAM, provenance="unit")
        session = LobsterSession(engine, pool=DevicePool(3))
        datasets = self._datasets(9)

        def submit(index: int) -> int:
            db = session.create_database()
            db.add_facts("edge", datasets[index])
            return session.submit(db)

        with ThreadPoolExecutor(N_THREADS) as pool:
            tickets = list(pool.map(submit, range(len(datasets))))
        report = session.run_all()
        assert len(report.results) == len(datasets)
        assert report.pool_size == 3
        for ticket in tickets:
            assert session.result(ticket) is not None

    def test_concurrent_drains_serialize(self):
        """Two threads calling run_all() concurrently must not run the
        same query twice (the drain lock serializes them)."""
        engine = LobsterEngine(TC_PROGRAM, provenance="unit")
        session = LobsterSession(engine)
        for edges in self._datasets(8):
            db = session.create_database()
            db.add_facts("edge", edges)
            session.submit(db)

        reports = []
        lock = threading.Lock()

        def drain() -> None:
            report = session.run_all()
            with lock:
                reports.append(report)

        threads = [threading.Thread(target=drain) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = sum(len(report.results) for report in reports)
        assert total == 8  # each query drained exactly once
        assert not session.pending

    def test_sessions_sharing_one_engine_serialize_drains(self):
        """Two sessions over the same engine share its device; their
        drains must serialize on the engine's lock, keeping every
        per-query profile delta consistent (never negative)."""
        engine = LobsterEngine(TC_PROGRAM, provenance="unit")
        sessions = [LobsterSession(engine) for _ in range(2)]
        for session in sessions:
            for edges in self._datasets(6):
                db = session.create_database()
                db.add_facts("edge", edges)
                session.submit(db)

        reports = {}

        def drain(index: int) -> None:
            reports[index] = sessions[index].run_all()

        threads = [
            threading.Thread(target=drain, args=(index,)) for index in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for report in reports.values():
            assert len(report.results) == 6
            for result in report.results:
                assert result.profile.kernel_launches > 0
                assert result.wall_seconds >= 0

"""The Lobster engine facade — the library's main entry point.

Pipeline: Datalog source -> (parse, resolve, stratify) -> RAM -> APM ->
execution on the virtual device.  Existing Datalog-based neurosymbolic
programs run without modification; the reasoning mode is chosen by naming
a provenance semiring, exactly as in the paper.

Compilation happens **once per program**: the front-end artifact is served
from a content-addressed :class:`~repro.runtime.cache.ProgramCache`
(shared process-wide by default), so constructing many engines over the
same source — a serving fleet, a benchmark's per-sample loop — pays the
parse/lower/optimize cost a single time.  :class:`ExecutionResult` reports
the compile-vs-run split so steady-state throughput can be measured
separately from the one-time cost, SPEC-style.

Engines are also **incremental**: adding facts to an already-evaluated
database marks them as a delta, and the next :meth:`LobsterEngine.run`
seeds the semi-naive frontier from those deltas instead of recomputing
the full fix point (falling back to an automatic from-scratch rerun when
the program or provenance makes delta-seeding unsound).  Deltas are
*signed*: :meth:`Database.retract_facts` stages deletions, which the
next run applies through a DRed-style maintain pass (over-delete,
head-restricted re-derive, delta-seeded propagate) — or, for negation,
non-idempotent ⊕, or sharded engines, through a checkpointed recompute
of the surviving facts.  Either way results match a cold evaluation.

Example
-------
>>> engine = LobsterEngine('''
...     rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
... ''', provenance="unit")
>>> db = engine.create_database()
>>> _ = db.add_facts("edge", [(0, 1), (1, 2)])
>>> result = engine.run(db)
>>> sorted(db.result("path").rows())
[(0, 1), (0, 2), (1, 2)]
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from .batching import prepend_sample
from .cache import (
    CompiledProgram,
    OptimizationConfig,
    ProgramCache,
    compile_source,
    default_cache,
)
from .database import Database
from ..apm.compiler import ApmProgram
from ..apm.interpreter import DEFAULT_MAX_ITERATIONS, ApmInterpreter
from ..errors import LobsterError, RetractionUnsupportedError
from ..gpu.device import DeviceProfile, VirtualDevice
from ..jit import (
    JitConfig,
    JitRunState,
    TraceRecorder,
    compile_trace,
    trace_signature,
)
from ..obs import NULL_TRACER, Tracer
from ..provenance import registry
from ..provenance.base import Provenance
from ..stats.estimate import CostModel
from ..stats.feedback import PlanFeedback

__all__ = [
    "ExecutionResult",
    "LobsterEngine",
    "OptimizationConfig",
]


@dataclass
class ExecutionResult:
    """Timing and profiling information for one engine run.

    The compile-vs-run split follows benchmarking practice (SPEC CPU2026):
    ``compile_seconds`` is the one-time front-end cost, everything else is
    steady state.
    """

    #: Host wall-clock seconds spent executing APM instructions for this
    #: run (measured, not modeled; excludes compilation).
    wall_seconds: float
    #: *Modeled* device-seconds of overhead for this run: host<->device
    #: transfer time from the device's bandwidth/latency model, plus
    #: simulated allocation latency when buffer reuse is disabled.  These
    #: seconds are accounting from :class:`DeviceProfile` counters — they
    #: never elapse on the host clock.
    simulated_overhead_seconds: float
    #: Fix-point iterations executed across all strata in this run.
    iterations: int
    #: Device counters for this run (kernel launches, bytes moved, ...).
    profile: DeviceProfile
    #: One-time front-end cost paid by this engine's constructor; 0.0 when
    #: the compiled program was served from the program cache.
    compile_seconds: float = 0.0
    #: Whether the engine's program came from the cache (no recompilation).
    program_from_cache: bool = False
    #: Whether this run was delta-seeded (incremental) rather than a full
    #: fix-point computation.
    incremental: bool = False
    #: Whether this run was a DRed-style maintain pass (over-delete,
    #: re-derive, propagate) applying staged retractions in place.
    maintained: bool = False
    #: Why a run with staged retractions fell back to the checkpointed
    #: recompute (retractions applied to the fact log + cold rerun)
    #: instead of maintaining in place; None when no fallback happened.
    maintain_fallback: str | None = None
    #: Number of device shards this run actually executed on (1 when the
    #: engine is single-device or fell back, e.g. for negation).
    shards: int = 1
    #: Per-shard device profiles for a sharded run (``profile`` is their
    #: counter-wise :meth:`~repro.gpu.device.DeviceProfile.merge`).
    shard_profiles: list[DeviceProfile] | None = None
    #: Observed-vs-estimated cardinalities for this run (adaptive
    #: engines; None when feedback collection was off).
    feedback: PlanFeedback | None = None
    #: Whether this run executed under a different compiled plan than
    #: the engine's previous run (the adaptive re-planning path).
    replanned: bool = False
    #: Whether any fused trace-JIT kernels executed in this run (the
    #: code-cache re-entry path).
    jit: bool = False
    #: Why a jit-eligible run (fully or partly) fell back to the
    #: interpreter: a guard failure (dtype/schema/semiring drift) or an
    #: unsupported construct (non-idempotent ⊕).  None when nothing
    #: deopted.  Mirrors :attr:`maintain_fallback` — the fallback is
    #: always clean, never wrong.
    jit_deopt: str | None = None
    #: Whether this run recorded a trace for the code cache (the run
    #: itself executed interpreted; the *next* run enters the cache).
    jit_recorded: bool = False

    @property
    def total_seconds(self) -> float:
        """Steady-state cost: measured wall time + modeled overheads
        (compilation excluded — it amortizes across runs)."""
        return self.wall_seconds + self.simulated_overhead_seconds

    @property
    def simulated_parallel_seconds(self) -> float:
        """Modeled steady-state makespan: shards run concurrently, so the
        slowest device's :attr:`~repro.gpu.device.DeviceProfile.busy_seconds`
        (kernels + transfers + exchange + allocation latency) bounds the
        run.  For single-device runs this is just the device's busy time.
        """
        profiles = self.shard_profiles or [self.profile]
        return max(profile.busy_seconds for profile in profiles)

    @property
    def service_seconds(self) -> float:
        """What this run costs on the serving clock: the modeled time
        the device (or, sharded, the busiest shard) was occupied by it.

        This is the quantity the online scheduler charges per request —
        a device that just served a run is busy for ``service_seconds``
        of simulated time before the next micro-batch can start.  Being
        pure counter accounting from :class:`DeviceProfile`, it is
        deterministic for a given program and input, which is what makes
        serving latency distributions replayable.
        """
        return self.simulated_parallel_seconds

    def __repr__(self) -> str:  # compile-vs-run split at a glance
        compile_part = (
            "cached" if self.program_from_cache else f"{self.compile_seconds:.6f}s"
        )
        mode = ", incremental" if self.incremental else ""
        if self.maintained:
            mode += ", maintained"
        if self.shards > 1:
            mode += f", shards={self.shards}"
        return (
            f"ExecutionResult(compile={compile_part}, "
            f"run={self.wall_seconds:.6f}s, "
            f"modeled_overhead={self.simulated_overhead_seconds:.6f}s, "
            f"iterations={self.iterations}{mode})"
        )


class LobsterEngine:
    """Compile once, run against many databases."""

    def __init__(
        self,
        source: str,
        provenance: str | Provenance = "unit",
        device: VirtualDevice | None = None,
        optimizations: OptimizationConfig | None = None,
        batched: bool = False,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        cache: ProgramCache | None | bool = None,
        shards: int = 1,
        shard_devices: list[VirtualDevice] | None = None,
        shard_map=None,
        adaptive: bool = False,
        replan_drift: float = 8.0,
        jit: bool | JitConfig = False,
        tracing: bool | Tracer = False,
        **provenance_kwargs,
    ):
        """``cache=None`` (default) uses the process-wide program cache;
        pass a :class:`ProgramCache` to scope reuse, or ``False`` to
        force a fresh compilation.

        ``shards=N`` (N > 1) executes every run across a pool of N
        virtual devices through :class:`~repro.dist.ShardedExecutor`:
        hash-partitioned frontiers, owner-merged deltas, exchange-charged
        cross-device traffic.  Results are identical to a single-device
        run; programs with negation transparently fall back to the
        single device.  ``shard_devices`` supplies the pool explicitly
        (its length overrides ``shards``).  ``shard_map`` (a
        :class:`~repro.dist.ShardMap`) customizes row ownership —
        per-predicate key columns and hot-key split overrides — and
        implies the shard count; :meth:`reshard` swaps it between runs
        (the elastic serving path's entry point).

        ``adaptive=True`` turns on statistics-driven re-planning: every
        run snapshots the database's stats catalog, fetches (or compiles)
        the cost-based plan for that catalog's bucket from the program
        cache, and records observed cardinalities into
        :attr:`ExecutionResult.feedback`.  When a full run's observed
        rule outputs drift more than ``replan_drift``x from the plan's
        estimates, the cached artifact is invalidated so the next run —
        whose catalog now includes the observed intermediate sizes —
        re-plans.  Results are always bitwise identical to the static
        plan; only operator order changes.  Requires a real program
        cache (``cache=False`` is rejected).

        ``jit=True`` (or a :class:`~repro.jit.JitConfig`) turns on the
        trace-JIT: after ``hot_runs`` warm interpreted runs of a plan,
        the next run records its instruction trace, the fusion compiler
        lowers it to fused vectorized kernels, and subsequent runs enter
        the code cache instead of the interpreter.  Results are always
        bitwise identical — guard failures and unsupported constructs
        deopt to the interpreter with the reason on
        :attr:`ExecutionResult.jit_deopt`.  Traces live next to their
        plan in the :class:`ProgramCache`, so ``cache=False`` is
        rejected, and drift-triggered re-planning invalidates them.

        ``tracing=True`` (or a :class:`~repro.obs.Tracer`) collects span
        timelines for every run on the modeled clocks — plan selection,
        strata, iterations, kernel-vs-interpreted variants, shard
        exchanges — exportable via
        :meth:`~repro.obs.Tracer.export_perfetto`.  Tracing never
        charges the device, so traced results are bitwise identical to
        untraced ones.
        """
        self.source = source
        if tracing is True:
            tracing = Tracer()
        #: The engine's tracer (:data:`~repro.obs.NULL_TRACER` when off).
        self.tracer = tracing or NULL_TRACER
        self.batched = batched
        self.optimizations = optimizations or OptimizationConfig()
        self.max_iterations = max_iterations
        if isinstance(provenance, Provenance):
            import copy

            template = copy.deepcopy(provenance)
            self._provenance_factory = lambda: copy.deepcopy(template)
            self.provenance_name = provenance.name
            self._provenance_kwargs = {}
        else:
            self.provenance_name = provenance
            self._provenance_kwargs = provenance_kwargs
            self._provenance_factory = lambda: registry.create(
                provenance, **provenance_kwargs
            )
        probe = self._provenance_factory()
        if not probe.supports_device:
            raise LobsterError(
                f"provenance {probe.name!r} has no device implementation "
                "(the paper's §3.5 limitation); use the Scallop baseline"
            )

        if jit is True:
            jit = JitConfig()
        self.jit: JitConfig | None = jit or None
        if cache is None or cache is True:
            cache = default_cache()
        if cache is False:
            if adaptive:
                raise LobsterError(
                    "adaptive re-planning keys plans in a ProgramCache; "
                    "pass cache=None (process default) or a ProgramCache"
                )
            if self.jit is not None:
                raise LobsterError(
                    "the trace-JIT stores compiled traces in a "
                    "ProgramCache; pass cache=None (process default) or "
                    "a ProgramCache"
                )
            compiled = compile_source(
                source, self.provenance_name, self.optimizations, batched
            )
            cache_hit = False
            self._program_cache: ProgramCache | None = None
        else:
            compiled, cache_hit = cache.get_or_compile(
                source, self.provenance_name, self.optimizations, batched
            )
            self._program_cache = cache
        self.adaptive = adaptive
        self.replan_drift = replan_drift
        #: Cache key of the plan the previous run executed (adaptive).
        self._last_plan_key: str | None = None
        #: Plan keys already invalidated for drift once: a second drift
        #: report for the same key means the re-planned artifact (same
        #: bucket, fresher catalog) still mis-estimates — structural
        #: estimator error, not stale statistics — so repeating the
        #: invalidate/recompile cycle would thrash the cache forever.
        self._drift_invalidated: set[str] = set()
        #: Warm interpreted runs per (plan key, dtype signature) — the
        #: trace-JIT's hotness counter.  Once it reaches
        #: ``jit.hot_runs``, the next run records a trace.
        self._jit_runs: dict[tuple[str, str], int] = {}
        self.compiled: CompiledProgram = compiled
        self.cache_hit = cache_hit
        #: Front-end seconds paid by *this* construction (0.0 on a hit).
        self.compile_seconds = 0.0 if cache_hit else compiled.compile_seconds
        self.resolved = compiled.resolved
        self.ram = compiled.ram
        self.apm: ApmProgram = compiled.apm
        self._batch_fact_rows = compiled.batch_fact_rows
        if shard_map is not None:
            if shard_devices is not None and shard_map.n_shards != len(shard_devices):
                raise LobsterError(
                    f"shard_map covers {shard_map.n_shards} shards but "
                    f"{len(shard_devices)} shard_devices were supplied"
                )
            if shards > 1 and shard_map.n_shards != shards:
                raise LobsterError(
                    f"shard_map covers {shard_map.n_shards} shards but "
                    f"shards={shards} was requested"
                )
            shards = shard_map.n_shards
        self.shard_map = shard_map
        if device is not None and shard_devices is not None:
            raise LobsterError(
                "pass either device= (single-device) or shard_devices= "
                "(sharded pool), not both"
            )
        if device is not None and shards > 1:
            raise LobsterError(
                "a sharded engine runs on its shard pool, so device= would "
                "be silently ignored; configure the pool via shard_devices="
            )
        self.device = device or VirtualDevice(
            reuse_buffers=self.optimizations.buffer_reuse
        )
        if shard_devices is not None:
            shards = len(shard_devices)
        if shards < 1:
            raise LobsterError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.shard_devices: list[VirtualDevice] = list(shard_devices or [])
        if shards == 1 and self.shard_devices:
            # A one-device "pool" degenerates to single-device execution
            # on the supplied device (not a silently ignored config).
            self.device = self.shard_devices[0]
        if shards > 1 and not self.shard_devices:
            self.shard_devices = [
                VirtualDevice(reuse_buffers=self.optimizations.buffer_reuse)
                for _ in range(shards)
            ]
        self._sharded_executor = None
        #: Serializes session drains over this engine's device(s) — held
        #: by every LobsterSession.run_all targeting this engine, so two
        #: sessions sharing one engine cannot interleave on its devices.
        self._drain_lock = threading.Lock()

    # ------------------------------------------------------------------

    @property
    def program_key(self) -> str:
        """The execution-compatibility key: work items coalesce onto one
        warm session iff they share the compiled program (the
        ProgramCache identity — source, provenance, optimization flags)
        *and* the same ``max_iterations``, the one engine setting that
        changes execution semantics without changing the artifact.  Used
        by the serving scheduler's micro-batch groups and the stream
        scheduler's per-program sessions."""
        return f"{self.compiled.key}:{self.max_iterations}"

    def create_database(self) -> Database:
        """A fresh database with this program's schemas and a fresh
        provenance instance (tags reference per-run input facts)."""
        database = Database(dict(self.resolved.schemas), self._provenance_factory())
        for predicate, rows in self.resolved.facts.items():
            if self.batched:
                continue  # fact blocks replicated per sample in add_batch
            database.add_facts(predicate, rows)
        return database

    def add_batch_facts(
        self,
        database: Database,
        name: str,
        sample_id: int,
        rows: list[tuple],
        probs=None,
        exclusive: bool = False,
    ) -> np.ndarray:
        """Register facts for one sample of a batched run."""
        if not self.batched:
            raise LobsterError("engine was not constructed with batched=True")
        return database.add_facts(
            name, prepend_sample(rows, sample_id), probs, exclusive
        )

    def replicate_fact_blocks(self, database: Database, n_samples: int) -> None:
        """Copy the program's inline fact blocks into every sample."""
        for predicate, rows in self._batch_fact_rows.items():
            for sample_id in range(n_samples):
                database.add_facts(predicate, prepend_sample(rows, sample_id))

    # ------------------------------------------------------------------

    def supports_incremental(self, database: Database) -> bool:
        """Whether a delta-seeded re-run of ``database`` is sound.

        Requires an idempotent ⊕ (re-derivation from warm state must be
        absorbed) and a negation-free program (new facts may *retract*
        negated conclusions, which monotone delta-seeding cannot express).
        Sharded engines always rerun from scratch: the delta-seeded warm
        path would need per-shard ``changed`` masks the replicated
        closure does not track.
        """
        return (
            database.provenance.idempotent_oplus
            and not self.apm.has_negation
            and not self._use_sharded()
        )

    def supports_maintain(self, database: Database) -> tuple[bool, str | None]:
        """Whether a DRed-style maintain pass of ``database`` is sound;
        returns ``(ok, reason)`` where ``reason`` names the blocking
        property when it is not.

        Maintenance shares incremental evaluation's two preconditions —
        an idempotent ⊕ (re-derivation must be absorbed, not summed) and
        a negation-free program (a retraction can *add* negated
        conclusions, which over-delete/re-derive cannot express) — and
        like the insert-only warm path it is single-device: a sharded
        engine's replicated closure does not track the per-shard masks
        over-delete needs, so retractions there route through the
        checkpointed-recompute fallback instead of the exchange path.
        """
        if not database.provenance.idempotent_oplus:
            reason = (
                f"provenance {database.provenance.name!r} has a "
                "non-idempotent ⊕ (re-derivation would double-count "
                "alternatives)"
            )
            return False, reason
        if self.apm.has_negation:
            return False, (
                "program uses stratified negation (a retraction can add "
                "negated conclusions, which over-delete/re-derive cannot "
                "express)"
            )
        if self._use_sharded():
            return False, (
                "sharded engines rebuild and rerun from scratch on "
                "retraction (the replicated closure tracks no per-shard "
                "doom masks)"
            )
        return True, None

    def _use_sharded(self) -> bool:
        """Whether runs go through the sharded executor (negation makes a
        program non-partitionable: stratified negation is only sound
        against complete relations, so the engine falls back)."""
        return self.shards > 1 and not self.apm.has_negation

    def reshard(self, shard_map) -> None:
        """Adopt a new shard layout for subsequent runs.

        The elastic serving path calls this between micro-batches once
        the :class:`~repro.dist.ReshardPlanner` decides a migration pays
        for itself.  The device pool is resized to match — existing
        shard devices are kept (their profiles are the serving layer's
        accounting surface), growth appends fresh devices, shrink drops
        the suffix — and the cached sharded executor is discarded so the
        next run rebuilds its replicas under the new map.  Because
        sharded runs always rebuild from the fact log, the swap needs no
        state migration here; the *modeled* migration cost is charged by
        the planner's accounting where the decision is made.

        Resharding to one shard degenerates to single-device execution
        on the engine's ``device``, matching the constructor's contract.
        """
        n = shard_map.n_shards
        if n < 1:
            raise LobsterError(f"shard_map must cover >= 1 shard, got {n}")
        if n > len(self.shard_devices):
            template = (
                self.shard_devices[0] if self.shard_devices else self.device
            )
            for _ in range(n - len(self.shard_devices)):
                self.shard_devices.append(
                    VirtualDevice(
                        capacity_bytes=template.capacity_bytes,
                        bandwidth_bytes_per_s=template.bandwidth_bytes_per_s,
                        transfer_latency_s=template.transfer_latency_s,
                        reuse_buffers=template.reuse_buffers,
                        exchange_bandwidth_bytes_per_s=template.exchange_bandwidth_bytes_per_s,
                        exchange_latency_s=template.exchange_latency_s,
                    )
                )
        elif n < len(self.shard_devices):
            del self.shard_devices[n:]
        self.shards = n
        self.shard_map = shard_map
        self._sharded_executor = None

    def _select_plan(self, database: Database) -> CompiledProgram:
        """The artifact this run executes: the engine's compile-time plan
        or, adaptive, the cost-based plan for the database's current
        statistics bucket (compiled once per bucket via the cache)."""
        if not self.adaptive or self._program_cache is None:
            return self.compiled
        if not database.evaluated and not database.has_pending_retractions:
            # Cold database: loading the EDB now is safe (no warm-path
            # bookkeeping depends on pending deltas yet) and gives the
            # planner real input statistics for the very first run.
            database.finalize()
        catalog = database.stats_catalog()
        if not catalog:
            return self.compiled
        cost_model = CostModel.for_shards(
            self.shards if self._use_sharded() else 1
        )
        compiled, _hit = self._program_cache.get_or_compile(
            self.source,
            self.provenance_name,
            self.optimizations,
            self.batched,
            stats=catalog,
            cost_model=cost_model,
        )
        return compiled

    def _prepare_jit(
        self,
        active: CompiledProgram,
        database: Database,
        feedback: PlanFeedback | None,
    ) -> tuple[TraceRecorder | None, JitRunState | None, str | None]:
        """The trace-JIT's per-run decision: warm (count), record, or
        execute.  Returns ``(recorder, state, deopt_reason)`` — at most
        one of the three is set.

        The code cache is consulted under the run's ``(plan key, dtype
        signature)``: a hit whose trace is unsupported (non-idempotent ⊕)
        reports a deopt; a supported hit dispatches through
        :class:`~repro.jit.JitRunState`.  On a miss the hotness counter
        advances, and once it passes ``hot_runs`` the run records — with
        the adaptive feedback when one is live, else its own, so
        observed cardinalities ride along either way.
        """
        if self.jit is None or self._program_cache is None:
            return None, None, None
        signature = trace_signature(database)
        trace = self._program_cache.get_trace(
            active.key, signature, apm=active.apm
        )
        if trace is not None:
            if trace.unsupported is not None:
                return None, None, trace.unsupported
            return None, JitRunState(trace), None
        key = (active.key, signature)
        runs = self._jit_runs.get(key, 0)
        if runs < self.jit.hot_runs:
            self._jit_runs[key] = runs + 1
            return None, None, None
        recorder = TraceRecorder(
            plan_key=active.key,
            signature=signature,
            feedback=feedback if feedback is not None else PlanFeedback(),
        )
        return recorder, None, None

    def run(
        self,
        database: Database,
        *,
        incremental: bool | None = None,
        maintain: bool | None = None,
        reset_profile: bool = True,
        _interpreter: ApmInterpreter | None = None,
        tracer: Tracer | None = None,
        span_parent=None,
    ) -> ExecutionResult:
        """Execute the program to fix point against ``database``.

        On a database that has already been evaluated and has received
        facts since (:meth:`Database.add_facts` marks them as a delta),
        the run is *warm*: when ``incremental`` is None the engine picks
        delta-seeded evaluation if :meth:`supports_incremental` allows,
        otherwise it transparently rebuilds and reruns from scratch —
        either way the results match a cold evaluation of all facts.

        A database with staged retractions (:meth:`Database.retract_facts`)
        takes the *maintain* path: when ``maintain`` is None the engine
        runs a DRed-style maintain pass if :meth:`supports_maintain`
        allows, otherwise it falls back to the checkpointed recompute
        (retractions applied to the fact log, then a cold rerun), with
        the reason recorded on :attr:`ExecutionResult.maintain_fallback`.
        ``maintain=True`` demands the in-place pass and raises
        :class:`~repro.errors.RetractionUnsupportedError` when it cannot
        be taken; ``maintain=False`` forces the fallback.  Either way the
        results match a cold evaluation of the surviving facts.

        An *adaptive* engine first routes the run through the plan for
        the database's statistics bucket (:meth:`_select_plan`), attaches
        observed cardinalities as :attr:`ExecutionResult.feedback`, and —
        when a full run drifts past ``replan_drift`` — invalidates the
        cached plan so the next run re-optimizes.  Every plan computes
        identical results; adaptivity only moves operator order.

        ``reset_profile=False`` accumulates device counters instead of
        zeroing them (used by sessions sharing one device); the returned
        profile still covers only this run.

        ``tracer`` overrides the engine's own (the serve scheduler
        passes its serve-clock tracer so run spans nest under the
        micro-batch span supplied as ``span_parent``); the run span is
        anchored at the tracer's clock cursor and advances it by the
        run's modeled service seconds.
        """
        run_tracer = tracer if tracer is not None else self.tracer
        active = self._select_plan(database)
        feedback: PlanFeedback | None = None
        replanned = False
        if self.adaptive:
            feedback = PlanFeedback(
                stats_bucket=active.stats_bucket,
                rule_estimates=dict(active.rule_estimates),
            )
            previous = self._last_plan_key or self.compiled.key
            replanned = active.key != previous
            self._last_plan_key = active.key
        jit_recorder, jit_state, jit_reason = self._prepare_jit(
            active, database, feedback
        )
        run_span = None
        if run_tracer.enabled:
            run_span = run_tracer.start(
                "engine.run",
                parent=span_parent,
                plan=active.key[:12],
                cache_hit=self.cache_hit,
                provenance=self.provenance_name,
                stats_bucket=active.stats_bucket or "",
            )
            if replanned:
                run_tracer.event(
                    "plan.replan", parent=run_span, plan=active.key[:12]
                )
        if self._use_sharded() and _interpreter is None:
            result = self._run_sharded(
                database,
                apm=active.apm,
                feedback=feedback,
                incremental=incremental,
                maintain=maintain,
                reset_profile=reset_profile,
                jit_recorder=jit_recorder,
                jit_state=jit_state,
                tracer=run_tracer,
                run_span=run_span,
            )
        else:
            result = self._run_single(
                database,
                apm=active.apm,
                feedback=feedback,
                incremental=incremental,
                maintain=maintain,
                reset_profile=reset_profile,
                _interpreter=_interpreter,
                jit_recorder=jit_recorder,
                jit_state=jit_state,
                tracer=run_tracer,
                run_span=run_span,
            )
        if jit_recorder is not None and self._program_cache is not None:
            # The recording run executed interpreted; compile its trace
            # now so the next run enters the code cache.
            trace = compile_trace(
                active.apm, database.provenance, jit_recorder, self.jit
            )
            self._program_cache.put_trace(trace)
            result.jit_recorded = True
        if jit_state is not None:
            result.jit = jit_state.executed > 0
            if jit_state.deopts:
                result.jit_deopt = jit_state.deopts[0]
                if self._program_cache is not None:
                    self._program_cache.record_trace_deopt(
                        len(jit_state.deopts)
                    )
        elif jit_reason is not None:
            result.jit_deopt = jit_reason
            if self._program_cache is not None:
                self._program_cache.record_trace_deopt()
        if feedback is not None:
            feedback.relation_rows = {
                name: rel.n_facts() for name, rel in database.relations.items()
            }
            result.feedback = feedback
            result.replanned = replanned
            if (
                active.stats_bucket is not None
                and not result.incremental
                and not result.maintained
                and self._program_cache is not None
                and active.key not in self._drift_invalidated
                and feedback.should_replan(self.replan_drift)
            ):
                # The plan's estimates no longer describe the data; drop
                # the artifact so the next lookup re-plans against a
                # catalog that now includes observed cardinalities.  At
                # most once per plan key: if the re-planned artifact
                # drifts again, recompiling cannot help (the bucket is
                # unchanged), and a hot serving path must not pay a full
                # recompile per batch.
                self._drift_invalidated.add(active.key)
                self._program_cache.invalidate(active.key)
                if run_span is not None:
                    run_tracer.event(
                        "plan.invalidate",
                        t=run_span.start_s + result.service_seconds,
                        parent=run_span,
                        plan=active.key[:12],
                        drift=round(feedback.max_drift(), 3),
                    )
        if run_span is not None:
            run_span.attrs.update(
                iterations=result.iterations,
                incremental=result.incremental,
                maintained=result.maintained,
                shards=result.shards,
                jit=result.jit,
                jit_recorded=result.jit_recorded,
            )
            if result.jit_deopt is not None:
                run_span.attrs["jit_deopt"] = result.jit_deopt
            if result.maintain_fallback is not None:
                run_span.attrs["maintain_fallback"] = result.maintain_fallback
            end = run_span.start_s + result.service_seconds
            run_tracer.finish(run_span, end)
            # Advance the modeled cursor: the next run on this tracer
            # starts where this one's device occupancy ended.
            run_tracer.set_time(end)
        return result

    def _run_single(
        self,
        database: Database,
        *,
        apm: ApmProgram,
        feedback: PlanFeedback | None,
        incremental: bool | None,
        maintain: bool | None,
        reset_profile: bool,
        _interpreter: ApmInterpreter | None,
        jit_recorder: TraceRecorder | None = None,
        jit_state: JitRunState | None = None,
        tracer=NULL_TRACER,
        run_span=None,
    ) -> ExecutionResult:
        device = _interpreter.device if _interpreter is not None else self.device
        if reset_profile:
            device.profile.reset()
        run_incremental = False
        run_maintain = False
        fallback: str | None = None
        if database.has_pending_retractions:
            eligible, reason = self.supports_maintain(database)
            if not database.evaluated:
                # Nothing derived yet: the retraction only edits the
                # staged input facts, and the first run is cold anyway.
                eligible, reason = False, None
            if maintain is False:
                eligible, reason = False, "maintain=False requested"
            if eligible:
                run_maintain = True
            elif maintain:
                raise RetractionUnsupportedError(
                    reason or "database has never been evaluated"
                )
            else:
                fallback = reason
                database.rebuild()  # discards retracted instances first
        elif maintain:
            raise RetractionUnsupportedError(
                "no retractions are staged; maintain=True only applies to "
                "a database with pending retract_facts deltas"
            )
        if (
            not run_maintain
            and database.evaluated
            and (database.has_pending_facts or incremental)
        ):
            eligible = self.supports_incremental(database)
            if incremental is None:
                run_incremental = eligible
            elif incremental and not eligible:
                raise LobsterError(
                    "incremental evaluation requires an idempotent ⊕ and a "
                    "negation-free program; let the engine fall back by "
                    "omitting incremental=True"
                )
            else:
                run_incremental = bool(incremental)
            if run_incremental:
                database.begin_delta_tracking()
            else:
                database.rebuild()
        before = device.profile.snapshot()
        interpreter = _interpreter or ApmInterpreter(
            device,
            enable_static_reuse=self.optimizations.static_indices,
            enable_buffer_reuse=self.optimizations.buffer_reuse,
            enable_stratum_scheduling=self.optimizations.stratum_scheduling,
            max_iterations=self.max_iterations,
        )
        iterations_before = interpreter.iterations_run
        # A recording run without an adaptive feedback still needs one
        # attached: the recorder's observed cardinalities come from it.
        run_feedback = feedback
        if run_feedback is None and jit_recorder is not None:
            run_feedback = jit_recorder.feedback
        interpreter.feedback = run_feedback
        interpreter.jit_recorder = jit_recorder
        interpreter.jit_state = jit_state
        if run_span is not None:
            # Interior spans (strata, iterations, variants) timestamp
            # themselves off the device's busy clock, anchored at the
            # run span's start on the modeled timeline.
            interpreter.tracer = tracer
            interpreter.trace_clock = tracer.device_clock(device)
            interpreter.trace_parent = run_span
        start = time.perf_counter()
        try:
            if run_maintain:
                interpreter.maintain(apm, database)
            else:
                interpreter.run(apm, database, incremental=run_incremental)
        finally:
            interpreter.feedback = None
            interpreter.jit_recorder = None
            interpreter.jit_state = None
            interpreter.tracer = NULL_TRACER
            interpreter.trace_clock = None
            interpreter.trace_parent = None
        wall = time.perf_counter() - start
        database.evaluated = True
        # The result always carries its own per-run counter copy — the
        # live device profile is reset by the next run on this engine.
        run_profile = device.profile.since(before)
        overhead = run_profile.transfer_seconds + (
            0.0 if self.optimizations.buffer_reuse else run_profile.alloc_seconds
        )
        return ExecutionResult(
            wall,
            overhead,
            interpreter.iterations_run - iterations_before,
            run_profile,
            compile_seconds=self.compile_seconds,
            program_from_cache=self.cache_hit,
            incremental=run_incremental,
            maintained=run_maintain,
            maintain_fallback=fallback,
        )

    def _run_sharded(
        self,
        database: Database,
        *,
        apm: ApmProgram,
        feedback: PlanFeedback | None = None,
        incremental: bool | None,
        maintain: bool | None = None,
        reset_profile: bool,
        jit_recorder: TraceRecorder | None = None,
        jit_state: JitRunState | None = None,
        tracer=NULL_TRACER,
        run_span=None,
    ) -> ExecutionResult:
        """Execute across the shard pool via the sharded executor.

        Warm databases rerun from scratch (a transparent
        :meth:`Database.rebuild`); explicitly requesting the delta-seeded
        path is an error, matching :meth:`supports_incremental`.
        Staged retractions take the documented fallback — they are
        applied to the fact log and the query reruns cold across the
        shards — rather than routing doom frontiers through the
        exchange path; demanding the in-place pass raises, matching
        :meth:`supports_maintain`.
        """
        from ..dist.executor import ShardedExecutor

        if incremental:
            raise LobsterError(
                "sharded engines rerun from scratch; delta-seeded "
                "incremental evaluation requires shards=1"
            )
        fallback: str | None = None
        if database.has_pending_retractions:
            if maintain:
                raise RetractionUnsupportedError(self.supports_maintain(database)[1])
            fallback = self.supports_maintain(database)[1]
            database.rebuild()
        elif maintain:
            raise RetractionUnsupportedError(
                "no retractions are staged; maintain=True only applies to "
                "a database with pending retract_facts deltas"
            )
        if database.evaluated and database.has_pending_facts:
            database.rebuild()
        if self._sharded_executor is None:
            self._sharded_executor = ShardedExecutor(
                self.shard_devices,
                enable_static_reuse=self.optimizations.static_indices,
                enable_buffer_reuse=self.optimizations.buffer_reuse,
                enable_stratum_scheduling=self.optimizations.stratum_scheduling,
                max_iterations=self.max_iterations,
                shard_map=self.shard_map,
            )
        executor = self._sharded_executor
        if reset_profile:
            for shard_device in self.shard_devices:
                shard_device.profile.reset()
        befores = [d.profile.snapshot() for d in self.shard_devices]
        iterations_before = executor.iterations_run
        # Every shard shares the trace's stateless kernels (and the one
        # run state, so executed/deopt counts aggregate across shards);
        # a recording run needs a feedback attached for cardinalities.
        run_feedback = feedback
        if run_feedback is None and jit_recorder is not None:
            run_feedback = jit_recorder.feedback
        for interpreter in executor.interpreters:
            interpreter.jit_recorder = jit_recorder
            interpreter.jit_state = jit_state
        if run_span is not None:
            # One lane per shard: each shard's interior spans timestamp
            # off its own device's busy clock, all anchored at the run
            # span's start (shards execute concurrently in the model).
            for shard, (interpreter, shard_device) in enumerate(
                zip(executor.interpreters, self.shard_devices)
            ):
                shard_span = tracer.start(
                    "shard", parent=run_span, track=f"shard{shard}", shard=shard
                )
                interpreter.tracer = tracer
                interpreter.trace_clock = tracer.device_clock(shard_device)
                interpreter.trace_parent = shard_span
        start = time.perf_counter()
        try:
            executor.run(apm, database, feedback=run_feedback)
        finally:
            for interpreter in executor.interpreters:
                if interpreter.trace_parent is not None:
                    tracer.finish(interpreter.trace_parent, interpreter.trace_clock())
                interpreter.jit_recorder = None
                interpreter.jit_state = None
                interpreter.tracer = NULL_TRACER
                interpreter.trace_clock = None
                interpreter.trace_parent = None
        wall = time.perf_counter() - start
        database.evaluated = True
        shard_profiles = [
            d.profile.since(b) for d, b in zip(self.shard_devices, befores)
        ]
        merged = DeviceProfile.merge(shard_profiles)
        overhead = (
            merged.transfer_seconds
            + merged.exchange_seconds
            + (0.0 if self.optimizations.buffer_reuse else merged.alloc_seconds)
        )
        return ExecutionResult(
            wall,
            overhead,
            executor.iterations_run - iterations_before,
            merged,
            compile_seconds=self.compile_seconds,
            program_from_cache=self.cache_hit,
            incremental=False,
            maintain_fallback=fallback,
            shards=self.shards,
            shard_profiles=shard_profiles,
        )

    # ------------------------------------------------------------------

    def export_database(self, database: Database, path) -> None:
        """Write ``database``'s full state to ``path`` in the durability
        subsystem's checkpoint format (CRC-framed, atomically swapped) —
        a compact interchange another process imports with
        :meth:`import_database`."""
        from ..recovery import export_database  # lazy: recovery sits above

        export_database(path, database)

    def import_database(self, path) -> Database:
        """Load a database exported by :meth:`export_database` onto this
        engine's semiring (a fresh provenance instance is set up on the
        restored input facts).  Raises
        :class:`~repro.errors.CheckpointMismatchError` if the export was
        written under a different provenance, and
        :class:`~repro.errors.CorruptLogError` if the file fails CRC
        framing."""
        from ..recovery import import_database  # lazy: recovery sits above

        return import_database(path, self)

    # ------------------------------------------------------------------

    def query(self, database: Database, name: str) -> list[tuple]:
        return database.result(name).rows()

    def query_probs(self, database: Database, name: str) -> dict[tuple, float]:
        rows, probs = database.result_probs(name)
        return {row: float(p) for row, p in zip(rows, probs)}

    def query_by_sample(self, database: Database, name: str) -> dict[int, dict[tuple, float]]:
        """Disaggregate a batched result into per-sample databases."""
        if not self.batched:
            raise LobsterError("engine was not constructed with batched=True")
        rows, probs = database.result_probs(name)
        out: dict[int, dict[tuple, float]] = {}
        for row, prob in zip(rows, probs):
            out.setdefault(int(row[0]), {})[tuple(row[1:])] = float(prob)
        return out

    def backward(
        self, database: Database, name: str, grad_out: dict[tuple, float]
    ) -> np.ndarray:
        """Back-propagate loss gradients on a relation's fact probabilities
        to the input facts; returns d(loss)/d(input_probs)."""
        provenance = database.provenance
        if not provenance.is_differentiable:
            raise LobsterError(f"provenance {provenance.name!r} is not differentiable")
        table = database.result(name)
        rows = table.rows()
        grads = np.array([grad_out.get(row, 0.0) for row in rows], dtype=np.float64)
        grad_in = np.zeros(database.n_input_facts, dtype=np.float64)
        provenance.backward(table.tags, grads, grad_in)
        return grad_in

"""The online serving front-end.

Where :class:`~repro.runtime.session.LobsterSession` drains an offline
batch and :mod:`repro.dist` scales one query across devices, ``serve/``
adds the missing *online* layer: requests arrive over time, carry
latency objectives, and the system must decide what to run, coalesce,
or refuse.  Five pieces compose it:

* :mod:`~repro.serve.request` — :class:`Request`\\ s in
  :class:`SLOClass`\\ es (``interactive`` / ``batch``), each ending in
  exactly one :class:`Outcome` (completed / rejected / shed);
* :mod:`~repro.serve.queue` — per-(class, compiled-program) micro-batch
  groups with size and delay bounds;
* :mod:`~repro.serve.admission` — queue-depth and deadline-feasibility
  load shedding with explicit rejections and a backpressure signal;
* :mod:`~repro.serve.scheduler` — the clock-driven event loop
  dispatching micro-batches onto the least-loaded pool device through
  warm per-program sessions;
* :mod:`~repro.serve.elastic` — the :class:`ElasticController`: between
  micro-batches it observes served databases for key skew, prices a
  repartition via the :class:`~repro.dist.ReshardPlanner`, and
  grows/shrinks its managed engine's shard set (or splits hot keys)
  when the payback beats the migration cost;
* :mod:`~repro.serve.loadgen` / :mod:`~repro.serve.metrics` — seeded
  Poisson/bursty open-loop arrivals, and the counter/gauge/histogram
  registry every layer reports into;
* :mod:`~repro.serve.streaming` — the maintenance tick path: registered
  :class:`~repro.stream.view.MaterializedView`\\ s run their window
  deltas on the serve clock, sharing devices and metrics with request
  traffic.

The whole stack runs on *simulated* time (arrivals from the load
generator, service from the device cost model), so a serving run's
latency distribution is deterministic and testable.
"""

from .admission import AdmissionController, ServiceEstimator
from .elastic import ElasticController
from .loadgen import LoadGenerator
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .queue import BatchGroup, RequestQueue
from .request import (
    COMPLETED,
    REJECTED,
    SHED,
    Outcome,
    Request,
    SLOClass,
    default_slo_classes,
)
from .scheduler import Scheduler, ServeReport
from .streaming import StreamReport, StreamScheduler

__all__ = [
    "COMPLETED",
    "REJECTED",
    "SHED",
    "AdmissionController",
    "BatchGroup",
    "Counter",
    "ElasticController",
    "Gauge",
    "Histogram",
    "LoadGenerator",
    "MetricsRegistry",
    "Outcome",
    "Request",
    "RequestQueue",
    "SLOClass",
    "Scheduler",
    "ServeReport",
    "ServiceEstimator",
    "StreamReport",
    "StreamScheduler",
    "default_slo_classes",
]

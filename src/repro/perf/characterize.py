"""Workload characterization: does the suite cover the space?

SPEC CPU2026's representativeness methodology (PAPERS.md) argues a
benchmark suite is only trustworthy if you can *see* where its workloads
sit in the behavior space.  This module computes that placement for the
repo's benchmark workloads from machinery that already exists — the
``stats/`` sketches, the planner feedback an adaptive run records, and
the modeled :class:`~repro.gpu.device.DeviceProfile` clocks — and
renders it into the versioned markdown summary, so a reader can check
the suite spans selective and explosive joins, uniform and skewed keys,
shallow and deep recursion, exchange-light and exchange-heavy sharding,
and JIT-friendly and JIT-hostile programs.

Per workload (all on fixed seeds, so the report is deterministic and the
tests pin it):

* ``edb_rows`` / ``idb_rows`` — input size and derived output size;
* ``iterations`` — fix-point depth (recursion character);
* ``join_selectivity`` — StoreDelta rows / Probe rows: the fraction of
  raw join matches that survives filters and dedup into storage;
* ``probe_amplification`` — Probe rows / EDB rows: join fan-out
  relative to the input (explosiveness);
* ``key_skew`` — max over EDB columns of the CMS heavy-hitter fraction
  (:meth:`~repro.stats.relation_stats.ColumnStats.skew`);
* ``exchange_fraction`` — exchange seconds / busy seconds on a 2-shard
  run (how much scale-out pays in shuffle);
* ``jit_coverage`` — fractional kernel-launch reduction of a hot JIT'd
  run vs the interpreter (0.0 when the JIT refuses the program).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.analytics import CSPA

__all__ = [
    "WorkloadCharacter",
    "characterize_workloads",
    "default_workloads",
    "render_markdown",
]

TC = """
rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
query path
"""

SAMEGEN = """
rel sg(x, y) :- parent(z, x) and parent(z, y) and x != y.
rel sg(x, y) :- parent(a, x) and sg(a, b) and parent(b, y).
query sg
"""

SKEWED_JOIN = """
rel hit(x, z) :- big_a(x, y) and big_b(y, z) and tiny(x).
query hit
"""


def _tc_uniform_facts():
    rng = np.random.default_rng(17)
    edges = {
        (int(a), int(b))
        for a, b in rng.integers(0, 40, size=(100, 2))
        if a != b
    }
    return {"edge": sorted(edges)}


def _tc_skewed_facts():
    # A hub fanning out to every spoke plus a long chain: heavy-hitter
    # key distribution and deep recursion in one graph.
    edges = {(0, s) for s in range(1, 40)}
    edges |= {(i, i + 1) for i in range(40, 70)}
    edges |= {(5, 40)}
    return {"edge": sorted(edges)}


def _cspa_facts():
    rng = np.random.default_rng(23)
    n_vars = 30
    assign = {
        (int(a), int(b))
        for a, b in rng.integers(0, n_vars, size=(n_vars * 2, 2))
        if a != b
    }
    deref = {
        (int(a), int(b))
        for a, b in rng.integers(0, n_vars, size=(n_vars // 2, 2))
    }
    return {"assign": sorted(assign), "dereference": sorted(deref)}


def _samegen_facts():
    # A balanced binary tree: same-generation pairs, bounded depth.
    parent = [(i, 2 * i + 1) for i in range(31)] + [
        (i, 2 * i + 2) for i in range(31)
    ]
    return {"parent": sorted(parent)}


def _skewed_join_facts():
    rng = np.random.default_rng(7)
    n, domain = 800, 40
    big_a = [(int(a), int(b)) for a, b in rng.integers(0, domain, size=(n, 2))]
    big_b = [(int(a), int(b)) for a, b in rng.integers(0, domain, size=(n, 2))]
    tiny = [(i,) for i in range(3)]
    return {"big_a": big_a, "big_b": big_b, "tiny": tiny}


def default_workloads() -> dict:
    """The characterized workload set, mirroring the benchmark suite's
    families: ``(source, query, fact loader)`` per name."""
    return {
        "TC/uniform": (TC, "path", _tc_uniform_facts),
        "TC/skewed-hub": (TC, "path", _tc_skewed_facts),
        "CSPA": (CSPA, "value_flow", _cspa_facts),
        "samegen": (SAMEGEN, "sg", _samegen_facts),
        "skewed-join": (SKEWED_JOIN, "hit", _skewed_join_facts),
    }


@dataclass
class WorkloadCharacter:
    """One workload's coordinates in the behavior space."""

    workload: str
    edb_rows: int
    idb_rows: int
    iterations: int
    join_selectivity: float
    probe_amplification: float
    key_skew: float
    exchange_fraction: float
    jit_coverage: float

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "edb_rows": self.edb_rows,
            "idb_rows": self.idb_rows,
            "iterations": self.iterations,
            "join_selectivity": round(self.join_selectivity, 6),
            "probe_amplification": round(self.probe_amplification, 6),
            "key_skew": round(self.key_skew, 6),
            "exchange_fraction": round(self.exchange_fraction, 6),
            "jit_coverage": round(self.jit_coverage, 6),
        }


def _populate(engine, facts):
    db = engine.create_database()
    for name, rows in facts.items():
        db.add_facts(name, rows)
    return db


def characterize_one(name, source, query, facts) -> WorkloadCharacter:
    """Characterize one workload with three cheap runs: an adaptive
    single-device run (feedback + sketches), a 2-shard run (exchange),
    and a short hot loop with the JIT on (coverage)."""
    from .. import JitConfig, LobsterEngine, ProgramCache

    edb_rows = sum(len(rows) for rows in facts.values())

    # -- adaptive run: feedback cardinalities + catalog sketches --------
    engine = LobsterEngine(source, provenance="unit", adaptive=True)
    db = _populate(engine, facts)
    result = engine.run(db)
    feedback = result.feedback
    probe = feedback.instruction_rows.get("Probe", 0) if feedback else 0
    store = feedback.instruction_rows.get("StoreDelta", 0) if feedback else 0
    idb_rows = db.result(query).n_rows
    catalog = db.stats_catalog()
    skew = 0.0
    for fact_name in facts:
        stats = catalog.get(fact_name)
        if stats is None:
            continue
        for column in stats.columns:
            skew = max(skew, column.skew())

    # -- sharded run: what fraction of modeled time is exchange --------
    sharded = LobsterEngine(source, provenance="unit", shards=2)
    sharded_result = sharded.run(_populate(sharded, facts))
    busy = sharded_result.profile.busy_seconds
    exchange = sharded_result.profile.exchange_seconds

    # -- hot loop: does the JIT cover this program, and how much -------
    interp_launches = jit_launches = 0
    jit_engine = LobsterEngine(
        source,
        provenance="unit",
        cache=ProgramCache(),
        jit=JitConfig(hot_runs=1),
    )
    last = None
    for _ in range(3):
        last = jit_engine.run(_populate(jit_engine, facts))
    jit_launches = last.profile.kernel_launches
    interp_engine = LobsterEngine(source, provenance="unit")
    interp_launches = interp_engine.run(
        _populate(interp_engine, facts)
    ).profile.kernel_launches

    return WorkloadCharacter(
        workload=name,
        edb_rows=edb_rows,
        idb_rows=idb_rows,
        iterations=result.iterations,
        join_selectivity=store / probe if probe else 0.0,
        probe_amplification=probe / edb_rows if edb_rows else 0.0,
        key_skew=skew,
        exchange_fraction=exchange / busy if busy else 0.0,
        jit_coverage=(
            1.0 - jit_launches / interp_launches if interp_launches else 0.0
        ),
    )


def characterize_workloads(workloads: dict | None = None) -> list[WorkloadCharacter]:
    """Characterize every workload in ``workloads`` (default set when
    None).  Deterministic: fixed seeds in, modeled clocks out."""
    if workloads is None:
        workloads = default_workloads()
    return [
        characterize_one(name, source, query, loader())
        for name, (source, query, loader) in workloads.items()
    ]


def render_markdown(characters: list[WorkloadCharacter]) -> list[str]:
    """The characterization table for the versioned summary."""
    lines = [
        "| workload | EDB rows | IDB rows | iters | join sel. | "
        "probe ampl. | key skew | exch. frac | JIT cov. |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for ch in characters:
        lines.append(
            f"| {ch.workload} | {ch.edb_rows} | {ch.idb_rows} | "
            f"{ch.iterations} | {ch.join_selectivity:.3f} | "
            f"{ch.probe_amplification:.2f} | {ch.key_skew:.3f} | "
            f"{ch.exchange_fraction:.3f} | {ch.jit_coverage:.2f} |"
        )
    return lines

"""ExecutionResult observability fields across execution paths.

Every trace attribute the obs/ layer exports originates in the fields
under test here — ``jit``, ``jit_recorded``, ``jit_deopt``,
``maintained``, ``maintain_fallback``, ``replanned``, ``shards``,
``shard_profiles``, ``incremental``, ``feedback`` — so each execution
path (cold, warm incremental, jit'd, deopted, sharded, maintained,
adaptive) must report them consistently: flags that exclude each other
never co-assert, and a fallback reason is present exactly when the flag
says the fast path was not taken.
"""

from __future__ import annotations

import numpy as np

from repro import LobsterEngine, ProgramCache
from repro.gpu.device import DeviceProfile

from _helpers import TC_PROGRAM, random_digraph

EDGES = random_digraph(np.random.default_rng(11), 30, 80)


def run_fresh(engine, edges=EDGES, probs=None, n_runs=1):
    """Run ``n_runs`` fresh databases; return the last result."""
    result = None
    for _ in range(n_runs):
        db = engine.create_database()
        db.add_facts("edge", edges, probs)
        result = engine.run(db)
    return result


def assert_flags_consistent(result):
    """The cross-field invariants every path must satisfy."""
    # Executing from the code cache and recording for it are distinct
    # lifecycle phases of distinct runs.
    assert not (result.jit and result.jit_recorded)
    # A maintain fallback reason exists only when the run did NOT
    # maintain in place.
    if result.maintained:
        assert result.maintain_fallback is None
    if result.maintain_fallback is not None:
        assert not result.maintained
    # Shard accounting: the merged profile is the per-shard profiles'
    # counter-wise merge, and the list length matches the shard count.
    if result.shard_profiles is not None:
        assert len(result.shard_profiles) == result.shards
        merged = DeviceProfile.merge(result.shard_profiles)
        assert merged.kernel_launches == result.profile.kernel_launches
        assert merged.busy_seconds == result.profile.busy_seconds
    else:
        assert result.shards == 1


class TestColdPath:
    def test_cold_run_reports_quiescent_defaults(self):
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache())
        result = run_fresh(engine)
        assert_flags_consistent(result)
        assert result.jit is False
        assert result.jit_recorded is False
        assert result.jit_deopt is None
        assert result.incremental is False
        assert result.maintained is False
        assert result.maintain_fallback is None
        assert result.replanned is False
        assert result.shards == 1
        assert result.shard_profiles is None
        assert result.feedback is None  # non-adaptive: no collection
        assert result.iterations > 0


class TestWarmPaths:
    def test_incremental_run_flags_incremental(self):
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache())
        db = engine.create_database()
        db.add_facts("edge", EDGES[:40])
        engine.run(db)
        db.add_facts("edge", EDGES[40:])
        warm = engine.run(db)
        assert_flags_consistent(warm)
        assert warm.incremental
        assert warm.maintained is False

    def test_maintain_run_flags_maintained_without_fallback(self):
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache())
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2), (2, 3), (0, 3)])
        engine.run(db)
        db.retract_facts("edge", [(0, 1)])
        result = engine.run(db)
        assert_flags_consistent(result)
        assert result.maintained
        assert result.maintain_fallback is None

    def test_sharded_maintain_fallback_reports_reason_and_shards(self):
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), shards=2)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2), (2, 3), (0, 3)])
        engine.run(db)
        db.retract_facts("edge", [(1, 2)])
        result = engine.run(db)
        assert_flags_consistent(result)
        assert not result.maintained
        assert "sharded" in result.maintain_fallback
        assert result.shards == 2


class TestJitPaths:
    def test_lifecycle_fields_over_the_hotness_phases(self):
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), jit=True)
        phases = []
        for _ in range(5):
            result = run_fresh(engine)
            assert_flags_consistent(result)
            phases.append((result.jit, result.jit_recorded))
        # Interpreted warm-up, one recording run, then code-cache entry.
        assert (True, False) in phases
        record_at = phases.index((False, True))
        assert all(jit for jit, _ in phases[record_at + 1 :])

    def test_unsupported_semiring_deopts_with_reason(self):
        engine = LobsterEngine(
            TC_PROGRAM, provenance="addmultprob", cache=ProgramCache(), jit=True
        )
        # Acyclic on purpose: a non-idempotent ⊕ over a cycle would keep
        # accumulating mass and never saturate the fixpoint.
        dag = [(i, i + 1) for i in range(15)] + [(i, i + 2) for i in range(13)]
        result = run_fresh(engine, edges=dag, probs=[0.5] * len(dag), n_runs=4)
        assert_flags_consistent(result)
        assert not result.jit
        assert result.jit_deopt is not None
        assert "non-idempotent" in result.jit_deopt


class TestShardedPath:
    def test_shard_profiles_cover_every_shard(self):
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), shards=3)
        result = run_fresh(engine)
        assert_flags_consistent(result)
        assert result.shards == 3
        assert len(result.shard_profiles) == 3
        assert all(p.kernel_launches > 0 for p in result.shard_profiles)


class TestAdaptivePath:
    def test_replanned_and_feedback_populate_together(self):
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), adaptive=True)
        first = run_fresh(engine)
        assert_flags_consistent(first)
        assert first.replanned  # compile-time plan -> stats-bucket plan
        assert first.feedback is not None
        assert first.feedback.stats_bucket is not None
        assert first.feedback.rule_estimates
        second = run_fresh(engine)
        assert_flags_consistent(second)
        assert second.replanned is False  # same shape: plan reused

"""Stratum offload scheduling (§5.3).

Relations start in host memory; the scheduler decides when to ship them to
the device and back.  The paper's heuristic: find the longest-running
stratum (estimated by its count of recursive joins), then expand the
device-resident window forwards and backwards through adjacent strata, so
intermediate relations never round-trip over the bus.

With scheduling *disabled* (the "None"/"Alloc" ablation arms of Fig. 10),
every stratum naively transfers its inputs in and its outputs out, and the
transfer cost model of :class:`~repro.gpu.device.VirtualDevice` charges
each crossing.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from .compiler import ApmProgram
from . import instructions as I

#: Transfer plan per stratum index: (relations in, relations out).
TransferPlan = dict[int, tuple[tuple[str, ...], tuple[str, ...]]]

#: Plans memoized per compiled program (compile once, plan once): the
#: plan depends only on the program and the optimized flag, and compiled
#: programs are shared across engines through the program cache.
_PLAN_CACHE: "WeakKeyDictionary[ApmProgram, dict[bool, TransferPlan]]" = (
    WeakKeyDictionary()
)


def cached_plan(program: ApmProgram, optimized: bool) -> TransferPlan:
    """Memoized :func:`plan_transfers` keyed on program identity."""
    plans = _PLAN_CACHE.get(program)
    if plans is None:
        plans = _PLAN_CACHE.setdefault(program, {})
    if optimized not in plans:
        plans[optimized] = plan_transfers(program, optimized)
    return plans[optimized]


def stratum_inputs(program: ApmProgram, index: int) -> set[str]:
    """Relations scanned by stratum ``index``."""
    read: set[str] = set()
    for rule in program.strata[index].rules:
        for variant in rule.variants + rule.delta_variants:
            for instruction in variant.instructions:
                if isinstance(instruction, I.Load):
                    read.add(instruction.predicate)
    return read


def stratum_outputs(program: ApmProgram, index: int) -> set[str]:
    return {rule.target for rule in program.strata[index].rules}


def plan_transfers(program: ApmProgram, optimized: bool) -> TransferPlan:
    """Compute per-stratum host<->device transfer sets.

    Returns a map ``stratum index -> (in_relations, out_relations)``;
    strata absent from the map incur no transfers at their boundary.
    """
    n = len(program.strata)
    if n == 0:
        return {}

    if not optimized:
        return {
            index: (
                tuple(sorted(stratum_inputs(program, index))),
                tuple(sorted(stratum_outputs(program, index))),
            )
            for index in range(n)
        }

    # Optimized: one contiguous device window around the hottest stratum.
    scores = [stratum.score for stratum in program.strata]
    hottest = max(range(n), key=lambda index: scores[index])
    start = hottest
    end = hottest
    # Expand over any adjacent stratum that exchanges data with the
    # window — shipping it too avoids a round trip of its inputs/outputs.
    changed = True
    while changed:
        changed = False
        if start > 0 and (
            stratum_outputs(program, start - 1) & _window_inputs(program, start, end)
        ):
            start -= 1
            changed = True
        if end < n - 1 and (
            stratum_inputs(program, end + 1) & _window_outputs(program, start, end)
        ):
            end += 1
            changed = True

    window_in = _window_inputs(program, start, end)
    window_out = _window_outputs(program, start, end)
    plan: TransferPlan = {}
    plan[start] = (tuple(sorted(window_in)), ())
    outputs_entry = plan.get(end, ((), ()))
    plan[end] = (outputs_entry[0] if end != start else plan[start][0], tuple(sorted(window_out)))
    if end == start:
        plan[start] = (tuple(sorted(window_in)), tuple(sorted(window_out)))
    return plan


def _window_inputs(program: ApmProgram, start: int, end: int) -> set[str]:
    produced: set[str] = set()
    needed: set[str] = set()
    for index in range(start, end + 1):
        needed |= stratum_inputs(program, index) - produced
        produced |= stratum_outputs(program, index)
    return needed


def _window_outputs(program: ApmProgram, start: int, end: int) -> set[str]:
    out: set[str] = set()
    for index in range(start, end + 1):
        out |= stratum_outputs(program, index)
    return out & set(program.queries) | (
        out & _downstream_inputs(program, end)
    )


def _downstream_inputs(program: ApmProgram, end: int) -> set[str]:
    needed: set[str] = set()
    for index in range(end + 1, len(program.strata)):
        needed |= stratum_inputs(program, index)
    return needed

"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables or figures: it runs
the same logic program on Lobster and on the relevant baselines, prints
rows shaped like the paper's, and asserts the *shape* of the result (who
wins, roughly by how much) rather than absolute numbers — our substrate
is a simulator, not the authors' testbed (see EXPERIMENTS.md).

Measurement goes through :mod:`repro.perf`: :func:`timed` runs multiple
trials after warmups and yields a :class:`Measurement` whose statistics
(mean ± stddev, 95% CI) come from :mod:`repro.perf.stats`;
:func:`speedup` returns a typed :class:`~repro.perf.stats.Ratio` (never
the old silent ``"-"`` string); and every benchmark registers its
headline numbers with :func:`report`, which persists them as
schema-versioned ``BENCH_<suite>.json`` records — the machine-readable
trail ``run_all.py`` aggregates, summarizes, and regression-gates.
"""

from __future__ import annotations

import atexit
import datetime
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import __version__
from repro.errors import DeviceOutOfMemory, EvaluationTimeout
from repro.perf.record import (
    BenchmarkResult,
    SuiteRecord,
    environment_fingerprint,
    record_path,
    write_record,
)
from repro.perf.stats import Ratio, TrialStats, ratio_of, summarize


@dataclass
class Measurement:
    """Multi-trial wall-clock measurement of one benchmark cell."""

    samples: list[float] = field(default_factory=list)
    status: str = "ok"  # ok | oom | timeout
    warmups: int = 0

    @property
    def seconds(self) -> float | None:
        """Trial mean (the single comparable number); None off-status."""
        if self.status != "ok" or not self.samples:
            return None
        return self.stats.mean

    @property
    def stats(self) -> TrialStats:
        return summarize(self.samples)

    @property
    def label(self) -> str:
        if self.status == "oom":
            return "OOM"
        if self.status == "timeout":
            return "timeout"
        if len(self.samples) > 1:
            stats = self.stats
            return f"{stats.mean:.3f}±{stats.stddev:.3f}s"
        return f"{self.seconds:.3f}s"


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def timed(
    fn,
    trials: int | None = None,
    warmups: int | None = None,
    setup=None,
) -> Measurement:
    """Run ``fn`` for ``warmups`` discarded runs then ``trials`` timed
    runs, mapping OOM/timeout to status labels.

    Defaults come from ``LOBSTER_BENCH_TRIALS`` / ``LOBSTER_BENCH_WARMUPS``
    (``run_all.py`` sets both), falling back to the old single-shot
    behavior (1 trial, 0 warmups) so a bare ``pytest benchmarks/...``
    stays fast.

    ``setup``, when given, runs untimed before every trial (warmups
    included) and its return value is passed to ``fn``.  Use it when the
    measured call consumes state — e.g. evaluating a database to
    fixpoint: re-running the same db measures the warm incremental path,
    while rebuilding it inside ``fn`` charges setup to the engine.
    """
    if trials is None:
        trials = _env_int("LOBSTER_BENCH_TRIALS", 1)
    if warmups is None:
        warmups = _env_int("LOBSTER_BENCH_WARMUPS", 0)
    measurement = Measurement(warmups=warmups)
    try:
        for index in range(warmups + max(trials, 1)):
            args = () if setup is None else (setup(),)
            start = time.perf_counter()
            fn(*args)
            elapsed = time.perf_counter() - start
            if index >= warmups:
                measurement.samples.append(elapsed)
    except DeviceOutOfMemory:
        return Measurement(status="oom", warmups=warmups)
    except EvaluationTimeout:
        return Measurement(status="timeout", warmups=warmups)
    return measurement


def speedup(baseline: Measurement, ours: Measurement) -> Ratio:
    """Typed speedup of ``ours`` over ``baseline`` with propagated CI.

    Unmeasurable comparisons (either side OOM'd / timed out / measured
    zero) return a :class:`Ratio` whose ``status`` says why; it renders
    as ``-`` in tables but downstream assertions can — and should — check
    ``ratio.ok`` instead of silently skipping.
    """
    for side, measurement in (("baseline", baseline), ("ours", ours)):
        if measurement.status != "ok" or not measurement.samples:
            return Ratio(None, status=f"{side}-{measurement.status}")
    return ratio_of(baseline.stats, ours.stats)


def profile_metrics(profile) -> dict[str, float]:
    """The modeled DeviceProfile counters a record carries alongside wall
    time — the machine-independent clocks regression gates trust."""
    return {
        "busy_seconds": profile.busy_seconds,
        "kernel_seconds": profile.kernel_seconds,
        "exchange_seconds": profile.exchange_seconds,
        "transfer_seconds": profile.transfer_seconds,
        "kernel_launches": float(profile.kernel_launches),
        "exchange_bytes": float(profile.exchange_bytes),
    }


# -- machine-readable result registry ---------------------------------------

#: Suite name -> SuiteRecord being accumulated by this process.  Flushed
#: at interpreter exit: one ``BENCH_<suite>.json`` per suite, either into
#: ``$LOBSTER_BENCH_FRAGMENTS`` (run_all's per-trial collection dir) or
#: straight into ``results/`` for standalone pytest runs.
_RECORDS: dict[str, SuiteRecord] = {}


def report(
    suite: str,
    name: str,
    measurement: Measurement | None = None,
    *,
    samples: list[float] | None = None,
    unit: str = "s",
    metrics: dict[str, float] | None = None,
    **attrs,
) -> None:
    """Register one benchmark's numbers for the suite's JSON record.

    Pass either a wall-clock :class:`Measurement` or raw ``samples`` with
    a ``unit`` (``modeled_s`` for the simulator clock).  ``metrics``
    carries modeled DeviceProfile counters; ``attrs`` free-form context
    (rows, shards, provenance...).
    """
    if measurement is not None:
        result = BenchmarkResult(
            name=name,
            samples=list(measurement.samples),
            unit="s",
            warmups=measurement.warmups,
            status=measurement.status,
            metrics=dict(metrics or {}),
            attrs=dict(attrs),
        )
    else:
        result = BenchmarkResult(
            name=name,
            samples=list(samples or []),
            unit=unit,
            status="ok" if samples else "failed",
            metrics=dict(metrics or {}),
            attrs=dict(attrs),
        )
    suite_record = _RECORDS.get(suite)
    if suite_record is None:
        suite_record = SuiteRecord(
            suite=suite,
            created=datetime.datetime.now().isoformat(timespec="seconds"),
            environment=environment_fingerprint(__version__),
        )
        _RECORDS[suite] = suite_record
    suite_record.add(result)


def _flush_records() -> None:
    if not _RECORDS:
        return
    fragments = os.environ.get("LOBSTER_BENCH_FRAGMENTS")
    out_dir = Path(fragments) if fragments else RESULTS_DIR
    for suite, suite_record in _RECORDS.items():
        try:
            write_record(suite_record, record_path(out_dir, suite))
        except OSError:
            pass  # results are advisory at exit; never fail teardown


atexit.register(_flush_records)


def record(benchmark, fn) -> None:
    """Run a figure's table-printing + shape assertions under the
    pytest-benchmark fixture, so the figure tests execute (and print their
    paper-shaped tables) in ``--benchmark-only`` mode.  The heavy
    measurement happens in module-scoped fixtures; the recorded time is
    the check itself."""
    benchmark.pedantic(fn, rounds=1, iterations=1)


#: Paper-shaped tables are also appended here, so they survive pytest's
#: output capture when running without ``-s``.  ``tables.txt`` is
#: per-run scratch (run_all.py truncates it at the start of a sweep and
#: it is not version-tracked); the durable artifacts in results/ are the
#: timestamped ``summary-*.md`` files and the ``BENCH_*.json`` records.
RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "tables.txt"


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with RESULTS_PATH.open("a") as handle:
        handle.write(text)

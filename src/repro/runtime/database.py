"""The fact database: EDB input facts + IDB derived relations.

Facts are registered through :meth:`Database.add_facts`; probabilistic
facts additionally carry probabilities and optional mutual-exclusion
groups.  Input facts receive globally contiguous ids (returned to the
caller, which is how the neural bridge routes gradients back), and
exclusion groups occupy contiguous id ranges — the invariant top-1-proof
conflict detection relies on.
"""

from __future__ import annotations

import numpy as np

from .relation import StoredRelation
from .table import Table
from ..errors import ResolutionError
from ..provenance.base import Provenance


class Database:
    """Named relations sharing one provenance semiring."""

    def __init__(self, schemas: dict[str, tuple[np.dtype, ...]], provenance: Provenance):
        self.provenance = provenance
        self.schemas = dict(schemas)
        self.relations: dict[str, StoredRelation] = {}
        self._pending: dict[str, tuple[list[tuple], list[int]]] = {}
        self._probs: list[float] = []
        self._groups: list[int] = []
        self._next_group = 0
        self.input_probs = np.zeros(0, dtype=np.float64)
        self.exclusion_groups = np.zeros(0, dtype=np.int64)
        self._finalized = False

    # ------------------------------------------------------------------

    @property
    def n_input_facts(self) -> int:
        return len(self._probs)

    def relation(self, name: str) -> StoredRelation:
        rel = self.relations.get(name)
        if rel is None:
            if name not in self.schemas:
                raise ResolutionError(f"unknown relation {name!r}")
            rel = StoredRelation(name, self.schemas[name], self.provenance)
            self.relations[name] = rel
        return rel

    def new_exclusion_group(self) -> int:
        """Reserve a mutual-exclusion group id for use across several
        :meth:`add_facts` calls (e.g. op candidates spread over multiple
        relations).  Calls sharing a group must be issued back-to-back so
        the group's fact ids stay contiguous — top-1-proof conflict
        detection relies on that invariant."""
        group = self._next_group
        self._next_group += 1
        return group

    def add_facts(
        self,
        name: str,
        rows: list[tuple],
        probs: list[float] | np.ndarray | None = None,
        exclusive: bool = False,
        group: int | None = None,
    ) -> np.ndarray:
        """Register input facts for relation ``name``.

        ``probs`` attaches a probability per row (None = discrete facts).
        ``exclusive=True`` puts all rows of this call into one fresh
        mutual-exclusion group (e.g. the outcomes of one softmax);
        ``group`` joins an existing group from
        :meth:`new_exclusion_group` instead.
        Returns the assigned input-fact ids (−1 for discrete facts).
        """
        if self._finalized:
            raise RuntimeError("database already finalized")
        if name not in self.schemas:
            self.schemas[name] = self._infer_schema(rows)
        pending_rows, pending_ids = self._pending.setdefault(name, ([], []))
        if probs is None:
            ids = np.full(len(rows), -1, dtype=np.int64)
            pending_rows.extend(tuple(row) for row in rows)
            pending_ids.extend([-1] * len(rows))
            return ids
        if len(probs) != len(rows):
            raise ValueError("probs length must match rows length")
        if group is None:
            group = -1
            if exclusive:
                group = self.new_exclusion_group()
        start = len(self._probs)
        ids = np.arange(start, start + len(rows), dtype=np.int64)
        for row, prob in zip(rows, probs):
            pending_rows.append(tuple(row))
            pending_ids.append(len(self._probs))
            self._probs.append(float(prob))
            self._groups.append(group)
        return ids

    @staticmethod
    def _infer_schema(rows: list[tuple]) -> tuple[np.dtype, ...]:
        if not rows:
            return ()
        arity = len(rows[0])
        return tuple(
            np.dtype(np.float64)
            if any(isinstance(row[j], float) for row in rows)
            else np.dtype(np.int64)
            for j in range(arity)
        )

    def finalize(self) -> None:
        """Bind the provenance to the input facts and load EDB tables."""
        if self._finalized:
            return
        self.input_probs = np.asarray(self._probs, dtype=np.float64)
        self.exclusion_groups = np.asarray(self._groups, dtype=np.int64)
        self.provenance.setup(self.input_probs, self.exclusion_groups)
        for name, (rows, ids) in self._pending.items():
            if not rows:
                continue
            tags = self.provenance.input_tags(np.asarray(ids, dtype=np.int64))
            table = Table.from_rows(rows, self.schemas[name], tags)
            self.relation(name).set_facts(table)
        self._finalized = True

    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        return sum(rel.nbytes() for rel in self.relations.values())

    def result(self, name: str) -> Table:
        """Final contents of a relation after execution."""
        return self.relation(name).snapshot("full")

    def result_probs(self, name: str) -> tuple[list[tuple], np.ndarray]:
        table = self.result(name)
        return table.rows(), self.provenance.prob(table.tags)

"""Cost-based vs. heuristic planning on skew — the join-order payoff.

Three workloads, each run under the syntactic heuristic planner and the
statistics-driven cost-based planner (``LobsterEngine(adaptive=True)``):

* **skewed join** — the motivating case: two large relations and one
  tiny filter relation.  The syntactic planner orders atoms by shared-
  variable counts, so it happily materializes the big x big intermediate
  before the tiny filter applies; the cost-based planner routes the join
  through the tiny relation first.  Gate: >= 1.5x on the modeled
  end-to-end steady-state cost (kernel + overhead seconds — the same
  simulated clock every other benchmark reads).
* **skewed CSPA** — the Graspan grammar over a fact base with one hub
  variable fanning out (heavy-hitter skew in ``assign``): the CMS inner
  product prices the hub join and the planner reorders around it.
* **skewed TC** — transitive closure over a hub-and-spokes graph plus a
  body variant with a selective ``anchor`` relation, exercising
  cost-based ordering inside a recursive stratum.

Identity of results between both planners is asserted for every
workload.  ``LOBSTER_PLANNER_TINY=1`` shrinks inputs for CI smoke runs
(the >= 1.5x gate is skipped there: tiny inputs are launch-latency
noise); a versioned markdown summary lands in ``benchmarks/results/``
via ``run_all.py``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import LobsterEngine, ProgramCache
from repro.workloads.analytics import CSPA

from _harness import print_table, profile_metrics, record, report

SUITE = "planner"

TINY = bool(os.environ.get("LOBSTER_PLANNER_TINY"))

SKEWED_JOIN = """
rel hit(x, z) :- big_a(x, y) and big_b(y, z) and tiny(x).
query hit
"""

SKEWED_TC = """
rel reach(x, y) :- edge(x, y) and anchor(x).
rel reach(x, y) :- reach(x, z) and edge(z, y).
query reach
"""


def modeled_seconds(result) -> float:
    """The comparable steady-state cost: modeled device busy time."""
    return result.profile.busy_seconds


def skewed_join_facts():
    n = 1200 if TINY else 12_000
    domain = max(40, n // 20)
    rng = np.random.default_rng(7)
    big_a = [(int(a), int(b)) for a, b in rng.integers(0, domain, size=(n, 2))]
    big_b = [(int(a), int(b)) for a, b in rng.integers(0, domain, size=(n, 2))]
    tiny = [(i,) for i in range(3)]
    return {"big_a": big_a, "big_b": big_b, "tiny": tiny}


def skewed_cspa_facts():
    """A pointer-analysis fact base with a hub: one variable assigned
    from many places (the heavy hitter the CMS sees)."""
    n_vars = 30 if TINY else 70
    rng = np.random.default_rng(13)
    hub = 1
    assign = {(hub, int(v)) for v in rng.integers(2, n_vars, size=n_vars // 2)}
    src = rng.integers(1, n_vars, size=n_vars * 3)
    dst = (src * rng.uniform(0.0, 1.0, size=len(src))).astype(np.int64)
    assign |= {(int(a), int(b)) for a, b in zip(src, dst) if a != b}
    deref = {
        (int(a), int(b))
        for a, b in zip(
            rng.integers(0, n_vars, size=n_vars // 3),
            rng.integers(0, n_vars, size=n_vars // 3),
        )
    }
    return {"assign": sorted(assign), "dereference": sorted(deref)}


def skewed_tc_facts():
    n_spokes = 60 if TINY else 600
    rng = np.random.default_rng(21)
    edges = {(0, int(s)) for s in range(1, n_spokes)}  # hub fan-out
    chain = list(range(n_spokes, n_spokes + (20 if TINY else 120)))
    edges |= {(a, b) for a, b in zip(chain, chain[1:])}
    extra = rng.integers(1, n_spokes, size=n_spokes // 2)
    edges |= {(int(a), int(a) % 7 + 1) for a in extra}
    anchor = [(chain[0],)]
    return {"edge": sorted(edges), "anchor": anchor}


WORKLOADS = {
    "skewed-join": (SKEWED_JOIN, "hit", skewed_join_facts),
    "skewed-CSPA": (CSPA, "value_flow", skewed_cspa_facts),
    "skewed-TC": (SKEWED_TC, "reach", skewed_tc_facts),
}


def run_once(source, facts, adaptive: bool):
    cache = ProgramCache()
    engine = LobsterEngine(source, cache=cache, adaptive=adaptive)
    db = engine.create_database()
    for name, rows in facts.items():
        db.add_facts(name, rows)
    result = engine.run(db)
    return engine, db, result


@pytest.fixture(scope="module")
def results():
    out = {}
    for name, (source, query, loader) in WORKLOADS.items():
        facts = loader()
        _, hdb, heuristic = run_once(source, facts, adaptive=False)
        _, adb, cost_based = run_once(source, facts, adaptive=True)
        out[name] = (query, hdb, heuristic, adb, cost_based)
        for planner, result in (("heuristic", heuristic), ("cost-based", cost_based)):
            report(
                SUITE, f"{name}/{planner}",
                samples=[modeled_seconds(result)], unit="modeled_s",
                metrics=profile_metrics(result.profile),
                planner=planner, tiny=TINY,
            )
    return out


def test_cost_based_vs_heuristic(results, benchmark):
    def check():
        table = []
        for name, (query, hdb, heuristic, adb, cost_based) in results.items():
            h_s = modeled_seconds(heuristic)
            c_s = modeled_seconds(cost_based)
            feedback = cost_based.feedback
            table.append(
                [
                    name,
                    hdb.result(query).n_rows,
                    f"{h_s * 1e3:.3f}ms",
                    f"{c_s * 1e3:.3f}ms",
                    f"{h_s / c_s:.2f}x" if c_s else "-",
                    f"{feedback.max_drift():.1f}" if feedback else "-",
                ]
            )
        print_table(
            "Planner — cost-based vs heuristic (modeled busy seconds)"
            + (" (tiny)" if TINY else ""),
            ["workload", "rows", "heuristic", "cost-based", "speedup", "drift"],
            table,
        )

        # Identity: both planners derive the same relation, always.
        for name, (query, hdb, _, adb, _) in results.items():
            assert adb.result(query).rows() == hdb.result(query).rows(), name

        # The planner consulted statistics on every workload.
        for name, (_, _, _, _, cost_based) in results.items():
            assert cost_based.feedback is not None, name
            assert cost_based.feedback.stats_bucket is not None, name

        if not TINY:
            # The headline gate: >= 1.5x end-to-end on the skewed join.
            _, _, heuristic, _, cost_based = results["skewed-join"]
            speedup = modeled_seconds(heuristic) / modeled_seconds(cost_based)
            assert speedup >= 1.5, f"skewed-join speedup {speedup:.2f}x < 1.5x"
            # And the cost-based plan never loses on the other shapes.
            for name in ("skewed-CSPA", "skewed-TC"):
                _, _, h, _, c = results[name]
                assert modeled_seconds(c) <= modeled_seconds(h) * 1.10, name

    record(benchmark, check)


def test_replan_loop_converges(benchmark):
    """Serving-shaped loop: same program, drifting request shapes; the
    engine re-plans on bucket changes and the plan cache ends up holding
    one artifact per observed shape (not one per request)."""

    def run():
        cache = ProgramCache()
        engine = LobsterEngine(SKEWED_JOIN, cache=cache, adaptive=True)
        shapes = [60, 60, 60, 1500, 1500, 60] if TINY else [
            200, 200, 200, 6000, 6000, 200,
        ]
        rng = np.random.default_rng(3)
        replans = 0
        for n in shapes:
            db = engine.create_database()
            domain = max(20, n // 20)
            db.add_facts(
                "big_a",
                [(int(a), int(b)) for a, b in rng.integers(0, domain, size=(n, 2))],
            )
            db.add_facts(
                "big_b",
                [(int(a), int(b)) for a, b in rng.integers(0, domain, size=(n, 2))],
            )
            db.add_facts("tiny", [(1,), (2,)])
            result = engine.run(db)
            replans += bool(result.replanned)
        # Re-planning tracks shape *changes*, not request count.
        assert replans < len(shapes)
        assert replans >= 2  # small -> big -> small transitions

    record(benchmark, run)

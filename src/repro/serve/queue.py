"""The scheduler's request queue: per-(class, program) micro-batch groups.

Admitted requests wait in FIFO *groups* keyed by ``(slo class, compiled
program key)`` — the compatibility unit for micro-batching, since only
requests sharing one compiled program can ride one warm interpreter.  A
group becomes *ready* to dispatch when it has coalesced a full batch or
its oldest request has waited out the class's batching window
(``max_batch_delay_s``); ready groups dispatch in (class priority,
oldest arrival) order so interactive traffic cuts ahead of batch.

The queue is a single-threaded structure owned by the scheduler's event
loop; concurrent producers go through the scheduler's intake, not here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .request import Request, SLOClass

__all__ = ["BatchGroup", "RequestQueue"]


@dataclass
class BatchGroup:
    """One FIFO of compatible requests awaiting coalescing."""

    slo: str
    program_key: str
    requests: deque[Request] = field(default_factory=deque)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def oldest_arrival_s(self) -> float:
        return self.requests[0].arrival_s

    def ready_at(self, slo_class: SLOClass) -> float:
        """Serve-clock time at which this group becomes dispatchable:
        immediately once full, else when the batching window closes on
        the oldest request."""
        if len(self.requests) >= slo_class.max_batch_size:
            return self.oldest_arrival_s
        return self.oldest_arrival_s + slo_class.max_batch_delay_s


class RequestQueue:
    """Micro-batch groups with depth accounting per SLO class."""

    def __init__(self, classes: dict[str, SLOClass]):
        self.classes = classes
        self._groups: dict[tuple[str, str], BatchGroup] = {}
        self._depths: dict[str, int] = {name: 0 for name in classes}

    def __len__(self) -> int:
        return sum(self._depths.values())

    @property
    def total_depth(self) -> int:
        return len(self)

    def depth(self, slo: str) -> int:
        return self._depths.get(slo, 0)

    def push(self, request: Request) -> BatchGroup:
        key = (request.slo, request.program_key)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = BatchGroup(request.slo, request.program_key)
        group.requests.append(request)
        self._depths[request.slo] = self._depths.get(request.slo, 0) + 1
        return group

    def pop_batch(self, group: BatchGroup, max_n: int) -> list[Request]:
        """Dequeue up to ``max_n`` requests from ``group`` FIFO-order."""
        batch: list[Request] = []
        while group.requests and len(batch) < max_n:
            batch.append(group.requests.popleft())
        self._depths[group.slo] -= len(batch)
        if not group.requests:
            del self._groups[(group.slo, group.program_key)]
        return batch

    def groups(self) -> list[BatchGroup]:
        """The non-empty micro-batch groups (admission prices its
        backlog estimate over these)."""
        return list(self._groups.values())

    def ready_groups(self, now: float) -> list[BatchGroup]:
        """Groups dispatchable at ``now``, ordered (priority, oldest
        arrival, program key) for deterministic dispatch."""
        ready = [
            group
            for group in self._groups.values()
            if group.ready_at(self.classes[group.slo]) <= now
        ]
        ready.sort(
            key=lambda g: (
                self.classes[g.slo].priority,
                g.oldest_arrival_s,
                g.program_key,
            )
        )
        return ready

    def next_ready_time(self) -> float | None:
        """The earliest serve-clock time any group becomes dispatchable
        (``None`` when the queue is empty)."""
        times = [
            group.ready_at(self.classes[group.slo])
            for group in self._groups.values()
        ]
        return min(times) if times else None

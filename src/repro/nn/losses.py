"""Loss functions."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def binary_cross_entropy(pred: Tensor, target: np.ndarray) -> Tensor:
    """BCE over probabilities in [0, 1] (the paper's yes/no supervision)."""
    target = np.asarray(target, dtype=np.float64)
    eps = 1e-7
    clipped = Tensor(
        np.clip(pred.data, eps, 1 - eps),
        _parents=(pred,),
        _backward=lambda g: [(pred, g * ((pred.data > eps) & (pred.data < 1 - eps)))],
    )
    loss = -(
        Tensor(target) * clipped.log() + Tensor(1.0 - target) * (1.0 - clipped).log()
    )
    return loss.mean()


def nll(pred_probs: Tensor, target_index: np.ndarray) -> Tensor:
    """Negative log likelihood over probability rows."""
    target_index = np.asarray(target_index, dtype=np.int64)
    rows = np.arange(len(target_index))

    picked_data = pred_probs.data[rows, target_index]

    def backward(g):
        grad = np.zeros_like(pred_probs.data)
        grad[rows, target_index] = g
        return [(pred_probs, grad)]

    picked = Tensor(picked_data, _parents=(pred_probs,), _backward=backward)
    return -picked.log().mean()


def mse(pred: Tensor, target: np.ndarray) -> Tensor:
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()

"""Model-based property test: StoredRelation vs a dict reference model.

Random sequences of delta batches are folded into both the vectorized
StoredRelation and a plain-Python model implementing the same ⊕ /
saturation semantics; contents, tags, and frontier sets must agree after
every step.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.provenance import create
from repro.runtime.relation import StoredRelation
from repro.runtime.table import Table

INT1 = (np.dtype(np.int64),)

delta_batches = st.lists(
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 9)),  # (row value, prob decile)
        min_size=0,
        max_size=8,
    ),
    min_size=1,
    max_size=6,
)


@given(delta_batches)
@settings(max_examples=60, deadline=None)
def test_minmaxprob_advance_matches_model(batches):
    provenance = create("minmaxprob")
    probs = np.linspace(0.05, 0.95, 10)
    all_probs = []
    fact_rows = []
    for batch in batches:
        for value, decile in batch:
            fact_rows.append(value)
            all_probs.append(probs[decile])
    provenance.setup(np.array(all_probs if all_probs else [0.0]))

    relation = StoredRelation("r", INT1, provenance)
    model: dict[int, float] = {}

    fact_id = 0
    for batch in batches:
        rows = []
        ids = []
        for value, _ in batch:
            rows.append((value,))
            ids.append(fact_id)
            fact_id += 1
        tags = provenance.input_tags(np.array(ids, dtype=np.int64)) if rows else (
            provenance.one_tags(0)
        )
        delta = Table.from_rows(rows, INT1, tags) if rows else Table.empty(INT1, provenance)

        # Reference model: ⊕ = max, frontier = new or strictly improved.
        expected_frontier = set()
        batch_best: dict[int, float] = {}
        for (value,), fid in zip(rows, ids):
            p = float(provenance.input_probs[fid])
            batch_best[value] = max(batch_best.get(value, 0.0), p)
        for value, p in batch_best.items():
            if value not in model:
                model[value] = p
                expected_frontier.add(value)
            elif p > model[value] + 1e-9:
                model[value] = p
                expected_frontier.add(value)

        frontier_count = relation.advance(delta)

        got = dict(
            zip(
                (row[0] for row in relation.snapshot("full").rows()),
                provenance.prob(relation.snapshot("full").tags),
            )
        )
        assert got.keys() == model.keys()
        for value, p in model.items():
            assert got[value] == pytest.approx(p)
        got_frontier = {row[0] for row in relation.snapshot("recent").rows()}
        assert got_frontier == expected_frontier
        assert frontier_count == len(expected_frontier)


@given(delta_batches)
@settings(max_examples=40, deadline=None)
def test_unit_advance_matches_set_model(batches):
    provenance = create("unit")
    provenance.setup(np.zeros(0))
    relation = StoredRelation("r", INT1, provenance)
    model: set[int] = set()

    for batch in batches:
        rows = [(value,) for value, _ in batch]
        delta = (
            Table.from_rows(rows, INT1, provenance.one_tags(len(rows)))
            if rows
            else Table.empty(INT1, provenance)
        )
        fresh = {value for value, _ in batch} - model
        model |= fresh
        count = relation.advance(delta)
        assert count == len(fresh)
        assert {r[0] for r in relation.snapshot("full").rows()} == model
        assert {r[0] for r in relation.snapshot("recent").rows()} == fresh

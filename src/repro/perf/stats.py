"""Dependency-free trial statistics for benchmark observability.

The measurement discipline follows SPEC CPU2026 (PAPERS.md): a benchmark
is *n* timed trials after *w* discarded warmups, reported as mean ±
stddev with a 95% confidence interval from the Student t-distribution —
never a single-shot point.  Speedups are ratios of trial means with the
trial noise propagated into the ratio's own interval, and suite-level
claims are geometric means over per-benchmark ratios (again with
propagated intervals), so "X× faster" always comes with the error bars
that justify it.

Everything here is pure stdlib ``math`` over ``list[float]`` — the
benchmark harness must not drag engine dependencies (numpy arrays,
device state) into its own timing loop, and the t quantiles come from a
built-in table rather than scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "Ratio",
    "TrialStats",
    "geomean_ratio",
    "ratio_of",
    "summarize",
    "t_quantile",
]

#: Two-sided Student-t critical values by confidence level, indexed by
#: degrees of freedom 1..30 then (40, 60, 120).  Standard statistical
#: table values (e.g. NIST/SEMATECH e-Handbook §1.3.6.7.2); beyond the
#: listed dfs the normal quantile is used.  Lookup is conservative: a df
#: between entries takes the next *lower* entry's (larger) value.
_T_TABLE: dict[float, tuple[list[float], list[tuple[int, float]], float]] = {
    0.90: (
        [
            6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
            1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
            1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
            1.701, 1.699, 1.697,
        ],
        [(40, 1.684), (60, 1.671), (120, 1.658)],
        1.645,
    ),
    0.95: (
        [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
            2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
            2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
            2.048, 2.045, 2.042,
        ],
        [(40, 2.021), (60, 2.000), (120, 1.980)],
        1.960,
    ),
    0.99: (
        [
            63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
            3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
            2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
            2.763, 2.756, 2.750,
        ],
        [(40, 2.704), (60, 2.660), (120, 2.617)],
        2.576,
    ),
}


def t_quantile(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom.

    ``confidence`` must be one of the tabulated levels (0.90, 0.95,
    0.99).  For a df between table entries the next lower entry is used
    (wider interval — never overclaims precision).
    """
    if confidence not in _T_TABLE:
        raise ValueError(
            f"confidence {confidence} not tabulated; "
            f"choose one of {sorted(_T_TABLE)}"
        )
    if df < 1:
        raise ValueError("t quantile needs at least 1 degree of freedom")
    dense, sparse, normal = _T_TABLE[confidence]
    if df <= len(dense):
        return dense[df - 1]
    if df > 1000:
        return normal
    value = dense[-1]
    for edge, quantile in sparse:
        if df >= edge:
            value = quantile
    return value


@dataclass(frozen=True)
class TrialStats:
    """Summary of one benchmark's timed trials."""

    n: int
    mean: float
    stddev: float
    #: Half-width of the two-sided confidence interval; 0.0 for n < 2
    #: (a single trial has no measurable noise — the interval degenerates
    #: and downstream ratio propagation treats it as exact).
    ci: float
    minimum: float
    maximum: float
    confidence: float = 0.95
    samples: tuple[float, ...] = field(default=(), repr=False)

    @property
    def lo(self) -> float:
        return self.mean - self.ci

    @property
    def hi(self) -> float:
        return self.mean + self.ci

    def label(self, scale: float = 1.0, unit: str = "s") -> str:
        """``mean ± stddev unit [ci lo, hi]`` rendered at ``scale``."""
        if self.n < 2:
            return f"{self.mean * scale:.3f}{unit}"
        return (
            f"{self.mean * scale:.3f}±{self.stddev * scale:.3f}{unit} "
            f"[{self.lo * scale:.3f}, {self.hi * scale:.3f}]"
        )


def summarize(
    samples: list[float], warmups: int = 0, confidence: float = 0.95
) -> TrialStats:
    """Trial statistics over ``samples`` after discarding the first
    ``warmups`` of them (SPEC-style: warmup trials prime caches/JITs and
    never count)."""
    kept = list(samples[warmups:])
    if not kept:
        raise ValueError(
            f"no samples left: {len(samples)} trial(s), {warmups} warmup(s)"
        )
    n = len(kept)
    mean = math.fsum(kept) / n
    if n > 1:
        variance = math.fsum((x - mean) ** 2 for x in kept) / (n - 1)
        stddev = math.sqrt(variance)
        ci = t_quantile(n - 1, confidence) * stddev / math.sqrt(n)
    else:
        stddev = 0.0
        ci = 0.0
    return TrialStats(
        n=n,
        mean=mean,
        stddev=stddev,
        ci=ci,
        minimum=min(kept),
        maximum=max(kept),
        confidence=confidence,
        samples=tuple(kept),
    )


@dataclass(frozen=True)
class Ratio:
    """A speedup (or slowdown) ratio with a status and an interval.

    Replaces the old harness convention of returning the *string* ``"-"``
    for unmeasurable ratios, which downstream shape assertions silently
    skipped: a :class:`Ratio` is always inspectable (``ratio.ok``), only
    *renders* as ``-`` when unmeasurable, and carries the propagated
    confidence bounds so a gate can ask "is this ≥ 2× even at the
    pessimistic end of the interval?"
    """

    value: float | None
    lo: float | None = None
    hi: float | None = None
    #: ``ok`` | a reason the ratio is unmeasurable (``baseline-oom``,
    #: ``ours-timeout``, ``zero-denominator``, ``empty``, ...).
    status: str = "ok"

    @property
    def ok(self) -> bool:
        return self.status == "ok" and self.value is not None

    def __str__(self) -> str:
        if not self.ok:
            return "-"
        return f"{self.value:.2f}x"

    def label(self) -> str:
        """Rendering with the interval: ``3.41x [3.12, 3.73]``."""
        if not self.ok:
            return f"- ({self.status})"
        if self.lo is None or self.hi is None or self.hi == self.lo:
            return f"{self.value:.2f}x"
        return f"{self.value:.2f}x [{self.lo:.2f}, {self.hi:.2f}]"


def ratio_of(baseline: TrialStats, ours: TrialStats) -> Ratio:
    """``baseline.mean / ours.mean`` with trial noise propagated.

    First-order (delta-method) propagation of the two means' confidence
    half-widths into the ratio: the relative half-widths add in
    quadrature.  Exact means (n=1 or zero variance — e.g. the simulator's
    modeled clock) contribute nothing, so a ratio of two deterministic
    measurements is a point.
    """
    if ours.mean <= 0.0 or baseline.mean <= 0.0:
        return Ratio(None, status="zero-denominator")
    value = baseline.mean / ours.mean
    rel = math.sqrt(
        (baseline.ci / baseline.mean) ** 2 + (ours.ci / ours.mean) ** 2
    )
    return Ratio(value=value, lo=value / (1.0 + rel), hi=value * (1.0 + rel))


def geomean_ratio(ratios: list[Ratio]) -> Ratio:
    """Geometric mean over the measurable ratios, SPEC-style.

    Per-benchmark log-interval half-widths combine in quadrature and are
    averaged down by the count, so the suite-level claim tightens as
    benchmarks agree.  Unmeasurable inputs are excluded (they carry no
    information, not a zero); an all-unmeasurable input yields status
    ``empty``.
    """
    usable = [r for r in ratios if r.ok]
    if not usable:
        return Ratio(None, status="empty")
    n = len(usable)
    log_mean = math.fsum(math.log(r.value) for r in usable) / n
    value = math.exp(log_mean)
    spread = (
        math.sqrt(
            math.fsum(
                math.log(r.hi / r.value) ** 2
                for r in usable
                if r.hi is not None and r.value
            )
        )
        / n
    )
    return Ratio(
        value=value, lo=value * math.exp(-spread), hi=value * math.exp(spread)
    )

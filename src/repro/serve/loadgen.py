"""Open-loop load generation on the serve clock.

A :class:`LoadGenerator` synthesizes timestamped request streams over
the existing workload generators: arrival gaps are drawn from a seeded
RNG, databases come from a caller-supplied factory, and nothing touches
the host clock — the same seed always produces the same stream, so a
serving run's full latency histogram is replayable bit-for-bit.

Two arrival processes cover the representative load shapes (cf. the
SPEC CPU2026 workload-representativeness discussion, PAPERS.md):

* ``poisson`` — memoryless arrivals at a constant offered rate, the
  M/G/k baseline every latency-throughput curve is swept against;
* ``bursty`` — a two-state modulated Poisson process: a deterministic
  duty cycle alternates an ON phase at ``burst_factor`` times the base
  rate with a quiet OFF phase, producing the arrival clumps that stress
  admission control and queue depth far more than the average rate
  suggests.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .request import Request
from ..errors import LobsterError
from ..runtime.database import Database
from ..runtime.engine import LobsterEngine

__all__ = ["LoadGenerator"]

#: Database factory: ``(rng, index) -> Database`` or
#: ``(rng, index) -> (Database, meta_dict)``.
DatabaseFactory = Callable[[np.random.Generator, int], Any]


class LoadGenerator:
    """Deterministic open-loop request streams over one engine.

    Parameters
    ----------
    engine:
        The compiled program every generated request targets.
    make_database:
        ``(rng, index) -> Database`` (optionally ``(Database, meta)``)
        building one request's input facts from the seeded RNG.
    rate_hz:
        Mean offered load in requests per simulated second.
    n_requests:
        Length of the stream.
    pattern:
        ``"poisson"`` or ``"bursty"``.
    slo / class_mix:
        Either a single SLO class name for the whole stream, or a
        ``{class_name: weight}`` mix sampled per request.
    burst_factor, duty_cycle, cycle_s:
        Bursty-pattern shape: the ON phase runs at ``rate_hz *
        burst_factor`` for ``duty_cycle`` of each ``cycle_s`` window
        (default window: 20 mean inter-arrival times), the OFF phase at
        the complementary rate so the long-run average stays near
        ``rate_hz``.  The OFF rate is floored at 5% of base, so when
        ``burst_factor * duty_cycle > 1`` the average offered rate
        overshoots ``rate_hz`` slightly — the bursts alone already
        exceed the nominal budget.
    """

    def __init__(
        self,
        engine: LobsterEngine,
        make_database: DatabaseFactory,
        *,
        rate_hz: float,
        n_requests: int,
        seed: int = 0,
        pattern: str = "poisson",
        slo: str = "interactive",
        class_mix: dict[str, float] | None = None,
        deadline_s: float | None = None,
        start_s: float = 0.0,
        burst_factor: float = 4.0,
        duty_cycle: float = 0.25,
        cycle_s: float | None = None,
    ):
        if rate_hz <= 0 or n_requests < 0:
            raise LobsterError("need rate_hz > 0 and n_requests >= 0")
        if pattern not in ("poisson", "bursty"):
            raise LobsterError(f"unknown arrival pattern {pattern!r}")
        if not 0 < duty_cycle < 1:
            raise LobsterError("duty_cycle must be in (0, 1)")
        if burst_factor <= 0:
            raise LobsterError("burst_factor must be > 0")
        if cycle_s is not None and cycle_s <= 0:
            raise LobsterError("cycle_s must be > 0")
        self.engine = engine
        self.make_database = make_database
        self.rate_hz = rate_hz
        self.n_requests = n_requests
        self.seed = seed
        self.pattern = pattern
        self.slo = slo
        self.class_mix = dict(class_mix) if class_mix else None
        self.deadline_s = deadline_s
        self.start_s = start_s
        self.burst_factor = burst_factor
        self.duty_cycle = duty_cycle
        self.cycle_s = cycle_s if cycle_s is not None else 20.0 / rate_hz

    # ------------------------------------------------------------------

    def arrival_times(self) -> list[float]:
        """The stream's arrival timestamps (simulated seconds)."""
        rng = np.random.default_rng(self.seed)
        times: list[float] = []
        t = self.start_s
        if self.pattern == "poisson":
            gaps = rng.exponential(1.0 / self.rate_hz, size=self.n_requests)
            for gap in gaps:
                t += float(gap)
                times.append(t)
            return times
        # Bursty: exponential gaps at the current phase's rate; the
        # phase is a deterministic square wave over the cycle window.
        on_rate = self.rate_hz * self.burst_factor
        off_weight = 1.0 - self.burst_factor * self.duty_cycle
        off_rate = max(
            self.rate_hz * off_weight / (1.0 - self.duty_cycle),
            0.05 * self.rate_hz,
        )
        for _ in range(self.n_requests):
            phase = (t - self.start_s) % self.cycle_s
            rate = on_rate if phase < self.duty_cycle * self.cycle_s else off_rate
            t += float(rng.exponential(1.0 / rate))
            times.append(t)
        return times

    def generate(self) -> list[Request]:
        """Build the full request stream (databases included)."""
        rng = np.random.default_rng(self.seed + 1)
        classes = None
        if self.class_mix:
            names = sorted(self.class_mix)
            weights = np.array([self.class_mix[name] for name in names])
            probabilities = weights / weights.sum()
            classes = list(
                rng.choice(names, size=self.n_requests, p=probabilities)
            )
        requests: list[Request] = []
        for index, arrival in enumerate(self.arrival_times()):
            built = self.make_database(rng, index)
            if isinstance(built, tuple):
                database, meta = built
            else:
                database, meta = built, {}
            if not isinstance(database, Database):
                raise LobsterError(
                    "make_database must return a Database "
                    "(or a (Database, meta) pair)"
                )
            requests.append(
                Request(
                    engine=self.engine,
                    database=database,
                    slo=str(classes[index]) if classes else self.slo,
                    arrival_s=arrival,
                    deadline_s=self.deadline_s,
                    meta=dict(meta),
                )
            )
        return requests

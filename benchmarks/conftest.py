"""Make the benchmarks directory importable (for _harness/_train)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

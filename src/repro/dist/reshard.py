"""Cost-gated reshard planning: price a repartition before paying for it.

The planner closes the loop between the stats layer's skew evidence and
the executor's :class:`~repro.dist.partition.ShardMap`: given the
observed per-run busy-seconds and a per-relation workload summary (row
counts, key columns, heavy hitters from
:mod:`repro.stats.hotkeys`), it searches a small candidate space —
shard counts from a configured band, with and without hot-key splits —
and prices each candidate the same way the engine's cost model prices
exchanges:

* **modeled load** is counted in *row units*: a keyed relation's
  residual (non-hot) mass spreads uniformly, each heavy hitter lands
  whole on its key's owner (or ``1/S`` everywhere when split), and the
  bottleneck shard's units stand in for the fix-point's critical path;
* **payback** scales the *observed* busy-seconds by the candidate's
  unit ratio — the planner never claims speedups the model alone
  invents, it extrapolates from a measured run — and multiplies by the
  expected ``horizon_runs`` the new layout will serve;
* **migration cost** is rows-that-change-owner × the exchange byte
  cost, the identical ``latency + bytes/bandwidth`` charge a shuffle of
  the same rows would pay.

A plan **migrates only when payback strictly exceeds migration cost**.
Every decision is deterministic: candidates are enumerated in a fixed
order and ties prefer the status quo, then fewer shards, then fewer
splits — so a fleet of replicas planning from identical stats reaches
identical layouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .partition import ShardMap, hash_rows, reduce_hashes
from ..gpu.device import (
    DEFAULT_EXCHANGE_BANDWIDTH_BYTES_PER_S,
    DEFAULT_EXCHANGE_LATENCY_S,
)
from ..stats.hotkeys import HotKey

__all__ = ["RelationLoad", "ReshardPlan", "ReshardPlanner"]

#: Modeled bytes per routed row (matches CostModel.for_shards: two int64
#: key columns plus an int64 tag).
DEFAULT_ROW_BYTES = 24.0


@dataclass(frozen=True)
class RelationLoad:
    """One relation's contribution to the workload being balanced."""

    rows: float
    key_column: int | None = None
    hot_keys: tuple[HotKey, ...] = ()

    @property
    def hot_mass(self) -> float:
        return min(sum(key.count for key in self.hot_keys), self.rows)


@dataclass(frozen=True)
class ReshardPlan:
    """A priced repartition decision (``migrate`` is the verdict)."""

    target: ShardMap
    current_shards: int
    units_before: float
    units_after: float
    busy_before_s: float
    busy_after_s: float
    payback_s: float
    migration_rows: float
    migration_s: float
    migrate: bool
    reason: str

    @property
    def target_shards(self) -> int:
        return self.target.n_shards

    @property
    def splits(self) -> int:
        return sum(len(v) for v in self.target.splits.values())


def _key_owner(value, n_shards: int) -> int:
    """Owner shard of a key value under the base (unsplit) keyed hash —
    the same single-column ``hash_rows`` + Lemire reduction the
    :class:`ShardMap` applies, so the model and the router agree."""
    column = np.asarray([value])
    if column.dtype.kind == "f":
        column = column.astype(np.float64)
    else:
        column = column.astype(np.int64)
    return int(reduce_hashes(hash_rows([column], 1), n_shards)[0])


class ReshardPlanner:
    """Searches shard-count × hot-key-split candidates and gates
    migration on priced payback."""

    def __init__(
        self,
        key_columns: dict[str, int] | None = None,
        *,
        min_shards: int = 1,
        max_shards: int = 8,
        horizon_runs: int = 8,
        row_bytes: float = DEFAULT_ROW_BYTES,
        exchange_bandwidth_bytes_per_s: float = DEFAULT_EXCHANGE_BANDWIDTH_BYTES_PER_S,
        exchange_latency_s: float = DEFAULT_EXCHANGE_LATENCY_S,
    ):
        if min_shards < 1 or max_shards < min_shards:
            raise ValueError(
                f"need 1 <= min_shards <= max_shards, got "
                f"[{min_shards}, {max_shards}]"
            )
        self.key_columns = dict(key_columns or {})
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.horizon_runs = horizon_runs
        self.row_bytes = row_bytes
        self.exchange_bandwidth_bytes_per_s = exchange_bandwidth_bytes_per_s
        self.exchange_latency_s = exchange_latency_s

    # ------------------------------------------------------------------

    def modeled_units(
        self, shard_map: ShardMap, workload: dict[str, RelationLoad]
    ) -> float:
        """Bottleneck shard's modeled load (row units) under a map."""
        n = shard_map.n_shards
        loads = np.zeros(n)
        for name, load in workload.items():
            keyed = shard_map.key_columns.get(name) is not None
            if not keyed:
                # Row-hash routing spreads everything uniformly; skew in
                # a value column is invisible to it.
                loads += load.rows / n
                continue
            loads += (load.rows - load.hot_mass) / n
            overrides = shard_map.splits.get(name, {})
            for key in load.hot_keys:
                owners = overrides.get(key.value)
                if owners:
                    loads[list(owners)] += key.count / len(owners)
                else:
                    loads[_key_owner(key.value, n)] += key.count
        return float(loads.max()) if n else 0.0

    def _migration_rows(
        self,
        current: ShardMap,
        target: ShardMap,
        workload: dict[str, RelationLoad],
    ) -> float:
        """Modeled rows whose owner changes between the two maps.

        A shard-count change re-homes roughly ``1 - min/max`` of every
        row (Lemire ownership is contiguous in hash space, so growing
        S→S' strands each row with probability ~min/max of keeping its
        shard); toggling a hot key's split moves ``1 - 1/S`` of that
        key's mass.  Capped at the total workload.
        """
        total = sum(load.rows for load in workload.values())
        moved = 0.0
        if current.n_shards != target.n_shards:
            small = min(current.n_shards, target.n_shards)
            large = max(current.n_shards, target.n_shards)
            moved += total * (1.0 - small / large)
        for name, load in workload.items():
            before = current.splits.get(name, {})
            after = target.splits.get(name, {})
            for key in load.hot_keys:
                was = key.value in before
                now = key.value in after
                if was != now:
                    n = target.n_shards if now else current.n_shards
                    moved += key.count * (1.0 - 1.0 / max(n, 1))
        return min(moved, total)

    def migration_seconds(self, migration_rows: float, target_shards: int) -> float:
        """Exchange-model price of moving ``migration_rows`` rows."""
        if migration_rows <= 0.0:
            return 0.0
        nbytes = migration_rows * self.row_bytes
        return (
            self.exchange_latency_s * max(target_shards, 1)
            + nbytes / self.exchange_bandwidth_bytes_per_s
        )

    # ------------------------------------------------------------------

    def candidates(
        self, workload: dict[str, RelationLoad]
    ) -> list[ShardMap]:
        """The deterministic candidate space: every shard count in the
        configured band, with and without splitting every reported heavy
        hitter across the whole shard set."""
        out: list[ShardMap] = []
        any_hot = any(
            load.hot_keys
            for name, load in sorted(workload.items())
            if self.key_columns.get(name) is not None
        )
        for n in range(self.min_shards, self.max_shards + 1):
            out.append(ShardMap(n, key_columns=self.key_columns))
            if any_hot and n > 1:
                splits = {
                    name: {
                        key.value: tuple(range(n)) for key in load.hot_keys
                    }
                    for name, load in sorted(workload.items())
                    if self.key_columns.get(name) is not None
                    and load.hot_keys
                }
                out.append(
                    ShardMap(n, key_columns=self.key_columns, splits=splits)
                )
        return out

    def plan(
        self,
        current: ShardMap,
        workload: dict[str, RelationLoad],
        *,
        busy_s: float,
        horizon_runs: int | None = None,
    ) -> ReshardPlan:
        """Price the best candidate layout against the migration bill.

        ``busy_s`` is the observed per-run busy-seconds under
        ``current`` (the planner's calibration point); ``horizon_runs``
        the number of future runs expected to amortize the migration
        (defaults to the planner's configured horizon).
        """
        horizon = self.horizon_runs if horizon_runs is None else horizon_runs
        units_before = self.modeled_units(current, workload)
        best = current
        best_units = units_before
        for candidate in self.candidates(workload):
            units = self.modeled_units(candidate, workload)
            # Strict improvement with a deterministic margin: ties (and
            # sub-percent noise) keep the earlier — smaller, simpler —
            # candidate, and the status quo beats everything it ties.
            if units < best_units * (1.0 - 1e-9):
                best = candidate
                best_units = units
        same_layout = (
            best.n_shards == current.n_shards
            and best.key_columns == current.key_columns
            and best.splits == current.splits
        )
        if same_layout or units_before <= 0.0:
            return ReshardPlan(
                target=current,
                current_shards=current.n_shards,
                units_before=units_before,
                units_after=units_before,
                busy_before_s=busy_s,
                busy_after_s=busy_s,
                payback_s=0.0,
                migration_rows=0.0,
                migration_s=0.0,
                migrate=False,
                reason="already-balanced",
            )
        busy_after_s = busy_s * best_units / units_before
        payback_s = (busy_s - busy_after_s) * max(horizon, 0)
        migration_rows = self._migration_rows(current, best, workload)
        migration_s = self.migration_seconds(migration_rows, best.n_shards)
        migrate = payback_s > migration_s
        reason = (
            f"payback {payback_s:.3e}s "
            f"{'>' if migrate else '<='} migration {migration_s:.3e}s "
            f"over {horizon} runs"
        )
        return ReshardPlan(
            target=best if migrate else current,
            current_shards=current.n_shards,
            units_before=units_before,
            units_after=best_units,
            busy_before_s=busy_s,
            busy_after_s=busy_after_s,
            payback_s=payback_s,
            migration_rows=migration_rows,
            migration_s=migration_s,
            migrate=migrate,
            reason=reason,
        )

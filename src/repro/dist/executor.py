"""Sharded semi-naive execution across a pool of virtual devices.

One compiled :class:`~repro.apm.compiler.ApmProgram` runs on ``N``
:class:`~repro.gpu.device.VirtualDevice`\\ s under a *partitioned
frontier, replicated closure* scheme — the distributed semi-naive
evaluation used by parallel Datalog engines with broadcast join sides:

* every relation's rows are hash-assigned to exactly one **owner** shard
  (:mod:`repro.dist.partition`);
* each fix-point iteration, every shard executes the stratum's rule
  variants with its ``recent`` frontier restricted to the rows it owns —
  so the probe side of every recursive join, and hence the per-shard
  modeled kernel time, shrinks roughly 1/N;
* the per-shard deltas are **shuffled** to their owner shards
  (:mod:`repro.dist.exchange`), where duplicate derivations from
  different shards are ⊕-combined once (``sort``/``unique⟨⊕⟩``);
* the owners' merged deltas are **all-gathered** so every shard advances
  an identical replica of the closure, keeping build sides local.

Because each shard applies the *same* global deduplicated delta through
the same :meth:`~repro.runtime.relation.StoredRelation.advance` kernels,
shard state never diverges, and the final result matches a single-device
run row-for-row — and tag-for-tag for every commutative ⊕ (all shipped
semirings; floating-point ``addmultprob`` sums may reassociate).

Flat (non-recursive) rules scan only replicated ``full`` partitions, so
running them everywhere would derive each row N times; they are instead
round-robined across shards by rule index.

Negation is not sharded: stratified negation is only sound against
complete relations, and the engine falls back to single-device execution
for such programs rather than approximating (mirroring PR 1's
incremental fallback contract).
"""

from __future__ import annotations

import numpy as np

from .exchange import ExchangeOperator
from .partition import HashPartitioner
from ..apm.compiler import ApmProgram, CompiledStratum
from ..apm.interpreter import DEFAULT_MAX_ITERATIONS, ApmInterpreter
from ..apm.schedule import cached_plan
from ..errors import ExecutionError, LobsterError, RetractionUnsupportedError
from ..gpu.device import VirtualDevice
from ..provenance.base import Provenance
from ..runtime.database import Database
from ..runtime.relation import StoredRelation, dedup_table
from ..runtime.table import Table
from ..stats.feedback import PlanFeedback


class ShardView:
    """One shard's view of the database: replicated relation storage with
    shard-local frontier masks.  Duck-types the small surface of
    :class:`~repro.runtime.database.Database` the interpreter touches."""

    def __init__(self, schemas: dict, provenance: Provenance):
        self.schemas = schemas
        self.provenance = provenance
        self.relations: dict[str, StoredRelation] = {}

    def relation(self, name: str) -> StoredRelation:
        rel = self.relations.get(name)
        if rel is None:
            rel = StoredRelation(name, self.schemas[name], self.provenance)
            self.relations[name] = rel
        return rel

    def total_bytes(self) -> int:
        return sum(rel.nbytes() for rel in self.relations.values())


class ShardedExecutor:
    """Executes APM programs across a pool of shard devices."""

    def __init__(
        self,
        devices: list[VirtualDevice],
        enable_static_reuse: bool = True,
        enable_buffer_reuse: bool = True,
        enable_stratum_scheduling: bool = True,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
    ):
        if len(devices) < 1:
            raise ValueError("ShardedExecutor needs at least one device")
        self.devices = devices
        self.partitioner = HashPartitioner(len(devices))
        self.exchange = ExchangeOperator(self.partitioner, devices)
        self.enable_stratum_scheduling = enable_stratum_scheduling
        self.max_iterations = max_iterations
        self.interpreters = [
            ApmInterpreter(
                device,
                enable_static_reuse=enable_static_reuse,
                enable_buffer_reuse=enable_buffer_reuse,
                enable_stratum_scheduling=enable_stratum_scheduling,
                max_iterations=max_iterations,
            )
            for device in devices
        ]
        self.iterations_run = 0

    @property
    def n_shards(self) -> int:
        return len(self.devices)

    # ------------------------------------------------------------------

    def run(
        self, program: ApmProgram, database: Database, feedback=None
    ) -> None:
        """Execute ``program`` to fix point against ``database``.

        The database's relations are replaced by the (identical-on-all-
        shards) sharded result, so downstream queries, probabilities, and
        gradients read it exactly as after a single-device run.

        ``feedback`` (a :class:`~repro.stats.PlanFeedback`) receives the
        per-shard derived-row counts from the exchange loop plus each
        interpreter's per-rule output cardinalities — the sharded half of
        the adaptive planner's estimate-vs-observation loop.
        """
        if program.has_negation:
            raise LobsterError(
                "sharded execution does not support negation (owner-merge "
                "over partial frontiers cannot retract); run single-device"
            )
        if database.has_pending_retractions:
            # The engine applies retractions before dispatching here (the
            # documented fallback: retractions edit the fact log, then the
            # query reruns cold across the shards — doom frontiers are
            # never routed through the exchange path).
            raise RetractionUnsupportedError(
                "sharded execution received staged retractions; apply them "
                "via Database.rebuild() (LobsterEngine.run does this) first"
            )
        database.finalize()
        views = self._make_views(program, database)
        transfers = cached_plan(program, self.enable_stratum_scheduling)
        # Each shard records into a private feedback: a shard's largest
        # firing is ~1/N of the rule's global output, so comparing it
        # against the whole-program estimates would inflate drift ~Nx
        # and trigger spurious re-planning.  Per-shard actuals are
        # summed into the caller's feedback after the run.
        shard_feedbacks = (
            [PlanFeedback() for _ in self.interpreters]
            if feedback is not None
            else None
        )
        for interpreter, local in zip(
            self.interpreters, shard_feedbacks or [None] * self.n_shards
        ):
            interpreter.feedback = local
        try:
            for index, stratum in enumerate(program.strata):
                # Per-shard stratum spans (no-ops unless the engine
                # attached tracers): each shard's lane shows its own
                # stratum timeline on its own busy clock.
                opened_spans = [
                    interpreter._start_stratum_span(index, stratum)
                    for interpreter in self.interpreters
                ]
                try:
                    for shard in range(self.n_shards):
                        self.interpreters[shard]._charge_transfers(
                            transfers.get(index, ()), views[shard], to_device=True
                        )
                        self.interpreters[shard].begin_stratum()
                    self._run_stratum(stratum, program, views, feedback)
                    for shard in range(self.n_shards):
                        self.interpreters[shard]._charge_transfers(
                            transfers.get(index, ()), views[shard], to_device=False
                        )
                finally:
                    for interpreter, opened in zip(self.interpreters, opened_spans):
                        interpreter._finish_stratum_span(opened)
        finally:
            for interpreter in self.interpreters:
                interpreter.feedback = None
        if feedback is not None and shard_feedbacks is not None:
            # Sum the shards' per-rule peaks (the per-shard maxima may
            # come from different iterations, so this upper-bounds the
            # true global peak firing — the right bias for a drift
            # signal that must not under-report).
            keys = {key for local in shard_feedbacks for key in local.rule_actuals}
            for key in keys:
                feedback.record_rule(
                    key,
                    sum(local.rule_actuals.get(key, 0) for local in shard_feedbacks),
                )
            for local in shard_feedbacks:
                for name, rows in local.instruction_rows.items():
                    feedback.record_instruction(name, rows)
        # Shard 0's replica is the authoritative result (all identical).
        for name, rel in views[0].relations.items():
            database.relations[name] = rel

    # ------------------------------------------------------------------

    def _make_views(self, program: ApmProgram, database: Database) -> list[ShardView]:
        """Per-shard views sharing the master's (immutable) EDB tables.

        Sharing the initial ``full`` tables is safe: ``advance`` never
        mutates a table in place — it always builds fresh arrays.
        """
        views = []
        for _ in range(self.n_shards):
            view = ShardView(database.schemas, database.provenance)
            views.append(view)
        for name, rel in database.relations.items():
            for index, view in enumerate(views):
                clone = StoredRelation(name, rel.dtypes, database.provenance)
                clone.full = rel.full
                # Preserve the mask state (stratum seeding overwrites it
                # for the predicates it touches): relations no stratum
                # derives — plain EDB inputs — must come out of a sharded
                # run exactly as a single-device run leaves them.
                clone.recent_mask = rel.recent_mask.copy()
                clone.changed_mask = rel.changed_mask.copy()
                if index == 0:
                    # Shard 0's replica becomes the database's relation
                    # after the run, so it inherits (moves, not copies —
                    # exactly one owner) the master's incremental stats:
                    # its advances keep them current, and an adaptive
                    # engine's next stats_catalog() call stays O(1)
                    # instead of re-summarizing every relation.
                    clone._stats = rel._stats
                    rel._stats = None
                view.relations[name] = clone
        return views

    def _exchange_snapshot(self) -> list[tuple[float, int]] | None:
        """Per-device (exchange_seconds, exchange_bytes) before a
        collective, or None when no shard is tracing."""
        if not any(
            interpreter.tracer.enabled and interpreter.trace_parent is not None
            for interpreter in self.interpreters
        ):
            return None
        return [
            (device.profile.exchange_seconds, device.profile.exchange_bytes)
            for device in self.devices
        ]

    def _trace_exchange(
        self,
        name: str,
        predicate: str,
        iteration: int,
        before: list[tuple[float, int]] | None,
    ) -> None:
        """Spans for a collective's per-device cost: the exchange model
        charged each sending device's busy clock during the call, so the
        span is the [end - charged, end] window on that shard's lane."""
        if before is None:
            return
        for shard, interpreter in enumerate(self.interpreters):
            if not (
                interpreter.tracer.enabled and interpreter.trace_parent is not None
            ):
                continue
            profile = self.devices[shard].profile
            charged_s = profile.exchange_seconds - before[shard][0]
            if charged_s <= 0.0:
                continue
            end_s = interpreter.trace_clock()
            span = interpreter.tracer.start(
                name,
                t=end_s - charged_s,
                parent=interpreter.trace_parent,
                predicate=predicate,
                n=iteration,
                bytes=profile.exchange_bytes - before[shard][1],
            )
            interpreter.tracer.finish(span, end_s)

    def _run_stratum(
        self,
        stratum: CompiledStratum,
        program: ApmProgram,
        views: list[ShardView],
        feedback=None,
    ) -> None:
        n = self.n_shards
        provenance = views[0].provenance
        # Seed: full frontier, partitioned by ownership.
        for predicate in stratum.predicates:
            owners = self.partitioner.owners(views[0].relation(predicate).full)
            for shard in range(n):
                rel = views[shard].relation(predicate)
                rel.mark_all_recent()
                rel.recent_mask &= owners == shard

        iteration = 0
        while True:
            iteration += 1
            self.iterations_run += 1
            shard_deltas: list[dict[str, list[Table]]] = []
            for shard in range(n):
                interpreter = self.interpreters[shard]
                opened = None
                if interpreter.tracer.enabled and interpreter.trace_parent is not None:
                    span = interpreter.tracer.start(
                        "iteration",
                        t=interpreter.trace_clock(),
                        parent=interpreter.trace_parent,
                        n=iteration,
                    )
                    opened = (span, interpreter.trace_parent)
                    interpreter.trace_parent = span
                deltas: dict[str, list[Table]] = {p: [] for p in stratum.predicates}
                try:
                    for rule_index, rule in enumerate(stratum.rules):
                        if rule.edb_only:
                            # Flat rules scan replicated FULL partitions only;
                            # run each on one shard (round-robin) or every
                            # shard would derive its output N times.
                            if iteration > 1 or rule_index % n != shard:
                                continue
                        for variant in rule.variants:
                            interpreter._execute_variant(
                                variant, views[shard], deltas, iteration
                            )
                finally:
                    interpreter._finish_stratum_span(opened)
                shard_deltas.append(deltas)

            frontier = 0
            for predicate in stratum.predicates:
                dtypes = program.schemas[predicate]
                local = [
                    Table.concat(deltas[predicate], dtypes, provenance)
                    for deltas in shard_deltas
                ]
                if feedback is not None:
                    for shard, table in enumerate(local):
                        if table.n_rows:
                            feedback.record_shard(shard, table.n_rows)
                # Route every derived row to its owner; ⊕-merge there.
                before = self._exchange_snapshot()
                owned = self.exchange.shuffle(local, dtypes, provenance)
                self._trace_exchange(
                    "exchange.shuffle", predicate, iteration, before
                )
                merged = [dedup_table(table, provenance) for table in owned]
                # Owners broadcast their merged partitions; every shard
                # folds the identical global delta into its replica.
                before = self._exchange_snapshot()
                global_delta = self.exchange.all_gather(merged, dtypes, provenance)
                self._trace_exchange(
                    "exchange.all_gather", predicate, iteration, before
                )
                advanced = 0
                for shard in range(n):
                    advanced = views[shard].relation(predicate).advance(global_delta)
                frontier += advanced
                if not stratum.recursive:
                    continue  # frontier unused: the loop breaks below
                # Re-partition the new frontier by ownership.  Only the
                # frontier rows are hashed (identical on every replica),
                # not the whole growing closure — total hashing work per
                # stratum stays proportional to rows derived, not
                # O(closure x iterations).
                rel0 = views[0].relation(predicate)
                frontier_rows = np.flatnonzero(rel0.recent_mask)
                owners = self.partitioner.owners(rel0.full.take(frontier_rows))
                for shard in range(n):
                    rel = views[shard].relation(predicate)
                    mask = np.zeros(rel.full.n_rows, dtype=bool)
                    mask[frontier_rows[owners == shard]] = True
                    rel.recent_mask = mask

            if not stratum.recursive or frontier == 0:
                break
            if iteration >= self.max_iterations:
                raise ExecutionError(
                    f"stratum over {stratum.predicates} exceeded "
                    f"{self.max_iterations} iterations without saturating"
                )

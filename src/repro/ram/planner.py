"""Query planning for the Datalog -> RAM lowering.

Two planners share this module:

* :func:`order_atoms` — the syntactic greedy heuristic Lobster inherits
  from Scallop's front-end (§5): start from the first body atom, then
  repeatedly pick the atom sharing the most variables with the bound set.
  **Tie-breaking is stable by construction**: candidates are scored in
  original body order and a candidate replaces the incumbent only on a
  *strictly* greater score, so among equally scored atoms the textually
  first always wins.  Plans are therefore a pure function of the source
  text — the property the program cache's content addressing relies on.
* :func:`plan_atoms` — the statistics-driven cost-based planner.  Given a
  :class:`~repro.stats.StatsCatalog` it estimates per-atom and per-join
  cardinalities (:mod:`repro.stats.estimate`), then searches join orders:
  a bushy-avoiding (left-deep) dynamic program over atom subsets up to
  :data:`DP_LIMIT` atoms, greedy smallest-output extension beyond.  Cross
  products are deferred: a state only considers disconnected atoms when
  no connected atom remains.  Comparison selectivities are applied at the
  earliest position where their variables are bound, mirroring the
  lowering's eager selection placement.  With no statistics the planner
  falls back to :func:`order_atoms`, producing bit-identical artifacts to
  the historical pipeline — cost-based planning only ever changes
  *operator order*, never results.

Ties in the cost search break toward the lexicographically smallest
original-position order, so equal-cost plans are deterministic too.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog import ast
from ..stats.estimate import (
    Binding,
    CostModel,
    atom_binding,
    join_bindings,
    range_selectivity,
)
from ..stats.relation_stats import StatsCatalog

#: Bodies up to this many positive atoms get the exhaustive left-deep
#: dynamic program; longer bodies use greedy smallest-output extension.
DP_LIMIT = 8


def term_vars(term: ast.Term) -> set[str]:
    if isinstance(term, ast.Var):
        return {term.name}
    if isinstance(term, ast.BinOp):
        return term_vars(term.lhs) | term_vars(term.rhs)
    if isinstance(term, ast.Neg):
        return term_vars(term.operand)
    return set()


def atom_vars(atom: ast.Atom) -> set[str]:
    out: set[str] = set()
    for arg in atom.args:
        out |= term_vars(arg)
    return out


def order_atoms(atoms: list[ast.Atom]) -> list[ast.Atom]:
    """Greedy join-order heuristic (the zero-statistics fallback).

    Ties are broken by original body position: the scan walks candidates
    in order and only a strictly better score displaces the incumbent,
    so the first equally scored atom is always chosen.  Keep the ``>``
    strict — relaxing it to ``>=`` would silently reverse tie order and
    change every cached plan's content address.
    """
    if len(atoms) <= 1:
        return list(atoms)
    remaining = list(atoms)
    ordered = [remaining.pop(0)]
    bound = atom_vars(ordered[0])
    while remaining:
        best_index = 0
        best_score = -1
        for index, atom in enumerate(remaining):
            score = len(atom_vars(atom) & bound)
            if score > best_score:  # strict: first equal-score atom wins
                best_score = score
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= atom_vars(chosen)
    return ordered


def ready_comparisons(
    comparisons: list[ast.Comparison], bound: set[str], applied: set[int]
) -> list[int]:
    """Indices of not-yet-applied comparisons whose variables are bound."""
    ready: list[int] = []
    for index, comparison in enumerate(comparisons):
        if index in applied:
            continue
        needed = term_vars(comparison.lhs) | term_vars(comparison.rhs)
        if needed <= bound:
            ready.append(index)
    return ready


# ---------------------------------------------------------------------------
# Cost-based planning


@dataclass
class RulePlan:
    """One rule body's chosen plan plus its cost-model annotations."""

    order: list[ast.Atom]
    #: Estimated rows one full evaluation of the body produces (None for
    #: the zero-statistics fallback — nothing was estimated).
    estimated_rows: float | None = None
    #: Estimated total plan cost in tuple units, exchange included.
    estimated_cost: float | None = None
    #: Whether statistics actually drove the ordering.
    used_stats: bool = False


def _arg_kinds(atom: ast.Atom) -> list[tuple[str, object]]:
    """Argument shapes for :func:`repro.stats.estimate.atom_binding`."""
    kinds: list[tuple[str, object]] = []
    for arg in atom.args:
        if isinstance(arg, ast.Var):
            kinds.append(("var", arg.name))
        elif isinstance(arg, ast.IntConst):
            kinds.append(("const", int(arg.value)))
        elif isinstance(arg, ast.FloatConst):
            kinds.append(("const", float(arg.value)))
        else:
            kinds.append(("other", None))
    return kinds


def _comparison_selectivity(
    comparison: ast.Comparison, binding: Binding
) -> float:
    """Estimated pass rate of one comparison over ``binding``'s rows."""
    lhs, rhs = comparison.lhs, comparison.rhs
    op = comparison.op

    def const_of(term):
        if isinstance(term, ast.IntConst):
            return float(term.value)
        if isinstance(term, ast.FloatConst):
            return float(term.value)
        return None

    if op == "==":
        distincts = [
            binding.vars[name].n_distinct
            for name in term_vars(lhs) | term_vars(rhs)
            if name in binding.vars
        ]
        return 1.0 / max(max(distincts, default=1.0), 1.0)
    if op == "!=":
        return 0.9
    # Range comparison: interpolate when one side is a plain variable and
    # the other a constant; otherwise assume a third passes.
    for var_term, const_term, flip in ((lhs, rhs, False), (rhs, lhs, True)):
        value = const_of(const_term)
        if isinstance(var_term, ast.Var) and value is not None:
            stats = binding.vars.get(var_term.name)
            column = stats.column if stats is not None else None
            effective = op
            if flip:
                effective = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            return range_selectivity(column, effective, value)
    return 1.0 / 3.0


def _apply_ready(
    binding: Binding,
    comparisons: list[ast.Comparison],
    bound: set[str],
    applied: set[int],
) -> Binding:
    """Fold newly applicable comparison selectivities into ``binding``."""
    for index in ready_comparisons(comparisons, bound, applied):
        binding.rows *= _comparison_selectivity(comparisons[index], binding)
        applied.add(index)
    return binding.clamp()


def plan_atoms(
    atoms: list[ast.Atom],
    comparisons: list[ast.Comparison],
    catalog: StatsCatalog | None,
    cost_model: CostModel | None = None,
) -> RulePlan:
    """Choose a join order for one rule body.

    Falls back to :func:`order_atoms` when no statistics are available,
    so a stats-free compilation is bit-identical to the historical
    pipeline.  Results never depend on the order chosen — only cost does
    — because the stratum-boundary sort/unique⟨⊕⟩/merge canonicalizes
    every delta (the bitwise-equality tests pin this down).
    """
    if catalog is None or not catalog:
        return RulePlan(order_atoms(atoms))
    model = cost_model or CostModel()
    if len(atoms) <= 1:
        binding = (
            atom_binding(atoms[0].predicate, _arg_kinds(atoms[0]), catalog)
            if atoms
            else Binding(1.0, {})
        )
        applied: set[int] = set()
        binding = _apply_ready(
            binding, comparisons, atom_vars(atoms[0]) if atoms else set(), applied
        )
        return RulePlan(
            list(atoms), binding.rows, binding.rows, used_stats=True
        )

    bindings = [
        atom_binding(atom.predicate, _arg_kinds(atom), catalog) for atom in atoms
    ]
    var_sets = [atom_vars(atom) for atom in atoms]

    if len(atoms) <= DP_LIMIT:
        order = _plan_dp(atoms, bindings, var_sets, comparisons, model)
    else:
        order = _plan_greedy(atoms, bindings, var_sets, comparisons, model)

    # Re-walk the chosen order once to report its estimates.
    rows, cost = _walk_cost(order, atoms, bindings, var_sets, comparisons, model)
    return RulePlan(
        [atoms[i] for i in order], rows, cost, used_stats=True
    )


def _walk_cost(
    order: list[int],
    atoms: list[ast.Atom],
    bindings: list[Binding],
    var_sets: list[set[str]],
    comparisons: list[ast.Comparison],
    model: CostModel,
) -> tuple[float, float]:
    """(final rows, total cost) of executing atoms in ``order``."""
    applied: set[int] = set()
    first = order[0]
    binding = bindings[first].copy()
    bound = set(var_sets[first])
    cost = model.tuple_cost * binding.rows
    binding = _apply_ready(binding, comparisons, bound, applied)
    for index in order[1:]:
        side = bindings[index]
        shared = sorted(bound & var_sets[index])
        out = join_bindings(binding, side, shared)
        cost += model.join_cost(binding.rows, side.rows, out.rows)
        bound |= var_sets[index]
        binding = _apply_ready(out, comparisons, bound, applied)
    cost += model.exchange_cost(binding.rows)
    return binding.rows, cost


def _plan_dp(
    atoms: list[ast.Atom],
    bindings: list[Binding],
    var_sets: list[set[str]],
    comparisons: list[ast.Comparison],
    model: CostModel,
) -> list[int]:
    """Exhaustive left-deep DP over atom subsets (bushy plans avoided:
    the right side of every join is a base atom)."""
    n = len(atoms)
    # state: frozenset -> (cost, order_tuple, binding)
    states: dict[frozenset[int], tuple[float, tuple[int, ...], Binding]] = {}
    for i in range(n):
        applied: set[int] = set()
        binding = _apply_ready(
            bindings[i].copy(), comparisons, set(var_sets[i]), applied
        )
        states[frozenset([i])] = (
            model.tuple_cost * bindings[i].rows,
            (i,),
            binding,
        )

    for _size in range(1, n):
        next_states: dict[frozenset[int], tuple[float, tuple[int, ...], Binding]] = {}
        for subset, (cost, order, binding) in states.items():
            if len(subset) != _size:
                continue
            bound = set().union(*(var_sets[i] for i in subset))
            remaining = [i for i in range(n) if i not in subset]
            connected = [i for i in remaining if bound & var_sets[i]]
            candidates = connected or remaining
            for j in candidates:
                shared = sorted(bound & var_sets[j])
                out = join_bindings(binding, bindings[j], shared)
                step = model.join_cost(binding.rows, bindings[j].rows, out.rows)
                if len(subset) + 1 == n:
                    # Completing extension: price the finished body's
                    # exchange (shuffle + all-gather of its output) so
                    # orders whose estimates materialize a wider final
                    # delta lose to tighter ones on sharded engines.
                    step += model.exchange_cost(out.rows)
                # Comparisons ready under the *prior* bound set were all
                # applied while this state was built (every step applies
                # everything ready), so reconstructing the applied set
                # from `bound` is exact — no need to carry it in the
                # state.
                applied = set(ready_comparisons(comparisons, bound, set()))
                out = _apply_ready(out, comparisons, bound | var_sets[j], applied)
                key = subset | {j}
                entry = (cost + step, order + (j,), out)
                incumbent = next_states.get(frozenset(key))
                if incumbent is None or (entry[0], entry[1]) < (
                    incumbent[0],
                    incumbent[1],
                ):
                    next_states[frozenset(key)] = entry
        states.update(next_states)

    full = frozenset(range(n))
    _cost, order, _binding = states[full]
    return list(order)


def _plan_greedy(
    atoms: list[ast.Atom],
    bindings: list[Binding],
    var_sets: list[set[str]],
    comparisons: list[ast.Comparison],
    model: CostModel,
) -> list[int]:
    """Smallest-estimated-output extension for long bodies (> DP_LIMIT)."""
    n = len(atoms)
    start = min(range(n), key=lambda i: (bindings[i].rows, i))
    order = [start]
    applied: set[int] = set()
    binding = _apply_ready(
        bindings[start].copy(), comparisons, set(var_sets[start]), applied
    )
    bound = set(var_sets[start])
    remaining = [i for i in range(n) if i != start]
    while remaining:
        connected = [i for i in remaining if bound & var_sets[i]]
        candidates = connected or remaining
        best = None
        best_key = None
        best_out = None
        for j in candidates:
            shared = sorted(bound & var_sets[j])
            out = join_bindings(binding, bindings[j], shared)
            key = (out.rows, j)
            if best_key is None or key < best_key:
                best, best_key, best_out = j, key, out
        order.append(best)
        remaining.remove(best)
        bound |= var_sets[best]
        binding = _apply_ready(best_out, comparisons, bound, applied)
    return order

"""The Handwritten Formula (HWF) task (§6.1): parse and evaluate a formula
of handwritten symbols, supervised only by the final value.

A symbol classifier produces a distribution over {0..9, +, -, *, /} per
position; the Datalog program is a grammar parser with standard operator
precedence (term/expr split) that carries *floating point* values —
exercising the float-column and float-arithmetic support §6.1 calls out.
Formulas have varying lengths, which defeats naive per-sample batching
(the work-imbalance point of the paper).

Positions are linked by ``next`` facts; candidate symbols per position
are mutually exclusive probabilistic facts, pruned to the classifier's
top ``beam`` digits per cell (Scallop performs the same top-k pruning
before invoking the symbolic layer).

The 13 rules below match Table 2's rule count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PROGRAM = """
type digit(pos: u32, value: f64)
type plus(pos: u32)
type minus(pos: u32)
type times(pos: u32)
type divide(pos: u32)
type next(a: u32, b: u32)
type last(pos: u32)

// factor: a single digit span [i, i]
rel factor(i, i, v) :- digit(i, v).

// term: products/quotients, left associative
rel term(i, j, v) :- factor(i, j, v).
rel term(i, j, u * v) :- term(i, k, u), next(k, p), times(p), next(p, j), factor(j, j2, v), j == j2.
rel term(i, j, u / v) :- term(i, k, u), next(k, p), divide(p), next(p, j), factor(j, j2, v), j == j2.

// expr: sums/differences over terms
rel expr(i, j, v) :- term(i, j, v).
rel expr(i, j, u + v) :- expr(i, k, u), next(k, p), plus(p), next(p, m), term(m, j, v).
rel expr(i, j, u - v) :- expr(i, k, u), next(k, p), minus(p), next(p, m), term(m, j, v).

// span bookkeeping for the left-associative term chain
rel term_end(j) :- term(i, j, v).
rel expr_end(j) :- expr(i, j, v).

// the formula's value: a full-width expr
rel result(v) :- expr(0, j, v), last(j).

// auxiliary: formula is well formed if some result exists
rel has_result() :- result(v).

// top-level probability mass per candidate value
rel answer(v) :- result(v).
query answer
"""

SYMBOLS = [str(d) for d in range(10)] + ["+", "-", "*", "/"]
OPS = {"+", "-", "*", "/"}


@dataclass
class FormulaInstance:
    symbols: list[str]  # e.g. ["3", "+", "4", "*", "2"]
    value: float
    #: (positions, 14) noisy classifier output
    symbol_probs: np.ndarray


def evaluate_formula(symbols: list[str]) -> float:
    """Ground-truth evaluation with standard precedence."""
    terms: list[float] = []
    pending_add: list[str] = []
    current = float(symbols[0])
    index = 1
    while index < len(symbols):
        op, rhs = symbols[index], float(symbols[index + 1])
        if op == "*":
            current *= rhs
        elif op == "/":
            current /= rhs
        else:
            terms.append(current)
            pending_add.append(op)
            current = rhs
        index += 2
    terms.append(current)
    value = terms[0]
    for op, term in zip(pending_add, terms[1:]):
        value = value + term if op == "+" else value - term
    return value


def generate_instance(length: int, seed: int, noise: float = 0.08) -> FormulaInstance:
    """A random well-formed formula of odd ``length`` with noisy
    classifier scores per position."""
    if length % 2 == 0:
        raise ValueError("formula length must be odd")
    rng = np.random.default_rng(seed)
    symbols: list[str] = []
    for position in range(length):
        if position % 2 == 0:
            # Use 1..9 after '/' to avoid division by zero.
            low = 1 if symbols and symbols[-1] == "/" else 0
            symbols.append(str(int(rng.integers(low, 10))))
        else:
            symbols.append(str(rng.choice(["+", "-", "*", "/"])))

    probs = np.full((length, len(SYMBOLS)), noise / len(SYMBOLS))
    for position, symbol in enumerate(symbols):
        probs[position, SYMBOLS.index(symbol)] += 1.0 - noise
        # Confusable digit pairs get extra mass, like a real classifier.
        if symbol.isdigit():
            confusable = {"1": "7", "7": "1", "3": "8", "8": "3", "6": "0", "0": "6"}
            other = confusable.get(symbol)
            if other:
                probs[position, SYMBOLS.index(other)] += noise / 2
    probs /= probs.sum(axis=1, keepdims=True)
    return FormulaInstance(symbols, evaluate_formula(symbols), probs)


def populate_database(database, instance: FormulaInstance, beam: int = 2):
    """Load one formula; per-position candidates are exclusive facts.

    Returns ``(fact_ids, fact_positions, fact_symbols)`` so gradients can
    be routed back into the classifier output.
    """
    length = len(instance.symbols)
    database.add_facts("next", [(i, i + 1) for i in range(length - 1)])
    database.add_facts("last", [(length - 1,)])

    all_ids: list[int] = []
    positions: list[int] = []
    symbol_indices: list[int] = []
    for position in range(length):
        probs = instance.symbol_probs[position]
        if position % 2 == 0:
            candidates = np.argsort(probs[:10])[::-1][:beam]
            rows = [(position, float(symbol)) for symbol in candidates]
            p = [float(probs[symbol]) for symbol in candidates]
            ids = database.add_facts("digit", rows, probs=p, exclusive=True)
            all_ids.extend(int(i) for i in ids)
            positions.extend([position] * len(candidates))
            symbol_indices.extend(int(s) for s in candidates)
        else:
            relation_of = {"+": "plus", "-": "minus", "*": "times", "/": "divide"}
            candidates = np.argsort(probs[10:])[::-1][:2] + 10
            shared_group = database.new_exclusion_group()
            for symbol in candidates:
                name = relation_of[SYMBOLS[symbol]]
                ids = database.add_facts(
                    name,
                    [(position,)],
                    probs=[float(probs[symbol])],
                    group=shared_group,
                )
                all_ids.extend(int(i) for i in ids)
                positions.extend([position])
                symbol_indices.extend([int(symbol)])
    return np.array(all_ids), np.array(positions), np.array(symbol_indices)


def best_answer(prob_by_row: dict[tuple, float]) -> float | None:
    """The most likely parsed value from the ``answer`` relation."""
    if not prob_by_row:
        return None
    best_row = max(prob_by_row.items(), key=lambda item: item[1])
    return float(best_row[0][0])


def make_dataset(length: int, n_samples: int, seed: int = 0) -> list[FormulaInstance]:
    return [generate_instance(length, seed * 6151 + i) for i in range(n_samples)]

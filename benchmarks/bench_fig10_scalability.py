"""Fig. 10: scalability on Pacman (a) and Pathfinder (b) with the
optimization ablation (None / Stratum / Alloc / Both).

The paper scales the maze/grid size, measures *symbolic computation time
only*, and reports speedup over Scallop per optimization configuration.
Expected shapes:

* speedup over Scallop grows with problem size (then plateaus);
* disabling the allocation and stratum-scheduling optimizations degrades
  Lobster, most visibly at larger sizes ("Both" >= each single arm >=
  "None").

Our total time includes the device cost model's simulated transfer and
allocation overheads, which is where the ablation arms differ (DESIGN.md
§2).
"""

from __future__ import annotations

import pytest

from repro import LobsterEngine, OptimizationConfig
from repro.baselines import ScallopInterpreter
from repro.workloads import pacman, pathfinder

from _harness import print_table, record, report, timed

SUITE = "fig10_scalability"

CONFIGS = {
    "None": OptimizationConfig(buffer_reuse=False, static_indices=False, stratum_scheduling=False),
    "Stratum": OptimizationConfig(buffer_reuse=False, static_indices=False, stratum_scheduling=True),
    "Alloc": OptimizationConfig(buffer_reuse=True, static_indices=True, stratum_scheduling=False),
    "Both": OptimizationConfig(),
}

PACMAN_GRIDS = [5, 8, 11, 14]
PATHFINDER_GRIDS = [5, 8, 11, 14, 17]


def lobster_symbolic_seconds(program, provenance_capacity, populate, config) -> float:
    engine = LobsterEngine(
        program,
        provenance="diff-top-1-proofs",
        proof_capacity=provenance_capacity,
        optimizations=config,
    )
    db = engine.create_database()
    populate(db)
    result = engine.run(db)
    return result.total_seconds


def scallop_symbolic_seconds(program, populate) -> float:
    # Fresh database per trial, built untimed — a fixpointed db
    # re-runs warm.
    def setup():
        interpreter = ScallopInterpreter(program, provenance="top-k-proofs", k=1)
        db = interpreter.create_database()
        populate(db)
        return interpreter, db

    return timed(lambda state: state[0].run(state[1]), setup=setup).seconds


def sweep(task_name, program, capacity, make_populate, grids):
    task = task_name.split()[0]  # "Pacman (Fig. 10a)" -> "Pacman"
    rows = []
    speedups = {name: [] for name in CONFIGS}
    for grid in grids:
        populate = make_populate(grid)
        scallop_s = scallop_symbolic_seconds(program, populate)
        report(
            SUITE, f"{task}/grid{grid}/scallop", samples=[scallop_s],
            grid=grid, engine="scallop",
        )
        row = [grid, f"{scallop_s:.3f}s"]
        for name, config in CONFIGS.items():
            lobster_s = lobster_symbolic_seconds(program, capacity, populate, config)
            # total_seconds comes off the simulated device cost model, so
            # record it on the deterministic clock.
            report(
                SUITE, f"{task}/grid{grid}/lobster-{name}",
                samples=[lobster_s], unit="modeled_s",
                grid=grid, config=name,
            )
            ratio = scallop_s / lobster_s
            speedups[name].append(ratio)
            row.append(f"{ratio:.2f}x")
        rows.append(row)
    print_table(
        f"Fig. 10 — {task_name} scalability (speedup over Scallop per config)",
        ["grid", "scallop", *CONFIGS.keys()],
        rows,
    )
    return speedups


def make_pacman_populate(grid):
    instance = pacman.generate_instance(grid, seed=grid)
    probs = pacman.pretrained_safety_probs(instance, seed=grid)

    def populate(db):
        pacman.populate_database(db, instance, probs)

    return populate


def make_pathfinder_populate(grid):
    instance = pathfinder.generate_instance(grid, seed=grid, positive=True)
    # A moderately uncertain model keeps a grid-scaling fraction of
    # distractor edges alive past pruning, so the reasoning-chain size
    # grows with resolution — the scaling axis of Fig. 10b.
    probs = pathfinder.pretrained_edge_probs(instance, noise=0.35, seed=grid)

    def populate(db):
        # Identical pruning for every engine: confident-absent edges do
        # not enter the symbolic computation (§2's pipeline does the same
        # discretization step before reasoning).
        pathfinder.populate_database(db, instance, probs, min_prob=0.15)

    return populate


@pytest.mark.parametrize(
    "task_name, program, capacity, make_populate, grids",
    [
        ("Pacman (Fig. 10a)", pacman.PROGRAM, 300, make_pacman_populate, PACMAN_GRIDS),
        (
            "Pathfinder (Fig. 10b)",
            pathfinder.PROGRAM,
            128,
            make_pathfinder_populate,
            PATHFINDER_GRIDS,
        ),
    ],
)
def test_fig10_scalability_and_ablation(
    task_name, program, capacity, make_populate, grids, benchmark
):
    def check():
        speedups = sweep(task_name, program, capacity, make_populate, grids)
        # Shape 1: fully optimized Lobster beats Scallop at scale.
        assert speedups["Both"][-1] > 1.0
        # Shape 2: speedup grows from smallest to largest size.
        assert speedups["Both"][-1] > speedups["Both"][0]
        # Shape 3: at the largest size, full optimization beats none.
        assert speedups["Both"][-1] >= speedups["None"][-1]

    record(benchmark, check)


def test_fig10_benchmark_pacman_grid11(benchmark):
    populate = make_pacman_populate(11)

    def run():
        engine = LobsterEngine(
            pacman.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=300
        )
        db = engine.create_database()
        populate(db)
        engine.run(db)

    benchmark.pedantic(run, rounds=2, iterations=1)

"""Provenance semiring interface (§3.1, §3.5).

A provenance semiring ``(T, 0, 1, ⊕, ⊗)`` dictates how tags combine when
facts are conjoined (joins, products) and disjoined (duplicate tuples
merging).  The device runtime calls the **vectorized** operations — whole
tag columns at a time, mirroring the paper's GPU-optimized tagged operators.
The CPU baselines (Scallop/ProbLog stand-ins) call the **scalar**
operations, which by default wrap the vectorized ones on length-1 arrays;
this shares one semantics definition between engines while preserving the
per-tuple vs per-column performance contrast the paper measures.

Concrete semirings register themselves in :mod:`repro.provenance.registry`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

#: Tag-improvement threshold for fix-point saturation.
SATURATION_EPS = 1e-9


class Provenance(ABC):
    """Base class for all provenance semirings."""

    #: Registry name, e.g. ``"minmaxprob"`` or ``"diff-top-1-proofs"``.
    name: str = ""
    #: Whether :meth:`backward` is implemented.
    is_differentiable: bool = False
    #: Whether the semiring has vectorized (device) operators.  The general
    #: top-k-proofs semiring is CPU-only, matching the paper's limitation.
    supports_device: bool = True
    #: Whether ⊕ is idempotent (x ⊕ x = x).  Semi-naive *incremental*
    #: re-evaluation re-derives overlapping facts from warm state, which
    #: only preserves semantics when repeated disjunction is absorbed;
    #: non-idempotent semirings (e.g. add-mult-prob's sum) fall back to a
    #: from-scratch rerun instead.
    idempotent_oplus: bool = False

    def __init__(self) -> None:
        self.n_inputs = 0
        self.input_probs = np.zeros(0, dtype=np.float64)
        self.exclusion_groups = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Lifecycle

    def setup(
        self,
        input_probs: np.ndarray,
        exclusion_groups: np.ndarray | None = None,
    ) -> None:
        """Bind the semiring to this run's probabilistic input facts.

        ``input_probs[i]`` is the probability of input fact ``i``;
        ``exclusion_groups[i]`` is a mutual-exclusion group id (−1 for
        none).  Facts in the same group are alternative outcomes of one
        neural prediction (e.g. a softmax) and may not co-occur in a proof.
        """
        self.input_probs = np.asarray(input_probs, dtype=np.float64)
        self.n_inputs = len(self.input_probs)
        if exclusion_groups is None:
            exclusion_groups = np.full(self.n_inputs, -1, dtype=np.int64)
        self.exclusion_groups = np.asarray(exclusion_groups, dtype=np.int64)

    # ------------------------------------------------------------------
    # Vectorized (device) interface

    @abstractmethod
    def tag_dtype(self) -> np.dtype:
        """The numpy dtype of one tag (may be structured)."""

    @abstractmethod
    def input_tags(self, fact_ids: np.ndarray) -> np.ndarray:
        """Tags for EDB facts; ``fact_ids`` entries of −1 mean untagged
        (discrete) facts, which receive the semiring's ``1``."""

    @abstractmethod
    def one_tags(self, n: int) -> np.ndarray:
        """``n`` copies of the semiring's multiplicative identity."""

    @abstractmethod
    def otimes(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise conjunction of two tag columns."""

    @abstractmethod
    def oplus_reduce(
        self, tags: np.ndarray, segment_ids: np.ndarray, nseg: int
    ) -> np.ndarray:
        """Disjunction of duplicate tuples' tags.

        ``segment_ids`` (sorted, dense) maps each input tag to its output
        group; returns one combined tag per group.
        """

    @abstractmethod
    def merge_existing(
        self, old: np.ndarray, new: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """⊕ tags of facts rediscovered across iterations.

        Returns ``(merged_tags, improved)`` where ``improved`` marks facts
        whose tag strictly improved — those re-enter the semi-naive
        frontier (tag saturation, §3.4).
        """

    @abstractmethod
    def prob(self, tags: np.ndarray) -> np.ndarray:
        """Extract output probabilities (1.0 for discrete semirings)."""

    def is_absorbing_zero(self, tags: np.ndarray) -> np.ndarray:
        """Mask of tags equal to the semiring's 0 (droppable facts)."""
        return np.zeros(len(tags), dtype=bool)

    def backward(
        self, tags: np.ndarray, grad_out: np.ndarray, grad_in: np.ndarray
    ) -> None:
        """Accumulate d(loss)/d(input_probs) into ``grad_in``.

        ``grad_out[i]`` is the loss gradient w.r.t. ``prob(tags[i])``.
        Only differentiable semirings implement this.
        """
        raise NotImplementedError(f"{self.name} is not differentiable")

    # ------------------------------------------------------------------
    # Scalar interface (CPU baseline engines)

    def scalar_one(self):
        return self.one_tags(1)[0]

    def scalar_input(self, fact_id: int):
        return self.input_tags(np.array([fact_id], dtype=np.int64))[0]

    def scalar_otimes(self, a, b):
        return self.otimes(self._as1(a), self._as1(b))[0]

    def scalar_oplus(self, a, b):
        merged, _ = self.merge_existing(self._as1(a), self._as1(b))
        return merged[0]

    def scalar_improved(self, old, new) -> bool:
        _, improved = self.merge_existing(self._as1(old), self._as1(new))
        return bool(improved[0])

    def scalar_prob(self, tag) -> float:
        return float(self.prob(self._as1(tag))[0])

    def scalar_is_zero(self, tag) -> bool:
        return bool(self.is_absorbing_zero(self._as1(tag))[0])

    def _as1(self, tag) -> np.ndarray:
        out = np.empty(1, dtype=self.tag_dtype())
        out[0] = tag
        return out

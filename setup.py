"""Packaging for the Lobster reproduction.

``pip install -e .`` puts :mod:`repro` on the path so the examples,
benchmarks, and tests run without ``PYTHONPATH`` tricks.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    """Parse ``repro.__version__`` without importing the package (its
    dependencies need not be installed at build time)."""
    init = Path(__file__).parent / "src" / "repro" / "__init__.py"
    match = re.search(r'^__version__\s*=\s*"([^"]+)"', init.read_text(), re.M)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


def read_long_description() -> str:
    readme = Path(__file__).parent / "README.md"
    return readme.read_text() if readme.exists() else ""


setup(
    name="lobster-repro",
    version=read_version(),
    description=(
        "Reproduction of Lobster (ASPLOS 2026): a GPU-accelerated "
        "framework for neurosymbolic programming, with a compile-once "
        "serving layer, sharded execution, an online serving front-end, "
        "and streaming incremental view maintenance (retractions, "
        "windows, live subscriptions)"
    ),
    long_description=read_long_description(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Programming Language :: Python :: 3.13",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)

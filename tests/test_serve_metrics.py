"""The serving metrics registry: counters, gauges, streaming histograms."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(1.0)
        assert gauge.value == 1.0
        assert gauge.max_value == 3.0

    def test_counter_thread_safety(self):
        counter = Counter("c")

        def work():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 80_000


class TestHistogram:
    def test_single_value_percentiles_are_exact(self):
        hist = Histogram("h")
        hist.observe(0.125)
        # Interpolation clamps to the observed range, so a single-value
        # histogram answers every quantile exactly.
        assert hist.p50 == hist.p99 == 0.125
        assert hist.count == 1 and hist.min == hist.max == 0.125

    def test_percentiles_track_known_distribution(self):
        hist = Histogram("h")
        values = np.linspace(0.001, 1.0, 1000)
        for v in values:
            hist.observe(float(v))
        # Geometric buckets at growth=1.08 → ~8% relative resolution.
        assert hist.p50 == pytest.approx(0.5, rel=0.10)
        assert hist.p99 == pytest.approx(0.99, rel=0.10)
        assert hist.mean == pytest.approx(values.mean(), rel=1e-9)

    def test_order_independence(self):
        rng = np.random.default_rng(7)
        values = list(rng.exponential(0.01, size=500))
        a, b = Histogram("a"), Histogram("b")
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a == b
        assert a.state() == b.state()

    def test_inequality_on_different_observations(self):
        a, b = Histogram("a"), Histogram("b")
        a.observe(1.0)
        b.observe(2.0)
        assert a != b

    def test_unhashable_value_semantics(self):
        # Regression: __eq__ compares mutable value state, so an
        # identity __hash__ violated the eq/hash invariant (equal
        # histograms hashed unequal).  Histograms are unhashable now,
        # like list and dict.
        a, b = Histogram("a"), Histogram("b")
        a.observe(1.0)
        b.observe(1.0)
        assert a == b
        with pytest.raises(TypeError):
            hash(a)
        with pytest.raises(TypeError):
            {a: 1}
        # Keying by identity is still available, explicitly.
        assert {id(a): "a", id(b): "b"}[id(a)] == "a"

    def test_overflow_and_underflow_clamp(self):
        hist = Histogram("h", lo=1e-3, hi=1.0)
        hist.observe(1e-9)  # -> bucket 0
        hist.observe(1e9)  # -> last (overflow) bucket
        assert hist.count == 2
        assert hist._bucket(1e9) == hist.n_buckets - 1
        # Quantiles stay inside the observed range even for clamped
        # observations.
        assert 1e-9 <= hist.percentile(1) <= 1e-3
        assert 1.0 <= hist.percentile(100) <= 1e9

    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.p99 == 0.0
        assert hist.mean == 0.0

    def test_empty_histogram_percentiles_return_zero_never_raise(self):
        # Regression: report paths query percentiles for every instrument
        # ever created; an SLO class that served no traffic must render
        # as zero, not crash the report — even for out-of-range p.
        hist = Histogram("h")
        for p in (0, 0.5, 50, 95, 99, 100, 101, -3):
            assert hist.percentile(p) == 0.0
        assert hist.p50 == hist.p95 == hist.p99 == 0.0
        assert "empty" in repr(hist)

    def test_empty_histogram_renders_in_report(self):
        registry = MetricsRegistry()
        registry.histogram("serve.latency_s.batch")  # created, never fed
        report = registry.render("serve metrics")
        assert "serve.latency_s.batch" in report
        assert "(empty)" in report

    def test_percentile_validates_range(self):
        hist = Histogram("h")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_plain_values(self):
        registry = MetricsRegistry()
        registry.counter("reqs").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("lat").observe(0.5)
        snap = registry.snapshot()
        assert snap["reqs"] == 3
        assert snap["depth"] == (2.0, 2.0)
        assert snap["lat"] == registry.histogram("lat").state()

    def test_snapshot_round_trips_and_sorts(self):
        # Two registries fed the same observations in different creation
        # orders must snapshot identically — values AND key order — so a
        # plain json.dumps of the snapshot is replay-stable.
        def feed(registry, order):
            for name in order:
                kind, _, _ = name.partition(".")
                if kind == "c":
                    registry.counter(name).inc(2)
                elif kind == "g":
                    registry.gauge(name).set(1.5)
                else:
                    registry.histogram(name).observe(0.01)

        names = ["c.beta", "h.lat", "g.depth", "c.alpha", "h.err"]
        a, b = MetricsRegistry(), MetricsRegistry()
        feed(a, names)
        feed(b, list(reversed(names)))
        snap_a, snap_b = a.snapshot(), b.snapshot()
        assert snap_a == snap_b
        assert list(snap_a) == list(snap_b)  # key order, not just values
        # Sorted within each instrument kind: counters, gauges, histograms.
        assert list(snap_a) == ["c.alpha", "c.beta", "g.depth", "h.err", "h.lat"]
        # Taking a snapshot is read-only: a second call round-trips.
        assert a.snapshot() == snap_a

    def test_render_sorted_name_order(self):
        registry = MetricsRegistry()
        for name in ("z.last", "a.first", "m.mid"):
            registry.counter(name).inc()
        text = registry.render("order")
        assert text.index("a.first") < text.index("m.mid") < text.index("z.last")

    def test_render_mentions_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("serve.completed.interactive").inc()
        registry.gauge("device.0.busy_seconds").set(0.25)
        registry.histogram("serve.latency_s.interactive").observe(0.01)
        registry.histogram("empty.hist")
        text = registry.render("test report")
        for needle in (
            "test report",
            "serve.completed.interactive",
            "device.0.busy_seconds",
            "serve.latency_s.interactive",
            "p99",
            "(empty)",
        ):
            assert needle in text

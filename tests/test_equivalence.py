"""Cross-engine equivalence: the device engine vs all baselines.

The paper's correctness claim (§6.1) is that every system under test
produces identical results; these property tests are that claim's
executable form.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LobsterEngine
from repro.baselines import FVLogEngine, ProbLogEngine, ScallopInterpreter, SouffleEngine

TC = "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
    min_size=0,
    max_size=30,
    unique=True,
)


@given(edge_lists)
@settings(max_examples=25, deadline=None)
def test_discrete_closure_all_engines_agree(edges):
    lobster = LobsterEngine(TC, provenance="unit")
    db = lobster.create_database()
    db.add_facts("edge", edges)
    lobster.run(db)
    lobster_rows = set(db.result("path").rows())

    souffle = SouffleEngine(TC)
    sdb = souffle.create_database()
    sdb.setdefault("edge", set()).update(edges)
    souffle.run(sdb)
    assert sdb.get("path", set()) == lobster_rows

    fvlog = FVLogEngine(TC)
    fdb = fvlog.create_database()
    fdb.add_facts("edge", edges)
    fvlog.run(fdb)
    assert set(fdb.result("path").rows()) == lobster_rows

    scallop = ScallopInterpreter(TC, provenance="unit")
    cdb = scallop.create_database()
    cdb.add_facts("edge", edges)
    scallop.run(cdb)
    assert set(cdb.rows("path")) == lobster_rows


@given(
    edge_lists,
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_minmaxprob_probabilities_match_scallop(edges, seed):
    rng = np.random.default_rng(seed)
    probs = rng.uniform(0.05, 1.0, size=len(edges))

    lobster = LobsterEngine(TC, provenance="minmaxprob")
    db = lobster.create_database()
    db.add_facts("edge", edges, probs=list(probs))
    lobster.run(db)

    scallop = ScallopInterpreter(TC, provenance="minmaxprob")
    sdb = scallop.create_database()
    sdb.add_facts("edge", edges, probs=list(probs))
    scallop.run(sdb)

    device_probs = lobster.query_probs(db, "path")
    assert set(device_probs) == set(sdb.rows("path"))
    for row, prob in device_probs.items():
        assert prob == pytest.approx(sdb.prob("path", row), abs=1e-9)


@given(edge_lists, st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_top1_proof_matches_scallop_top1(edges, seed):
    rng = np.random.default_rng(seed)
    probs = rng.uniform(0.05, 1.0, size=len(edges))

    lobster = LobsterEngine(TC, provenance="prob-top-1-proofs", proof_capacity=32)
    db = lobster.create_database()
    db.add_facts("edge", edges, probs=list(probs))
    lobster.run(db)

    scallop = ScallopInterpreter(TC, provenance="top-k-proofs", k=1)
    sdb = scallop.create_database()
    sdb.add_facts("edge", edges, probs=list(probs))
    scallop.run(sdb)

    device_probs = lobster.query_probs(db, "path")
    assert set(device_probs) == set(sdb.rows("path"))
    for row, prob in device_probs.items():
        # Both track one proof; greedy tie-breaking may pick different
        # equal-probability proofs, so compare probabilities only.
        assert prob == pytest.approx(sdb.prob("path", row), abs=1e-9)


def test_problog_exact_beats_top1_on_diamond():
    """Exact inference accounts for both routes; top-1 keeps the best."""
    edges = [(0, 1), (1, 3), (0, 2), (2, 3)]
    probs = [0.5, 0.5, 0.5, 0.5]

    problog = ProbLogEngine(TC, timeout_seconds=30)
    pdb = problog.create_database()
    pdb.add_facts("edge", edges, probs=probs)
    problog.run(pdb)
    exact = problog.query_prob(pdb, "path", (0, 3))
    # P(route A or route B), independent: 0.25 + 0.25 - 0.0625
    assert exact == pytest.approx(0.4375)

    lobster = LobsterEngine(TC, provenance="prob-top-1-proofs", proof_capacity=16)
    db = lobster.create_database()
    db.add_facts("edge", edges, probs=probs)
    lobster.run(db)
    top1 = lobster.query_probs(db, "path")[(0, 3)]
    assert top1 == pytest.approx(0.25)
    assert exact > top1

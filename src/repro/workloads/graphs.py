"""Synthetic graph corpus standing in for the SNAP datasets (§6.1).

The paper's discrete benchmarks run on SNAP graphs (p2p-Gnutella,
com-dblp, cit-HepTh, usroad, finite-element meshes, ...).  Those exact
files are not redistributable here, so each dataset name maps to a seeded
generator that preserves the *topology class* the original belongs to —
sparse P2P digraphs, preferential-attachment citation/social graphs,
community graphs, near-planar road grids, FE meshes, and the dense
financial vertex-separator graph — scaled down so a laptop run finishes.
Relative difficulty ordering between classes is what the Fig. 13 /
Table 3 shapes depend on, and that survives the down-scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

Edges = list[tuple[int, int]]


def p2p_network(n: int, avg_out_degree: float, seed: int) -> Edges:
    """Gnutella-style sparse random digraph."""
    rng = np.random.default_rng(seed)
    m = int(n * avg_out_degree)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return sorted({(int(a), int(b)) for a, b in zip(src, dst) if a != b})


def citation_graph(n: int, refs_per_paper: int, seed: int) -> Edges:
    """Preferential-attachment DAG: papers cite earlier, popular papers."""
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    degree = np.ones(n)
    for paper in range(1, n):
        k = min(paper, refs_per_paper)
        weights = degree[:paper] / degree[:paper].sum()
        cited = rng.choice(paper, size=k, replace=False, p=weights)
        for target in cited:
            edges.add((paper, int(target)))
            degree[int(target)] += 1
    return sorted(edges)


def community_graph(n_communities: int, size: int, p_out: float, seed: int) -> Edges:
    """DBLP-style community graph: dense blocks, sparse bridges."""
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    n = n_communities * size
    for community in range(n_communities):
        base = community * size
        members = np.arange(base, base + size)
        for _ in range(size * 3):
            a, b = rng.choice(members, size=2, replace=False)
            edges.add((int(a), int(b)))
            edges.add((int(b), int(a)))
    n_bridges = int(n * p_out)
    for _ in range(n_bridges):
        a = int(rng.integers(0, n))
        b = int(rng.integers(0, n))
        if a != b:
            edges.add((a, b))
    return sorted(edges)


def road_grid(side: int, seed: int, diagonal_fraction: float = 0.05) -> Edges:
    """usroad-style near-planar grid with sparse shortcuts."""
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()

    def node(x: int, y: int) -> int:
        return x * side + y

    for x in range(side):
        for y in range(side):
            if x + 1 < side:
                edges.add((node(x, y), node(x + 1, y)))
                edges.add((node(x + 1, y), node(x, y)))
            if y + 1 < side:
                edges.add((node(x, y), node(x, y + 1)))
                edges.add((node(x, y + 1), node(x, y)))
    for _ in range(int(side * side * diagonal_fraction)):
        x = int(rng.integers(0, side - 1))
        y = int(rng.integers(0, side - 1))
        edges.add((node(x, y), node(x + 1, y + 1)))
    return sorted(edges)


def fe_mesh(side: int, seed: int = 0) -> Edges:
    """Finite-element style triangular mesh (fe-sphere / fe-body class)."""
    edges: set[tuple[int, int]] = set()

    def node(x: int, y: int) -> int:
        return x * side + y

    for x in range(side):
        for y in range(side):
            for dx, dy in ((1, 0), (0, 1), (1, 1)):
                nx, ny = x + dx, y + dy
                if nx < side and ny < side:
                    edges.add((node(x, y), node(nx, ny)))
                    edges.add((node(nx, ny), node(x, y)))
    return sorted(edges)


def social_graph(n: int, attach: int, seed: int) -> Edges:
    """Barabási–Albert style social graph (Brightkite / ego-Facebook)."""
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    targets = list(range(attach))
    repeated: list[int] = list(range(attach))
    for source in range(attach, n):
        chosen = rng.choice(len(repeated), size=attach, replace=False)
        for index in chosen:
            target = repeated[int(index)]
            edges.add((source, target))
            edges.add((target, source))
            repeated.append(target)
        repeated.extend([source] * attach)
    return sorted(edges)


def financial_graph(n_blocks: int, block: int, fanout: int, seed: int) -> Edges:
    """vsp_finan-style: dense hub blocks with high fan-out separators.

    The structure drives large intermediate join results — this is the
    dataset class on which memory pressure decides winners in Table 3.
    """
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    n = n_blocks * block
    hubs = [b * block for b in range(n_blocks)]
    for b in range(n_blocks):
        base = b * block
        hub = hubs[b]
        for member in range(base, base + block):
            if member != hub:
                edges.add((hub, member))
                edges.add((member, hub))
    for hub in hubs:
        others = rng.integers(0, n, size=fanout)
        for target in others:
            if int(target) != hub:
                edges.add((hub, int(target)))
    return sorted(edges)


def chain_of_cliques(n_cliques: int, clique: int, seed: int = 0) -> Edges:
    """SF.cedge-like long sparse structure with local density."""
    edges: set[tuple[int, int]] = set()
    for c in range(n_cliques):
        base = c * clique
        for a in range(clique):
            for b in range(a + 1, clique):
                edges.add((base + a, base + b))
        if c + 1 < n_cliques:
            edges.add((base + clique - 1, base + clique))
    return sorted(edges)


def zipf_overlap(
    n_blocks: int,
    mids: int,
    sinks: int,
    n_sources: int,
    skew: float = 1.6,
    min_cov: int = 1,
) -> Edges:
    """Zipf-skewed block-overlap DAG — the elastic-resharding workload.

    ``n_blocks`` disjoint complete-bipartite blocks (``mids`` mid nodes
    each pointing at the block's ``sinks`` sink nodes) are shared by
    ``n_sources`` source nodes: the rank-``r`` source covers
    ``clip(n_blocks / r**skew, min_cov, n_blocks)`` blocks, edge-connecting
    to every mid in each.  The heavy block reuse makes transitive closure
    kernel-bound (each block edge is re-walked once per covering source)
    while the rank-1 source — covering *every* block — concentrates a
    Zipf head of the derived mass on a single join key, which is exactly
    the hot key a keyed shard map must split.  ``skew=0`` degenerates to
    uniform coverage (``min_cov`` blocks per source, rotated so every
    block carries the same load): same scale, no hot key.

    Deterministic by construction (no RNG): coverage is a cyclic block
    window starting at ``r % n_blocks``, so repeated builds are identical
    and per-block load stays even under any source count.
    """
    src0, mid0, sink0 = 1_000_000, 2_000_000, 3_000_000
    edges: Edges = []
    for b in range(n_blocks):
        for m in range(mids):
            mid = mid0 + b * mids + m
            for s in range(sinks):
                edges.append((mid, sink0 + b * sinks + s))
    ranks = np.arange(1, n_sources + 1, dtype=np.float64)
    with np.errstate(divide="ignore"):
        raw = n_blocks / ranks**skew if skew > 0 else np.full(n_sources, min_cov)
    cov = np.clip(raw, min_cov, n_blocks).astype(np.int64)
    for r in range(n_sources):
        for i in range(int(cov[r])):
            base = mid0 + ((r + i) % n_blocks) * mids
            for m in range(mids):
                edges.append((src0 + r, base + m))
    return edges


# ---------------------------------------------------------------------------
# Named corpus


@dataclass(frozen=True)
class GraphSpec:
    name: str
    build: Callable[[], Edges]
    kind: str


def _corpus() -> dict[str, GraphSpec]:
    specs = [
        GraphSpec("Gnu31", lambda: p2p_network(900, 3.0, 31), "p2p"),
        GraphSpec("p2p-Gnu24", lambda: p2p_network(600, 3.0, 24), "p2p"),
        GraphSpec("p2p-Gnu25", lambda: p2p_network(650, 3.0, 25), "p2p"),
        GraphSpec("p2p-Gnu30", lambda: p2p_network(850, 3.0, 30), "p2p"),
        GraphSpec("com-dblp", lambda: community_graph(24, 28, 0.15, 7), "community"),
        GraphSpec("loc-Brightkite", lambda: social_graph(700, 3, 11), "social"),
        GraphSpec("ego-Facebook", lambda: social_graph(500, 4, 13), "social"),
        GraphSpec("cit-HepTh", lambda: citation_graph(800, 4, 17), "citation"),
        GraphSpec("cit-HepPh", lambda: citation_graph(900, 4, 19), "citation"),
        GraphSpec("CA-HepTH", lambda: citation_graph(600, 3, 23), "citation"),
        GraphSpec("usroad", lambda: road_grid(28, 3), "road"),
        GraphSpec("SF.cedge", lambda: chain_of_cliques(120, 5), "road"),
        GraphSpec("fe-body", lambda: fe_mesh(26), "mesh"),
        GraphSpec("fe-sphere", lambda: fe_mesh(22), "mesh"),
        GraphSpec("fc_ocean", lambda: fe_mesh(20), "mesh"),
        GraphSpec("vsp-finan", lambda: financial_graph(10, 60, 40, 41), "financial"),
    ]
    return {spec.name: spec for spec in specs}


CORPUS = _corpus()

#: Aliases for the paper's inconsistent dataset spellings.
ALIASES = {"vsp_finan": "vsp-finan", "fe_body": "fe-body", "Gnu31p2p": "Gnu31"}


def load_graph(name: str) -> Edges:
    """Materialize a named dataset (deterministic across calls)."""
    spec = CORPUS.get(ALIASES.get(name, name))
    if spec is None:
        known = ", ".join(sorted(CORPUS))
        raise KeyError(f"unknown graph {name!r}; known: {known}")
    return spec.build()

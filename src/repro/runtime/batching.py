"""Batched evaluation (§4.3).

Lobster folds a batch of databases into one by prepending a *sample id*
column to every relation.  No new APM or RAM constructs are needed: the
program itself is rewritten so that a fresh variable rides along every
atom's first argument — joins then implicitly extend their width by one,
so facts from different samples can never combine, and parallelism over
the batch falls out of the existing row parallelism.
"""

from __future__ import annotations

from ..datalog import ast

#: Name of the injected batch variable; double underscores keep it out of
#: the user's namespace.
SAMPLE_VAR = "__sample__"
SAMPLE_TYPE = "usize"


def batch_transform(program: ast.ProgramAst) -> ast.ProgramAst:
    """Rewrite a program for batched evaluation."""
    sample = ast.Var(SAMPLE_VAR)

    def widen_atom(atom: ast.Atom) -> ast.Atom:
        return ast.Atom(atom.predicate, (sample,) + atom.args, atom.negated)

    def widen_formula(formula: ast.Formula) -> ast.Formula:
        if isinstance(formula, ast.Atom):
            return widen_atom(formula)
        if isinstance(formula, ast.Comparison):
            return formula
        if isinstance(formula, ast.Conj):
            return ast.Conj(tuple(widen_formula(item) for item in formula.items))
        if isinstance(formula, ast.Disj):
            return ast.Disj(tuple(widen_formula(item) for item in formula.items))
        raise TypeError(f"unexpected formula {formula!r}")

    out = ast.ProgramAst()
    out.type_aliases = list(program.type_aliases)
    out.relation_decls = [
        ast.RelationDecl(
            decl.name,
            (SAMPLE_VAR,) + decl.arg_names,
            (SAMPLE_TYPE,) + decl.arg_types,
        )
        for decl in program.relation_decls
    ]
    out.rules = [
        ast.Rule(widen_atom(rule.head), widen_formula(rule.body))
        for rule in program.rules
    ]
    # Fact blocks are replicated per sample at load time by the engine.
    out.fact_blocks = list(program.fact_blocks)
    out.queries = list(program.queries)
    return out


def prepend_sample(rows: list[tuple], sample_id: int) -> list[tuple]:
    return [(sample_id,) + tuple(row) for row in rows]

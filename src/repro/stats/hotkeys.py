"""Heavy-hitter reports from the existing count-min sketches.

The reshard planner needs to know *which* key values carry the mass a
skewed workload piles onto one shard.  A count-min sketch can answer
"how often does value v occur?" (never undercounting) but cannot
enumerate candidates, so the report combines the two things the storage
layer already has:

* the stored column itself supplies the **candidate set** — its unique
  values, pre-filtered by exact frequency so only plausible heavy
  hitters pay a sketch probe;
* the relation's :class:`~repro.stats.relation_stats.ColumnStats` CMS
  supplies the **reported counts** — the same estimates the planner's
  other cardinality machinery trusts, so a hot-key decision and a join
  order decision never disagree about a frequency.

Reports are deterministic: candidates are probed in sorted order and
ranked by ``(-count, value)``, so equal-mass keys break ties toward the
smaller value and two processes always emit identical reports (the
planner's migrate/decline decision must not depend on dict order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .relation_stats import ColumnStats, RelationStats

__all__ = ["HotKey", "HotKeyReport", "hot_keys", "hot_key_report"]

#: Default fraction of a column's total mass a value must carry to be
#: reported.  1/16 ≈ what a single key "should" hold on a 16-shard pool;
#: anything above it is worth splitting.
DEFAULT_MASS_THRESHOLD = 1.0 / 16.0

#: Default report length.  More than a handful of heavy hitters means
#: the column is not actually skewed — mass that spread out is what the
#: base hash partition already handles.
DEFAULT_TOP_K = 8


@dataclass(frozen=True)
class HotKey:
    """One heavy hitter: its value, CMS-estimated count, and mass share."""

    value: int | float
    count: float
    fraction: float


@dataclass(frozen=True)
class HotKeyReport:
    """Heavy hitters of one relation column, heaviest first."""

    relation: str
    column: int
    total: float
    keys: tuple[HotKey, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return bool(self.keys)

    @property
    def hot_fraction(self) -> float:
        """Share of the column's mass carried by the reported keys."""
        return sum(key.fraction for key in self.keys)


def hot_keys(
    stats: ColumnStats,
    values: np.ndarray,
    *,
    top_k: int = DEFAULT_TOP_K,
    mass_threshold: float = DEFAULT_MASS_THRESHOLD,
) -> tuple[HotKey, ...]:
    """Top-``top_k`` values above ``mass_threshold`` of the column mass.

    ``values`` is the stored column (or any sample of it) used only for
    candidate discovery; reported counts come from the sketch.  The
    exact candidate frequencies pre-filter the probe set — a value whose
    observed share is under half the threshold cannot clear it in the
    sketch either, because CMS never undercounts but the *observed*
    column is the sketch's own input.
    """
    total = float(stats.cms.total)
    if total <= 0.0 or len(values) == 0 or top_k <= 0:
        return ()
    unique, counts = np.unique(values, return_counts=True)
    floor = 0.5 * mass_threshold * len(values)
    plausible = counts >= max(floor, 1.0)
    unique, counts = unique[plausible], counts[plausible]
    if len(unique) > 4 * top_k:
        # Cap sketch probes: keep the exactly-heaviest few-times-top_k
        # candidates (stable order: by -count then value).
        order = np.lexsort((unique, -counts))[: 4 * top_k]
        unique = unique[order]
    ranked: list[HotKey] = []
    for raw in unique:
        estimate = float(stats.cms.count(raw))
        fraction = estimate / total
        if fraction >= mass_threshold:
            ranked.append(HotKey(raw.item(), estimate, fraction))
    ranked.sort(key=lambda key: (-key.count, key.value))
    return tuple(ranked[:top_k])


def hot_key_report(
    relation: str,
    column: int,
    stats: RelationStats,
    values: np.ndarray,
    *,
    top_k: int = DEFAULT_TOP_K,
    mass_threshold: float = DEFAULT_MASS_THRESHOLD,
) -> HotKeyReport:
    """Heavy-hitter report for one column of one relation."""
    if not 0 <= column < stats.arity:
        return HotKeyReport(relation=relation, column=column, total=0.0)
    column_stats = stats.columns[column]
    keys = hot_keys(
        column_stats, values, top_k=top_k, mass_threshold=mass_threshold
    )
    return HotKeyReport(
        relation=relation,
        column=column,
        total=float(column_stats.cms.total),
        keys=keys,
    )

"""Cross-suite baseline comparison: Lobster vs the reference engines.

SPEC publishes every system's score on one shared workload set; this
module does the miniature equivalent for the repo's baseline engines —
the Soufflé stand-in (discrete multicore CPU Datalog), the Scallop
stand-in (tuple-at-a-time tagged evaluation), and the ProbLog stand-in
(exact probabilistic inference) — on fixed-seed instances of the
benchmark suite's workload families.  Engines are used *where
importable*: a missing baseline produces an explicit ``unavailable`` row
rather than a silent hole in the table.

Every cell is multi-trial wall time through :mod:`repro.perf.stats`
(these are real competing executions, not simulator accounting — wall
clock is the honest number here), and each speedup carries its
propagated interval.  The rows feed both the versioned markdown summary
and a ``BENCH_crosssuite.json`` record.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import EvaluationTimeout
from .record import BenchmarkResult
from .stats import Ratio, TrialStats, geomean_ratio, ratio_of, summarize

__all__ = ["CrossSuiteCell", "compare_baselines", "render_markdown"]

TC = """
rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
query path
"""

#: Wall-clock budget per baseline run; a baseline that exceeds it gets
#: an explicit ``timeout`` cell (the §6.4 ProbLog observation, scaled).
TIMEOUT_S = 30.0


def _tc_facts(tiny: bool):
    rng = np.random.default_rng(29)
    n_nodes = 20 if tiny else 60
    n_edges = 45 if tiny else 170
    edges = {
        (int(a), int(b))
        for a, b in rng.integers(0, n_nodes, size=(n_edges, 2))
        if a != b
    }
    return {"edge": sorted(edges)}


def _prob_tc_facts():
    # Exact weighted model counting is exponential in proof count: keep
    # the ProbLog instance tractable (a short chain plus one shortcut).
    rows = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)]
    return {"edge": rows}, [0.9, 0.8, 0.7, 0.9, 0.5]


def _run_lobster(source, provenance, facts, probs=None):
    from ..runtime.engine import LobsterEngine

    engine = LobsterEngine(source, provenance=provenance)
    db = engine.create_database()
    for name, rows in facts.items():
        db.add_facts(name, rows, probs)
    engine.run(db)


def _run_souffle(source, facts):
    from ..baselines import SouffleEngine

    engine = SouffleEngine(source, timeout_seconds=TIMEOUT_S)
    db = engine.create_database()
    for name, rows in facts.items():
        db.setdefault(name, set()).update(rows)
    engine.run(db)


def _run_scallop(source, provenance, facts, probs=None):
    from ..baselines import ScallopInterpreter

    engine = ScallopInterpreter(
        source, provenance=provenance, timeout_seconds=TIMEOUT_S
    )
    db = engine.create_database()
    for name, rows in facts.items():
        db.add_facts(name, rows, probs)
    engine.run(db)


def _run_problog(source, facts, probs):
    from ..baselines import ProbLogEngine

    engine = ProbLogEngine(source, timeout_seconds=TIMEOUT_S)
    db = engine.create_database()
    for name, rows in facts.items():
        db.add_facts(name, rows, probs=probs)
    engine.run(db)


class CrossSuiteCell:
    """One (workload, engine) measurement."""

    def __init__(self, workload: str, engine: str):
        self.workload = workload
        self.engine = engine
        self.samples: list[float] = []
        self.status = "ok"  # ok | timeout | unavailable | failed

    def stats(self) -> TrialStats | None:
        if self.status != "ok" or not self.samples:
            return None
        return summarize(self.samples)

    @property
    def name(self) -> str:
        return f"{self.workload}/{self.engine}"


def _measure(cell: CrossSuiteCell, fn, trials: int, warmups: int) -> None:
    try:
        for index in range(warmups + trials):
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if index >= warmups:
                cell.samples.append(elapsed)
    except EvaluationTimeout:
        cell.status = "timeout"
        cell.samples = []
    except ImportError:
        cell.status = "unavailable"
        cell.samples = []


def compare_baselines(
    trials: int = 3, warmups: int = 1, tiny: bool = False
) -> list[CrossSuiteCell]:
    """Run the comparison grid; one cell per (workload, engine) pair.

    Baselines that fail to import are reported ``unavailable`` — the
    comparison is still written, with the hole visible.
    """
    tc_facts = _tc_facts(tiny)
    prob_facts, prob_probs = _prob_tc_facts()
    grid = [
        ("TC/unit", "lobster", lambda: _run_lobster(TC, "unit", tc_facts)),
        ("TC/unit", "souffle", lambda: _run_souffle(TC, tc_facts)),
        ("TC/unit", "scallop", lambda: _run_scallop(TC, "unit", tc_facts)),
        (
            "probTC/minmaxprob",
            "lobster",
            lambda: _run_lobster(TC, "minmaxprob", prob_facts, prob_probs),
        ),
        (
            "probTC/minmaxprob",
            "scallop",
            lambda: _run_scallop(TC, "minmaxprob", prob_facts, prob_probs),
        ),
        (
            "probTC/exact",
            "problog",
            lambda: _run_problog(TC, prob_facts, prob_probs),
        ),
    ]
    cells = []
    for workload, engine, fn in grid:
        cell = CrossSuiteCell(workload, engine)
        _measure(cell, fn, trials=trials, warmups=warmups)
        cells.append(cell)
    return cells


def to_benchmark_results(cells: list[CrossSuiteCell]) -> list[BenchmarkResult]:
    return [
        BenchmarkResult(
            name=cell.name,
            samples=list(cell.samples),
            unit="s",
            status=cell.status,
            attrs={"workload": cell.workload, "engine": cell.engine},
        )
        for cell in cells
    ]


def render_markdown(cells: list[CrossSuiteCell]) -> list[str]:
    """Comparison table plus the geomean speedup line, for the summary."""
    by_workload: dict[str, dict[str, CrossSuiteCell]] = {}
    for cell in cells:
        by_workload.setdefault(cell.workload, {})[cell.engine] = cell
    lines = [
        "| workload | engine | wall (mean ± stddev, 95% CI) | vs lobster |",
        "|---|---|---|---|",
    ]
    ratios: list[Ratio] = []
    for workload, engines in by_workload.items():
        ours = engines.get("lobster")
        our_stats = ours.stats() if ours else None
        for engine, cell in engines.items():
            stats = cell.stats()
            if stats is None:
                lines.append(
                    f"| {workload} | {engine} | {cell.status} | - |"
                )
                continue
            if engine == "lobster" or our_stats is None:
                versus = "1.00x" if engine == "lobster" else "-"
            else:
                ratio = ratio_of(stats, our_stats)
                versus = ratio.label()
                if ratio.ok:
                    ratios.append(ratio)
            lines.append(
                f"| {workload} | {engine} | {stats.label()} | {versus} |"
            )
    geo = geomean_ratio(ratios)
    lines.append("")
    lines.append(
        "Geomean baseline/lobster speedup over measurable pairs: "
        f"**{geo.label()}**"
        if geo.ok
        else "No measurable baseline/lobster pairs this run."
    )
    return lines

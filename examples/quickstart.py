"""Quickstart: discrete, probabilistic, and differentiable reasoning.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import LobsterEngine

PROGRAM = """
rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
query path
"""


def discrete() -> None:
    """Classic Datalog: transitive closure with the unit provenance."""
    engine = LobsterEngine(PROGRAM, provenance="unit")
    database = engine.create_database()
    database.add_facts("edge", [(0, 1), (1, 2), (2, 3)])
    result = engine.run(database)
    print("discrete path facts:", sorted(database.result("path").rows()))
    print(f"  ({result.iterations} fix-point iterations, "
          f"{result.wall_seconds * 1e3:.1f} ms)")


def probabilistic() -> None:
    """Same program, probabilistic inputs — just pick another semiring."""
    engine = LobsterEngine(PROGRAM, provenance="minmaxprob")
    database = engine.create_database()
    database.add_facts("edge", [(0, 1), (1, 2), (0, 2)], probs=[0.9, 0.8, 0.3])
    engine.run(database)
    for row, prob in sorted(engine.query_probs(database, "path").items()):
        print(f"probabilistic path{row}: {prob:.2f}")


def differentiable() -> None:
    """diff-top-1-proofs: probabilities + gradients w.r.t. input facts."""
    engine = LobsterEngine(PROGRAM, provenance="diff-top-1-proofs", proof_capacity=16)
    database = engine.create_database()
    fact_ids = database.add_facts(
        "edge", [(0, 1), (1, 2)], probs=[0.9, 0.4]
    )
    engine.run(database)
    prob = engine.query_probs(database, "path")[(0, 2)]
    gradient = engine.backward(database, "path", {(0, 2): 1.0})
    print(f"differentiable: P(path(0,2)) = {prob:.2f}")
    print(f"  d/d(edge probs) = {gradient[fact_ids]}")


if __name__ == "__main__":
    discrete()
    probabilistic()
    differentiable()

"""The Soufflé baseline: an optimized discrete-only CPU Datalog engine.

Soufflé represents the best of multicore CPU Datalog (§6.2): no provenance
tags, specialized index data structures, semi-naive evaluation.  This
stand-in evaluates with per-rule *hash-indexed* joins (dict-of-lists
indices on the join keys, rebuilt per iteration over the stable set and
incrementally for deltas) — substantially faster than the Scallop
baseline's generic tagged nested loops, which mirrors the real systems'
relationship, while remaining a per-tuple CPU engine that Lobster's
whole-column kernels outpace.
"""

from __future__ import annotations

import time

from ..datalog import ast
from ..datalog.program import compile_source
from ..errors import EvaluationTimeout
from ..ram import planner


class SouffleEngine:
    """Discrete semi-naive evaluation with hash-indexed joins."""

    def __init__(self, source: str, timeout_seconds: float | None = None):
        self.resolved = compile_source(source)
        self.timeout_seconds = timeout_seconds
        self.iterations_run = 0

    def create_database(self) -> dict[str, set[tuple]]:
        database: dict[str, set[tuple]] = {}
        for predicate, rows in self.resolved.facts.items():
            database.setdefault(predicate, set()).update(tuple(r) for r in rows)
        return database

    def run(self, database: dict[str, set[tuple]]) -> None:
        deadline = (
            time.perf_counter() + self.timeout_seconds
            if self.timeout_seconds is not None
            else None
        )
        for stratum in self.resolved.strata:
            self._run_stratum(stratum, database, deadline)

    # ------------------------------------------------------------------

    def _run_stratum(self, stratum, database, deadline) -> None:
        pred_set = set(stratum.predicates)
        for predicate in pred_set:
            database.setdefault(predicate, set())
        recent = {p: set(database[p]) for p in pred_set}
        plans = [self._plan_rule(rule, pred_set) for rule in stratum.rules]

        iteration = 0
        while True:
            iteration += 1
            self.iterations_run += 1
            if deadline is not None and time.perf_counter() > deadline:
                raise EvaluationTimeout(
                    f"Souffle baseline exceeded {self.timeout_seconds}s"
                )
            derived: dict[str, set[tuple]] = {}
            for rule, ordered, recursive_positions in plans:
                if recursive_positions:
                    variants = recursive_positions
                elif iteration == 1:
                    variants = [None]
                else:
                    continue
                for position in variants:
                    self._eval_rule(
                        rule, ordered, position, database, recent, derived
                    )
            frontier: dict[str, set[tuple]] = {}
            for predicate, rows in derived.items():
                fresh = rows - database[predicate]
                database[predicate] |= fresh
                frontier[predicate] = fresh
            recent = {p: frontier.get(p, set()) for p in pred_set}
            if not any(recent.values()):
                break

    def _plan_rule(self, rule, pred_set):
        ordered = planner.order_atoms(rule.positives)
        recursive_positions = [
            index for index, atom in enumerate(ordered) if atom.predicate in pred_set
        ]
        return rule, ordered, recursive_positions

    # ------------------------------------------------------------------

    def _eval_rule(self, rule, ordered, recent_position, database, recent, derived):
        # Precompute, per atom, the variable positions bound by earlier
        # atoms (the index key) for hash-indexed lookup.
        bound_vars: set[str] = set()
        atom_keys: list[list[tuple[str, int]]] = []
        for atom in ordered:
            key = []
            seen_here: dict[str, int] = {}
            for position, arg in enumerate(atom.args):
                if isinstance(arg, ast.Var):
                    if arg.name in bound_vars and arg.name not in seen_here:
                        key.append((arg.name, position))
                    seen_here.setdefault(arg.name, position)
            atom_keys.append(key)
            bound_vars |= {
                arg.name for arg in atom.args if isinstance(arg, ast.Var)
            }

        indices: list[dict | None] = []
        for position, atom in enumerate(ordered):
            source = (
                recent.get(atom.predicate, set())
                if position == recent_position
                else database.get(atom.predicate, set())
            )
            key = atom_keys[position]
            if not key:
                indices.append(None)
                continue
            index: dict[tuple, list[tuple]] = {}
            positions = [p for _, p in key]
            for row in source:
                index.setdefault(tuple(row[p] for p in positions), []).append(row)
            indices.append(index)

        def rows_for(position: int, env: dict):
            atom = ordered[position]
            key = atom_keys[position]
            if key:
                lookup = tuple(env[name] for name, _ in key)
                return indices[position].get(lookup, ())
            if position == recent_position:
                return recent.get(atom.predicate, ())
            return database.get(atom.predicate, ())

        out = derived.setdefault(rule.head, set())

        def extend(position: int, env: dict):
            if position == len(ordered):
                if not self._guards_hold(rule, env, database):
                    return
                out.add(tuple(_eval_term(t, env) for t in rule.head_terms))
                return
            atom = ordered[position]
            for row in rows_for(position, env):
                bound = _unify(atom, row, env)
                if bound is None:
                    continue
                if not _comparisons_hold(rule.comparisons, bound):
                    continue
                extend(position + 1, bound)

        extend(0, {})

    def _guards_hold(self, rule, env, database) -> bool:
        for atom in rule.negatives:
            row = tuple(_eval_term(arg, env) for arg in atom.args)
            if row in database.get(atom.predicate, set()):
                return False
        return True


# -- shared helpers (module-level so SouffleEngine stays lean) --------------


def _unify(atom: ast.Atom, row: tuple, env: dict) -> dict | None:
    bound = dict(env)
    for arg, value in zip(atom.args, row):
        if isinstance(arg, ast.Wildcard):
            continue
        if isinstance(arg, ast.Var):
            existing = bound.get(arg.name)
            if existing is None:
                bound[arg.name] = value
            elif existing != value:
                return None
            continue
        if isinstance(arg, (ast.IntConst, ast.FloatConst)):
            if value != arg.value:
                return None
            continue
        return None
    return bound


def _comparisons_hold(comparisons, env: dict) -> bool:
    for comparison in comparisons:
        try:
            lhs = _eval_term(comparison.lhs, env)
            rhs = _eval_term(comparison.rhs, env)
        except KeyError:
            continue
        op = comparison.op
        if op == "==" and not lhs == rhs:
            return False
        if op == "!=" and not lhs != rhs:
            return False
        if op == "<" and not lhs < rhs:
            return False
        if op == "<=" and not lhs <= rhs:
            return False
        if op == ">" and not lhs > rhs:
            return False
        if op == ">=" and not lhs >= rhs:
            return False
    return True


def _eval_term(term: ast.Term, env: dict):
    if isinstance(term, ast.Var):
        return env[term.name]
    if isinstance(term, (ast.IntConst, ast.FloatConst)):
        return term.value
    if isinstance(term, ast.BinOp):
        lhs = _eval_term(term.lhs, env)
        rhs = _eval_term(term.rhs, env)
        op = term.op
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            return lhs / rhs if rhs != 0 else float("inf")
        if op == "%":
            return lhs % rhs if rhs != 0 else 0
        raise ValueError(f"unknown operator {op!r}")
    if isinstance(term, ast.Neg):
        return -_eval_term(term.operand, env)
    raise TypeError(f"cannot evaluate {term!r}")

"""Seeded, replayable stream sources over the workload generators.

A stream source turns one of the repo's static fact bases (graph
corpora, PSA subjects, CSPA instances) into a *timed* sequence of input
facts: :meth:`StreamSource.batch` is a pure function of the tick index,
so any consumer can replay the stream from tick 0 and observe the exact
same events — the property every determinism test and every latency
histogram in the streaming benchmark rests on.

Probabilities are assigned **per row** at construction time (from the
source's own seeded generator), so a row that leaves a window and later
re-enters carries the same probability both times.  Without that, the
window's "re-insert extends the row's life" dedup policy would have to
choose between two probabilities for one live row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "StreamEvent",
    "RelationStream",
    "graph_edge_stream",
    "psa_churn_stream",
]


@dataclass(frozen=True)
class StreamEvent:
    """One timed input fact: insert ``row`` into ``relation``."""

    relation: str
    row: tuple
    prob: float | None = None


class StreamSource:
    """Base class: a deterministic tick -> event-batch function."""

    #: Relations this source feeds (windows stage deltas per relation).
    relations: tuple[str, ...] = ()

    def batch(self, tick: int) -> list[StreamEvent]:
        """The events arriving at ``tick``.  Must be a pure function of
        ``tick`` — calling it twice, or out of order, returns the same
        batch, which is what makes streams replayable."""
        raise NotImplementedError


class RelationStream(StreamSource):
    """Cycle a fixed row set through one relation at a steady rate.

    The rows are shuffled once with the seed and then replayed
    ``per_tick`` at a time, wrapping around — a window larger than
    ``len(rows) / per_tick`` ticks therefore holds every row at once,
    and a smaller one slides over the shuffled order like churn over a
    changing working set.
    """

    def __init__(
        self,
        relation: str,
        rows: list[tuple],
        per_tick: int,
        seed: int = 0,
        prob_range: tuple[float, float] | None = None,
    ):
        if per_tick < 1:
            raise ValueError("per_tick must be >= 1")
        if not rows:
            raise ValueError("a RelationStream needs at least one row")
        self.relation = relation
        self.relations = (relation,)
        self.per_tick = per_tick
        self.seed = seed
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(rows))
        self._rows = [tuple(rows[i]) for i in order]
        self._probs: list[float | None]
        if prob_range is None:
            self._probs = [None] * len(self._rows)
        else:
            lo, hi = prob_range
            self._probs = [float(p) for p in rng.uniform(lo, hi, len(self._rows))]

    def __len__(self) -> int:
        return len(self._rows)

    def batch(self, tick: int) -> list[StreamEvent]:
        if tick < 0:
            raise ValueError("ticks start at 0")
        start = tick * self.per_tick
        events = []
        for offset in range(self.per_tick):
            index = (start + offset) % len(self._rows)
            events.append(
                StreamEvent(self.relation, self._rows[index], self._probs[index])
            )
        return events


def graph_edge_stream(
    name: str,
    per_tick: int,
    seed: int = 0,
    relation: str = "edge",
    prob_range: tuple[float, float] | None = None,
) -> RelationStream:
    """A stream cycling a named corpus graph's edges (the sliding-window
    TC workload of the streaming benchmark)."""
    from ..workloads.graphs import load_graph

    return RelationStream(
        relation, load_graph(name), per_tick, seed=seed, prob_range=prob_range
    )


def psa_churn_stream(
    subject: str,
    per_tick: int,
    seed: int = 0,
    relation: str = "assign",
    prob_range: tuple[float, float] = (0.6, 1.0),
) -> RelationStream:
    """Static-analysis churn: cycle one of a PSA subject's probabilistic
    relations (``assign`` by default — the facts a code edit touches)
    while the rest of the subject's fact base stays persistent."""
    from ..workloads.static_analysis import psa_instance

    instance = psa_instance(subject)
    rows, _ = instance["probabilistic"][relation]
    return RelationStream(
        relation, rows, per_tick, seed=seed, prob_range=prob_range
    )

"""The §3.5 extension: vectorized top-k-proofs on the device.

Checked against the CPU top-k baseline (shared semantics) and against
exact inference on small instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LobsterEngine
from repro.baselines import ScallopInterpreter
from repro.provenance import create

TC = "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."


class TestSemantics:
    def test_k1_equals_top1(self):
        probs = np.array([0.5, 0.5, 0.3])
        topk = create("top-k-proofs-device", k=1, proof_capacity=8)
        top1 = create("prob-top-1-proofs", proof_capacity=8)
        for provenance in (topk, top1):
            provenance.setup(probs)
        a = topk.otimes(topk.input_tags(np.array([0])), topk.input_tags(np.array([1])))
        b = top1.otimes(top1.input_tags(np.array([0])), top1.input_tags(np.array([1])))
        assert topk.prob(a)[0] == pytest.approx(top1.prob(b)[0])

    def test_inclusion_exclusion_two_proofs(self):
        provenance = create("top-k-proofs-device", k=2, proof_capacity=8)
        provenance.setup(np.array([0.5, 0.5, 0.3]))
        d1 = provenance.otimes(
            provenance.input_tags(np.array([0])), provenance.input_tags(np.array([1]))
        )
        pooled = np.concatenate([d1, provenance.input_tags(np.array([2]))])
        reduced = provenance.oplus_reduce(pooled, np.array([0, 0]), 1)
        # P({0,1} or {2}) = 0.25 + 0.3 - 0.075
        assert provenance.prob(reduced)[0] == pytest.approx(0.475)

    def test_duplicate_proofs_not_double_counted(self):
        provenance = create("top-k-proofs-device", k=3, proof_capacity=8)
        provenance.setup(np.array([0.6]))
        a = provenance.input_tags(np.array([0]))
        pooled = np.concatenate([a, a.copy()])
        reduced = provenance.oplus_reduce(pooled, np.array([0, 0]), 1)
        assert provenance.prob(reduced)[0] == pytest.approx(0.6)
        assert (reduced["size"][0] >= 0).sum() == 1  # one distinct proof

    def test_exclusion_conflicts_zero_terms(self):
        provenance = create("top-k-proofs-device", k=2, proof_capacity=8)
        provenance.setup(np.array([0.6, 0.4]), np.array([3, 3]))
        a = provenance.input_tags(np.array([0]))
        b = provenance.input_tags(np.array([1]))
        conj = provenance.otimes(a, b)
        assert provenance.is_absorbing_zero(conj)[0]
        pooled = np.concatenate([a, b])
        reduced = provenance.oplus_reduce(pooled, np.array([0, 0]), 1)
        # Exclusive alternatives: P = 0.6 + 0.4, no intersection term.
        assert provenance.prob(reduced)[0] == pytest.approx(1.0)

    def test_gradient_matches_finite_difference(self):
        probs = np.array([0.5, 0.5, 0.3])
        provenance = create("diff-top-k-proofs-device", k=2, proof_capacity=8)
        provenance.setup(probs)
        d1 = provenance.otimes(
            provenance.input_tags(np.array([0])), provenance.input_tags(np.array([1]))
        )
        reduced = provenance.oplus_reduce(
            np.concatenate([d1, provenance.input_tags(np.array([2]))]),
            np.array([0, 0]),
            1,
        )
        grad = np.zeros(3)
        provenance.backward(reduced, np.array([1.0]), grad)

        def total_prob(p):
            return p[0] * p[1] + p[2] - p[0] * p[1] * p[2]

        eps = 1e-6
        for index in range(3):
            perturbed = probs.copy()
            perturbed[index] += eps
            numeric = (total_prob(perturbed) - total_prob(probs)) / eps
            assert grad[index] == pytest.approx(numeric, rel=1e-4)


class TestEndToEnd:
    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(lambda e: e[0] != e[1]),
            min_size=1,
            max_size=12,
            unique=True,
        ),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_matches_scallop_topk(self, edges, seed):
        rng = np.random.default_rng(seed)
        probs = rng.uniform(0.1, 0.9, size=len(edges))

        device = LobsterEngine(TC, provenance="top-k-proofs-device", k=2, proof_capacity=16)
        db = device.create_database()
        db.add_facts("edge", edges, probs=list(probs))
        device.run(db)
        device_probs = device.query_probs(db, "path")

        cpu = ScallopInterpreter(TC, provenance="top-k-proofs", k=2)
        sdb = cpu.create_database()
        sdb.add_facts("edge", edges, probs=list(probs))
        cpu.run(sdb)

        assert set(device_probs) == set(sdb.rows("path"))
        for row, prob in device_probs.items():
            # Both keep 2 proofs; tie-breaking on equal-probability proofs
            # may differ, so compare with a tolerance scaled to tag size.
            assert prob == pytest.approx(sdb.prob("path", row), abs=1e-6)

    def test_k2_at_least_top1(self):
        """More proofs can only raise the derived probability."""
        edges = [(0, 1), (1, 3), (0, 2), (2, 3)]
        probs = [0.5, 0.5, 0.4, 0.4]
        results = {}
        for name, kwargs in (
            ("prob-top-1-proofs", {"proof_capacity": 16}),
            ("top-k-proofs-device", {"k": 3, "proof_capacity": 16}),
        ):
            engine = LobsterEngine(TC, provenance=name, **kwargs)
            db = engine.create_database()
            db.add_facts("edge", edges, probs=probs)
            engine.run(db)
            results[name] = engine.query_probs(db, "path")[(0, 3)]
        assert results["top-k-proofs-device"] > results["prob-top-1-proofs"]
        assert results["top-k-proofs-device"] == pytest.approx(0.25 + 0.16 - 0.04)

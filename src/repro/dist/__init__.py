"""Sharded multi-device execution (the scale-out layer).

Four pieces compose the subsystem:

* :mod:`~repro.dist.partition` — deterministic hash ownership of rows
  (:class:`HashPartitioner`);
* :mod:`~repro.dist.exchange` — shuffle/all-gather collectives that
  re-partition per-iteration deltas and charge the device cost model for
  every cross-device byte (:class:`ExchangeOperator`);
* :mod:`~repro.dist.executor` — the sharded semi-naive loop
  (:class:`ShardedExecutor`), reached via ``LobsterEngine(shards=N)``;
* :mod:`~repro.dist.pool` — round-robin device pools for throughput
  serving of independent session queries (:class:`DevicePool`).
"""

from .exchange import ExchangeOperator
from .executor import ShardedExecutor, ShardView
from .partition import HashPartitioner, hash_rows
from .pool import DevicePool

__all__ = [
    "DevicePool",
    "ExchangeOperator",
    "HashPartitioner",
    "ShardView",
    "ShardedExecutor",
    "hash_rows",
]

"""Batched evaluation (§4.3): sample-tagged databases."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LobsterEngine, LobsterError
from repro.datalog.parser import parse
from repro.runtime.batching import SAMPLE_VAR, batch_transform

TC = "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."


class TestBatchTransform:
    def test_atoms_widened(self):
        program = batch_transform(parse(TC))
        rule = program.rules[0]
        assert rule.head.args[0].name == SAMPLE_VAR
        first_atom = rule.body.items[0]
        assert first_atom.args[0].name == SAMPLE_VAR

    def test_declarations_widened(self):
        program = batch_transform(parse("type edge(x: u32, y: u32)"))
        assert program.relation_decls[0].arg_types[0] == "usize"
        assert len(program.relation_decls[0].arg_types) == 3


class TestBatchedExecution:
    def test_samples_do_not_mix(self):
        engine = LobsterEngine(TC, provenance="unit", batched=True)
        db = engine.create_database()
        # Sample 0: 0 -> 1 -> 2.  Sample 1: 2 -> 3 only.
        engine.add_batch_facts(db, "edge", 0, [(0, 1), (1, 2)])
        engine.add_batch_facts(db, "edge", 1, [(2, 3)])
        engine.run(db)
        by_sample = engine.query_by_sample(db, "path")
        assert set(by_sample[0]) == {(0, 1), (1, 2), (0, 2)}
        assert set(by_sample[1]) == {(2, 3)}

    def test_batched_probabilities_match_individual(self):
        rng = np.random.default_rng(0)
        edges = [(0, 1), (1, 2), (0, 2)]
        probs_a = rng.uniform(0.2, 0.9, 3)
        probs_b = rng.uniform(0.2, 0.9, 3)

        batched = LobsterEngine(TC, provenance="minmaxprob", batched=True)
        db = batched.create_database()
        batched.add_batch_facts(db, "edge", 0, edges, probs=list(probs_a))
        batched.add_batch_facts(db, "edge", 1, edges, probs=list(probs_b))
        batched.run(db)
        by_sample = batched.query_by_sample(db, "path")

        for sample, probs in ((0, probs_a), (1, probs_b)):
            single = LobsterEngine(TC, provenance="minmaxprob")
            sdb = single.create_database()
            sdb.add_facts("edge", edges, probs=list(probs))
            single.run(sdb)
            expected = single.query_probs(sdb, "path")
            assert by_sample[sample].keys() == expected.keys()
            for row, p in expected.items():
                assert by_sample[sample][row] == pytest.approx(p)

    def test_unbatched_engine_rejects_batch_api(self):
        engine = LobsterEngine(TC)
        db = engine.create_database()
        with pytest.raises(LobsterError):
            engine.add_batch_facts(db, "edge", 0, [(0, 1)])
        engine2 = LobsterEngine(TC, batched=True)
        db2 = engine2.create_database()
        engine2.add_batch_facts(db2, "edge", 0, [(0, 1)])
        engine2.run(db2)
        with pytest.raises(LobsterError):
            LobsterEngine(TC).query_by_sample(db2, "path")

    def test_fact_block_replication(self):
        engine = LobsterEngine(
            "rel base = {(7, 8)}\n"
            "rel out(x, y) :- base(x, y) or (extra(x, y)).",
            batched=True,
        )
        db = engine.create_database()
        engine.replicate_fact_blocks(db, 2)
        engine.add_batch_facts(db, "extra", 1, [(1, 2)])
        engine.run(db)
        by_sample = engine.query_by_sample(db, "out")
        assert set(by_sample[0]) == {(7, 8)}
        assert set(by_sample[1]) == {(7, 8), (1, 2)}

    def test_large_batch(self):
        engine = LobsterEngine(TC, provenance="unit", batched=True)
        db = engine.create_database()
        for sample in range(16):
            chain = [(i, i + 1) for i in range(sample % 4 + 1)]
            engine.add_batch_facts(db, "edge", sample, chain)
        engine.run(db)
        by_sample = engine.query_by_sample(db, "path")
        for sample in range(16):
            n = sample % 4 + 1
            assert len(by_sample[sample]) == n * (n + 1) // 2

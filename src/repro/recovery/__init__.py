"""Durability for streaming views: checkpoints, WAL, crash recovery.

The subsystem is four small layers, each testable in isolation:

* :mod:`~repro.recovery.storage` — the byte-level seam (append,
  atomic swap); the fault-injection harness substitutes it.
* :mod:`~repro.recovery.codec` + :mod:`~repro.recovery.framing` — a
  deterministic binary codec (bit-exact floats, numpy arrays, tuple
  keys) under CRC32 frames with torn-tail detection.
* :mod:`~repro.recovery.checkpoint` + :mod:`~repro.recovery.wal` —
  atomically swapped state snapshots and the segmented record log
  between them.
* :mod:`~repro.recovery.manager` — :class:`RecoveryManager` (the
  writer: WAL-then-apply, periodic checkpoints, durable cursors) and
  :func:`recover` (the reader: newest valid checkpoint + verified
  maintain over the WAL tail).

Example — a stream that survives ``kill -9``::

    manager = RecoveryManager("state/", checkpoint_every=8)
    manager.register("tc", view, window)
    manager.apply("tc", window.advance())      # durable tick
    ...                                        # crash here, any time
    manager, views, info = recover("state/", {"tc": (engine, window)})
    views["tc"].result("path")                 # identical to pre-crash
"""

from .checkpoint import CheckpointStore, FORMAT_VERSION
from .codec import decode, encode
from .framing import FrameScan, frame, read_frames
from .manager import (
    RecoveryInfo,
    RecoveryManager,
    export_database,
    import_database,
    recover,
)
from .storage import LocalStorage
from .wal import WriteAheadLog

__all__ = [
    "CheckpointStore",
    "FORMAT_VERSION",
    "FrameScan",
    "LocalStorage",
    "RecoveryInfo",
    "RecoveryManager",
    "WriteAheadLog",
    "decode",
    "encode",
    "export_database",
    "frame",
    "import_database",
    "read_frames",
    "recover",
]

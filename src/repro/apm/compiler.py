"""RAM -> APM lowering (§3.3, Appendix A).

Implements the ``compile :: RAM -> [instr] x [reg]`` function: each RAM
operator becomes a short, fixed sequence of APM instructions, and the
translation returns the register pack holding the operator's result.

Semi-naive evaluation is encoded at compile time (the "Join" rule of
Appendix A): every recursive rule is expanded into one *variant* per
recursive body atom, with that atom's scan loading the ``recent``
partition and all others loading ``full``.  Deduplication at the stratum
boundary (the "Stratum" rule's sort/unique/merge sequence) makes the
slight overlap between variants harmless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import instructions as I
from ..errors import CompileError
from ..ram import exprs as E
from ..ram import ir
from ..ram.ir import (
    column_origins,
    output_dtypes,
    replace_scan_partition,
    scans_of,
)


@dataclass
class Variant:
    """One semi-naive variant of a rule: a straight-line APM program."""

    instructions: list[I.Instruction]
    result: I.Pack
    #: Index of the scan loading RECENT, or None for the all-full variant.
    recent_scan: int | None
    #: ``(predicate, partition)`` of the variant's frontier scan (the one
    #: atom loading RECENT or DELTA), or None for the all-full variant.
    #: The DRed over-delete loop keys on this to execute only variants
    #: whose frontier relation actually gained doomed rows.
    frontier: tuple[str, str] | None = None
    #: Owning rule's plan key (``s<i>r<j>``) — how the interpreter's
    #: cardinality feedback lines observed firings up with the planner's
    #: per-rule estimates.
    rule_key: str | None = None


@dataclass
class CompiledRule:
    target: str
    variants: list[Variant]
    edb_only: bool
    #: Incremental-only variants: one per non-recursive body atom, with
    #: that atom's scan loading the DELTA partition (rows added or
    #: improved since the last run).  Executed only in iteration 1 of an
    #: incremental pass, where they seed the fix point from the deltas —
    #: the Δ(A ⋈ B) = ΔA ⋈ B ∪ A ⋈ ΔB expansion over non-recursive atoms
    #: (recursive atoms are already covered by the RECENT variants).
    delta_variants: list[Variant] = field(default_factory=list)
    #: All-FULL variant for DRed re-derivation (None under negation).
    #: For flat rules this aliases ``variants[0]``; recursive rules get
    #: an extra compile, since their normal variants all scan RECENT.
    rederive_variant: Variant | None = None
    #: ``scan_index -> [(scan_column, head_column), ...]``: which leaf
    #: columns copy into which head columns (from
    #: :func:`~repro.ram.ir.column_origins`).  Re-derivation pushes the
    #: doomed-head restriction down to each leaf as per-column value
    #: semijoins against the removed rows' projections.
    rederive_filters: dict[int, list[tuple[int, int]]] = field(default_factory=dict)


@dataclass
class CompiledStratum:
    predicates: list[str]
    rules: list[CompiledRule]
    recursive: bool
    #: Recursive-join count — the §5.3 offload-scheduling heuristic score.
    score: int = 0


@dataclass(eq=False)
class ApmProgram:
    """A compiled program.  ``eq=False`` keeps identity hashing so shared
    artifacts can key weak caches (e.g. the transfer-plan memo)."""

    strata: list[CompiledStratum]
    schemas: dict[str, tuple[np.dtype, ...]]
    queries: list[str] = field(default_factory=list)
    #: Whether any rule negates (AntiProbe / arity-0 PassIfEmpty).  Adding
    #: EDB facts can *retract* conclusions of such programs, so incremental
    #: re-evaluation falls back to a from-scratch rerun.
    has_negation: bool = False

    def instruction_count(self) -> int:
        return sum(
            len(variant.instructions)
            for stratum in self.strata
            for rule in stratum.rules
            for variant in rule.variants
        )


class ApmCompiler:
    """Compiles a RAM program to APM."""

    def __init__(self, ram: ir.RamProgram):
        self.ram = ram
        self._fresh = 0

    # ------------------------------------------------------------------

    def compile(self) -> ApmProgram:
        strata: list[CompiledStratum] = []
        # Negation anywhere disables incremental evaluation program-wide,
        # so delta variants would be dead weight — skip compiling them.
        has_negation = any(
            _has_antijoin(rule.expr)
            for stratum in self.ram.strata
            for rule in stratum.rules
        )
        for stratum_index, stratum in enumerate(self.ram.strata):
            pred_set = set(stratum.predicates)
            rules: list[CompiledRule] = []
            score = 0
            for rule_index, rule in enumerate(stratum.rules):
                variants: list[Variant] = []
                if rule.recursive_atoms:
                    score += len(rule.recursive_atoms)
                    for scan_index in rule.recursive_atoms:
                        expr = replace_scan_partition(rule.expr, scan_index, I.RECENT)
                        variants.append(
                            self._compile_variant(
                                expr, rule.target, pred_set,
                                key=f"s{stratum_index}r{rule_index}v{scan_index}",
                                recent_scan=scan_index,
                            )
                        )
                else:
                    variants.append(
                        self._compile_variant(
                            rule.expr, rule.target, pred_set,
                            key=f"s{stratum_index}r{rule_index}",
                            recent_scan=None,
                        )
                    )
                recursive = set(rule.recursive_atoms)
                delta_variants = [
                    self._compile_variant(
                        replace_scan_partition(rule.expr, scan_index, I.DELTA),
                        rule.target, pred_set,
                        key=f"s{stratum_index}r{rule_index}d{scan_index}",
                        recent_scan=None,
                    )
                    for scan_index in range(len(scans_of(rule.expr)))
                    if scan_index not in recursive
                ] if not has_negation else []
                rederive_variant = None
                rederive_filters: dict[int, list[tuple[int, int]]] = {}
                if not has_negation:
                    rederive_variant = (
                        variants[0]
                        if not rule.recursive_atoms
                        else self._compile_variant(
                            rule.expr, rule.target, pred_set,
                            key=f"s{stratum_index}r{rule_index}f",
                            recent_scan=None,
                        )
                    )
                    origins = column_origins(rule.expr, self.ram.schemas)
                    for head_col, sources in enumerate(origins):
                        for scan_index, scan_col in sources:
                            rederive_filters.setdefault(scan_index, []).append(
                                (scan_col, head_col)
                            )
                plan_key = f"s{stratum_index}r{rule_index}"
                for variant in variants + delta_variants:
                    variant.rule_key = plan_key
                if rederive_variant is not None:
                    rederive_variant.rule_key = plan_key
                rules.append(
                    CompiledRule(
                        rule.target,
                        variants,
                        edb_only=not rule.recursive_atoms,
                        delta_variants=delta_variants,
                        rederive_variant=rederive_variant,
                        rederive_filters=rederive_filters,
                    )
                )
            strata.append(
                CompiledStratum(stratum.predicates, rules, stratum.recursive, score)
            )
        program = ApmProgram(strata, dict(self.ram.schemas), list(self.ram.queries))
        program.has_negation = has_negation
        return program

    # ------------------------------------------------------------------

    def _compile_variant(
        self,
        expr: ir.RamExpr,
        target: str,
        stratum_preds: set[str],
        key: str,
        recent_scan: int | None,
    ) -> Variant:
        instrs: list[I.Instruction] = []
        pack = self._compile_expr(expr, instrs, stratum_preds, key)
        instrs.append(I.StoreDelta(target, pack))
        frontier = next(
            (
                (scan.predicate, scan.partition)
                for scan in scans_of(expr)
                if scan.partition in (I.RECENT, I.DELTA)
            ),
            None,
        )
        return Variant(instrs, pack, recent_scan, frontier)

    def _reg(self, hint: str) -> str:
        self._fresh += 1
        return f"r{self._fresh}_{hint}"

    def _pack(self, hint: str, dtypes: tuple[np.dtype, ...]) -> I.Pack:
        cols = tuple(self._reg(f"{hint}c{j}") for j in range(len(dtypes)))
        return I.Pack(cols, self._reg(f"{hint}t"), dtypes)

    def _compile_expr(
        self,
        expr: ir.RamExpr,
        instrs: list[I.Instruction],
        stratum_preds: set[str],
        key: str,
    ) -> I.Pack:
        schemas = self.ram.schemas

        if isinstance(expr, ir.Scan):
            pack = self._pack("ld", schemas[expr.predicate])
            instrs.append(I.Load(pack, expr.predicate, expr.partition))
            return pack

        if isinstance(expr, ir.Select):
            src = self._compile_expr(expr.source, instrs, stratum_preds, key)
            program = E.to_bytecode(expr.predicate, src.dtypes)
            dst = self._pack("sel", src.dtypes)
            instrs.append(I.EvalFilter(dst, src, program))
            return dst

        if isinstance(expr, ir.Project):
            src = self._compile_expr(expr.source, instrs, stratum_preds, key)
            dtypes = tuple(E.expr_dtype(e, src.dtypes) for e in expr.exprs)
            programs: list[object] = []
            for e in expr.exprs:
                if isinstance(e, E.Col):
                    programs.append(e.index)  # columnar-copy fast path
                else:
                    programs.append(E.to_bytecode(e, src.dtypes))
            dst = self._pack("prj", dtypes)
            instrs.append(I.EvalProject(dst, src, tuple(programs)))
            return dst

        if isinstance(expr, ir.Join):
            return self._compile_join(expr, instrs, stratum_preds, key)

        if isinstance(expr, ir.Antijoin):
            left = self._compile_expr(expr.left, instrs, stratum_preds, key)
            right = self._compile_expr(expr.right, instrs, stratum_preds, key)
            if expr.width == 0:
                dst = self._pack("neg0", left.dtypes)
                instrs.append(I.PassIfEmpty(dst, left, right.tags))
                return dst
            index = self._reg("hneg")
            instrs.append(I.Build(index, right, expr.width, None))
            keep = self._reg("ikeep")
            instrs.append(I.AntiProbe(keep, index, left, expr.width))
            dst = self._pack("neg", left.dtypes)
            instrs.append(I.Gather(dst.cols, keep, left.cols))
            instrs.append(I.Gather((dst.tags,), keep, (left.tags,)))
            return dst

        if isinstance(expr, ir.Product):
            left = self._compile_expr(expr.left, instrs, stratum_preds, key)
            right = self._compile_expr(expr.right, instrs, stratum_preds, key)
            il, ir_ = self._reg("xl"), self._reg("xr")
            instrs.append(I.CrossIndices(il, ir_, left.tags, right.tags))
            dst = self._pack("prod", left.dtypes + right.dtypes)
            instrs.append(I.Gather(dst.cols[: len(left.cols)], il, left.cols))
            instrs.append(I.Gather(dst.cols[len(left.cols) :], ir_, right.cols))
            instrs.append(I.GatherTags(dst.tags, il, ir_, left.tags, right.tags))
            return dst

        if isinstance(expr, ir.Intersect):
            # a ∩ b  ≡  project-left(a ⊲⊳_arity b) with ⊗-combined tags.
            width = len(output_dtypes(expr.left, schemas))
            return self._compile_join(
                ir.Join(expr.left, expr.right, width), instrs, stratum_preds, key
            )

        if isinstance(expr, ir.Union):
            raise CompileError(
                "Union nodes are expanded into separate rules before APM "
                "lowering; the stratum-level store/merge realizes them"
            )

        raise CompileError(f"cannot lower RAM node {expr!r}")

    # ------------------------------------------------------------------

    def _compile_join(
        self,
        expr: ir.Join,
        instrs: list[I.Instruction],
        stratum_preds: set[str],
        key: str,
    ) -> I.Pack:
        """The Fig. 6 join pipeline, with build-side selection.

        The hash index is built over the side that is iteration-invariant
        (no recursive or recent scans) whenever possible, so the §4.2
        static-register optimization can cache it across iterations —
        the "linear recursion" case the paper highlights.
        """
        left = self._compile_expr(expr.left, instrs, stratum_preds, key)
        right = self._compile_expr(expr.right, instrs, stratum_preds, key)
        width = expr.width

        left_static = self._static_eligible(expr.left, stratum_preds)
        right_static = self._static_eligible(expr.right, stratum_preds)
        build_on_left = left_static or not right_static

        node_id = len(instrs)
        if build_on_left:
            build, probe = left, right
            static_key = f"{key}n{node_id}" if left_static else None
        else:
            build, probe = right, left
            static_key = f"{key}n{node_id}"

        index = self._reg("h")
        instrs.append(I.Build(index, build, width, static_key))
        i_build, i_probe = self._reg("ib"), self._reg("ip")
        instrs.append(I.Probe(i_build, i_probe, index, probe, width))

        # Output layout: all left columns, then right's non-key columns.
        i_left = i_build if build_on_left else i_probe
        i_right = i_probe if build_on_left else i_build
        dst_dtypes = left.dtypes + right.dtypes[width:]
        dst = self._pack("jn", dst_dtypes)
        n_left = len(left.cols)
        instrs.append(I.Gather(dst.cols[:n_left], i_left, left.cols))
        instrs.append(I.Gather(dst.cols[n_left:], i_right, right.cols[width:]))
        instrs.append(I.GatherTags(dst.tags, i_left, i_right, left.tags, right.tags))
        return dst

    @staticmethod
    def _static_eligible(expr: ir.RamExpr, stratum_preds: set[str]) -> bool:
        """True when the subtree's value cannot change across iterations."""
        return all(
            scan.predicate not in stratum_preds and scan.partition == I.FULL
            for scan in scans_of(expr)
        )


def _has_antijoin(expr: ir.RamExpr) -> bool:
    """Whether a RAM tree negates (lowers to AntiProbe / PassIfEmpty)."""
    if isinstance(expr, ir.Antijoin):
        return True
    if isinstance(expr, (ir.Project, ir.Select)):
        return _has_antijoin(expr.source)
    if isinstance(expr, (ir.Join, ir.Product, ir.Intersect)):
        return _has_antijoin(expr.left) or _has_antijoin(expr.right)
    if isinstance(expr, ir.Union):
        return any(_has_antijoin(item) for item in expr.items)
    return False


def compile_ram(ram: ir.RamProgram) -> ApmProgram:
    return ApmCompiler(ram).compile()

"""Baseline engines: Scallop, Souffle, ProbLog, FVLog stand-ins."""

from .fvlog import FVLogEngine
from .problog import ExactProofsProvenance, ProbLogEngine
from .scallop import ScallopDatabase, ScallopInterpreter
from .souffle import SouffleEngine

__all__ = [
    "ExactProofsProvenance",
    "FVLogEngine",
    "ProbLogEngine",
    "ScallopDatabase",
    "ScallopInterpreter",
    "SouffleEngine",
]

"""The paper's nine benchmark workloads plus the synthetic graph corpus."""

from . import analytics, clutrr, graphs, hwf, pacman, pathfinder, rna, static_analysis
from .graphs import load_graph

__all__ = [
    "analytics",
    "clutrr",
    "graphs",
    "hwf",
    "load_graph",
    "pacman",
    "pathfinder",
    "rna",
    "static_analysis",
]

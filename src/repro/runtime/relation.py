"""Stored relations with semi-naive partitions (§3.4).

Each relation keeps one lexicographically *sorted* ``full`` table (every
fact with its current best tag) plus a boolean ``recent`` mask marking the
semi-naive frontier.  :meth:`StoredRelation.advance` folds an iteration's
delta facts in:

* the delta is sorted and deduplicated, combining duplicate tags with ⊕
  (the APM ``sort``/``unique⟨⊕⟩`` sequence of Appendix A's "Stratum" rule);
* the deduplicated delta is merged against ``full`` (the ``merge``
  instruction); a fact re-enters the frontier if it is brand new or its
  tag strictly improved (tag saturation).

Alongside the per-iteration ``recent`` frontier, each relation keeps a
``changed`` mask accumulating every row added or improved since
:meth:`StoredRelation.begin_delta_tracking`.  Incremental re-evaluation
zeroes the mask before folding new EDB facts in, then seeds its delta
variants from the ``delta`` partition (the changed rows) — including
changes produced by *earlier strata* of the same pass, which the
per-iteration ``recent`` mask has already forgotten by the time a later
stratum runs.
"""

from __future__ import annotations

import numpy as np

from .table import Table
from ..gpu import kernels
from ..provenance.base import Provenance


def dedup_table(delta: Table, provenance: Provenance) -> Table:
    """Sort + unique⟨⊕⟩ a delta table (the APM ``sort``/``unique⟨⊕⟩``
    sequence), standalone so callers outside a :class:`StoredRelation` —
    notably the sharded executor's owner-side merge — can share it."""
    if delta.arity == 0:
        if delta.n_rows == 0:
            return delta
        seg = np.zeros(delta.n_rows, dtype=np.int64)
        tags = provenance.oplus_reduce(delta.tags, seg, 1)
        return Table([], tags, 1)
    order = kernels.lex_rank(delta.columns)
    sorted_cols = [c[order] for c in delta.columns]
    sorted_tags = delta.tags[order]
    unique_cols, segment_ids, _ = kernels.unique_rows(sorted_cols)
    nseg = len(unique_cols[0]) if unique_cols else 0
    tags = provenance.oplus_reduce(sorted_tags, segment_ids, nseg)
    return Table(unique_cols, tags, nseg)


class StoredRelation:
    """One relation's persistent storage across fix-point iterations."""

    def __init__(self, name: str, dtypes: tuple[np.dtype, ...], provenance: Provenance):
        self.name = name
        self.dtypes = dtypes
        self.provenance = provenance
        self.full = Table.empty(dtypes, provenance)
        self.recent_mask = np.zeros(0, dtype=bool)
        self.changed_mask = np.zeros(0, dtype=bool)

    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.dtypes)

    def n_facts(self) -> int:
        return self.full.n_rows

    def n_recent(self) -> int:
        return int(self.recent_mask.sum())

    def nbytes(self) -> int:
        return self.full.nbytes() + self.recent_mask.nbytes

    def snapshot(self, part: str) -> Table:
        """Return the requested partition: ``full``, ``recent``,
        ``stable``, or ``delta`` (rows changed since tracking began)."""
        if part == "full":
            return self.full
        if part == "recent":
            return self.full.take(np.flatnonzero(self.recent_mask))
        if part == "stable":
            return self.full.take(np.flatnonzero(~self.recent_mask))
        if part == "delta":
            return self.full.take(np.flatnonzero(self.changed_mask))
        raise ValueError(f"unknown partition {part!r}")

    def mark_all_recent(self) -> None:
        self.recent_mask = np.ones(self.full.n_rows, dtype=bool)

    def clear_recent(self) -> None:
        self.recent_mask = np.zeros(self.full.n_rows, dtype=bool)

    def begin_delta_tracking(self) -> None:
        """Zero the ``changed`` mask; subsequent :meth:`advance` calls
        accumulate added/improved rows into it."""
        self.changed_mask = np.zeros(self.full.n_rows, dtype=bool)

    def n_changed(self) -> int:
        return int(self.changed_mask.sum())

    def seed_recent_from_changes(self) -> None:
        """Make the semi-naive frontier exactly the changed rows (the
        incremental-pass replacement for :meth:`mark_all_recent`)."""
        self.recent_mask = self.changed_mask.copy()

    # ------------------------------------------------------------------

    def set_facts(self, table: Table) -> None:
        """Replace contents with ``table`` (EDB loading); dedups with ⊕."""
        self.full = Table.empty(self.dtypes, self.provenance)
        self.recent_mask = np.zeros(0, dtype=bool)
        self.changed_mask = np.zeros(0, dtype=bool)
        if table.n_rows:
            self.advance(table)
        self.mark_all_recent()

    def advance(self, delta: Table) -> int:
        """Fold delta facts in; returns the new frontier size.

        Previously recent facts become stable; delta facts that are new or
        whose tags improved become the frontier.
        """
        prov = self.provenance
        if len(self.changed_mask) != self.full.n_rows:
            self.changed_mask = np.zeros(self.full.n_rows, dtype=bool)
        if delta.n_rows == 0:
            self.clear_recent()
            return 0

        delta = self._dedup(delta)
        if delta.n_rows == 0:
            self.clear_recent()
            return 0

        if self.full.n_rows == 0:
            keep = ~prov.is_absorbing_zero(delta.tags)
            self.full = delta.take(np.flatnonzero(keep))
            self.recent_mask = np.ones(self.full.n_rows, dtype=bool)
            self.changed_mask = np.ones(self.full.n_rows, dtype=bool)
            return self.full.n_rows

        # Merge sorted full with sorted delta; an origin column (0 = old,
        # 1 = new) is the least significant sort key so the existing fact
        # leads each duplicate group.
        n_old, n_new = self.full.n_rows, delta.n_rows
        combined_cols = [
            np.concatenate([self.full.columns[j], delta.columns[j]])
            for j in range(self.arity)
        ]
        origin = np.concatenate(
            [np.zeros(n_old, dtype=np.int64), np.ones(n_new, dtype=np.int64)]
        )
        combined_tags = np.concatenate([self.full.tags, delta.tags])
        order = kernels.lex_rank(combined_cols + [origin])
        combined_cols = [c[order] for c in combined_cols]
        origin = origin[order]
        combined_tags = combined_tags[order]

        if self.arity == 0:
            is_first = np.zeros(n_old + n_new, dtype=bool)
            if n_old + n_new:
                is_first[0] = True
        else:
            is_first = kernels.row_group_boundaries(combined_cols)
        segment_ids = np.cumsum(is_first) - 1
        nseg = int(segment_ids[-1]) + 1 if len(segment_ids) else 0
        firsts = np.flatnonzero(is_first)

        has_old = origin[firsts] == 0

        # Combine the new rows of each segment with ⊕.
        new_rows = np.flatnonzero(origin == 1)
        new_segments = segment_ids[new_rows]
        seg_has_new = np.zeros(nseg, dtype=bool)
        seg_has_new[new_segments] = True
        # Dense renumbering of segments that contain new rows.
        dense_of_seg = np.cumsum(seg_has_new) - 1
        combined_new = prov.oplus_reduce(
            combined_tags[new_rows], dense_of_seg[new_segments], int(seg_has_new.sum())
        )

        out_tags = combined_tags[firsts].copy()
        improved = ~has_old & seg_has_new  # brand-new facts
        both = has_old & seg_has_new
        if both.any():
            merged, tag_improved = prov.merge_existing(
                combined_tags[firsts[both]], combined_new[dense_of_seg[both]]
            )
            out_tags[both] = merged
            improved[both] = tag_improved
        pure_new = ~has_old
        if pure_new.any():
            out_tags[pure_new] = combined_new[dense_of_seg[pure_new]]

        # Drop brand-new facts whose tag is the absorbing zero.
        keep = np.ones(nseg, dtype=bool)
        zero = prov.is_absorbing_zero(out_tags)
        keep[pure_new & zero] = False

        # Carry each surviving old row's ``changed`` flag through the
        # merge (row positions shift as new facts interleave), then fold
        # this advance's improvements in.
        changed = np.zeros(nseg, dtype=bool)
        old_rows = order[firsts[has_old]]  # positions < n_old by sort order
        changed[has_old] = self.changed_mask[old_rows]
        changed |= improved

        kept = np.flatnonzero(keep)
        self.full = Table(
            [c[firsts[kept]] for c in combined_cols],
            out_tags[kept],
            len(kept),
        )
        self.recent_mask = improved[kept]
        self.changed_mask = changed[kept]
        return int(self.recent_mask.sum())

    # ------------------------------------------------------------------

    def _dedup(self, delta: Table) -> Table:
        """Sort + unique⟨⊕⟩ a delta table."""
        return dedup_table(delta, self.provenance)

"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LobsterEngine

from _helpers import TC_PROGRAM, random_digraph  # noqa: F401 (re-exported)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def run_tc(edges, provenance="unit", **kwargs):
    """Run transitive closure on the device engine; returns (engine, db)."""
    engine = LobsterEngine(TC_PROGRAM, provenance=provenance, **kwargs)
    database = engine.create_database()
    database.add_facts("edge", edges)
    engine.run(database)
    return engine, database


def brute_force_closure(edges) -> set[tuple[int, int]]:
    """Reference transitive closure via repeated squaring over sets."""
    closure = set(edges)
    while True:
        extra = {
            (a, d)
            for a, b in closure
            for c, d in closure
            if b == c and (a, d) not in closure
        }
        if not extra:
            return closure
        closure |= extra

"""Latency–throughput curves for the online serving front-end.

The serving question is not "how many rows per second" but "what does
p99 latency do as offered load approaches capacity, and what happens
past it" — the load-mix-and-tail methodology of serving-systems
evaluation (cf. the SPEC CPU2026 representativeness discussion,
PAPERS.md).  This benchmark sweeps a seeded Poisson arrival stream of
transitive-closure queries over the scheduler at a ladder of offered
loads, for 1 and 4 devices, and asserts the canonical shapes:

* **the knee** — p99 latency rises as offered load crosses single-
  device capacity, and admission control engages (nonzero shed rate)
  past it; at low load nothing is shed;
* **scale-out** — micro-batching over 4 devices sustains a strictly
  higher offered load than 1 device under the same p99 bound;
* **fidelity** — every served result is bitwise identical to running
  the same database alone on a fresh single-device engine;
* **conservation** — no request is ever lost or duplicated, and p99 is
  nonzero at every operating point (the CI smoke gate).

Offered loads are expressed as multiples of measured single-device
capacity (1 / mean modeled service time), so the curves keep their
shape if the cost model's constants change.  Everything runs on the
serve clock (simulated seconds); ``LOBSTER_SERVE_TINY=1`` shrinks the
stream for CI.
"""

from __future__ import annotations

import os

import pytest

from repro import DevicePool, LoadGenerator, LobsterEngine, Scheduler, SLOClass
from repro.workloads.analytics import TRANSITIVE_CLOSURE

from _harness import print_table, record, report

SUITE = "serving"

TINY = bool(
    os.environ.get("LOBSTER_SERVE_TINY") or os.environ.get("LOBSTER_SCALEOUT_TINY")
)
N_NODES, N_EDGES = (10, 18) if TINY else (20, 45)
N_REQUESTS = 40 if TINY else 150
#: Deadline in units of mean service time.  Scaled down with the tiny
#: stream: overload only sheds once the backlog outgrows the deadline,
#: and a 40-request stream cannot build a 60-service-time backlog.
DEADLINE_MULT = 16.0 if TINY else 60.0
LOAD_MULTIPLES = [0.25, 0.5, 0.9, 1.5, 2.5]
DEVICE_COUNTS = [1, 4]
SEED = 31


def make_engine():
    return LobsterEngine(TRANSITIVE_CLOSURE, provenance="minmaxprob")


def make_factory(engine):
    def make_database(rng, index):
        edges = sorted(
            {
                (int(a), int(b))
                for a, b in rng.integers(0, N_NODES, size=(N_EDGES, 2))
                if a != b
            }
        )
        db = engine.create_database()
        db.add_facts("edge", edges, probs=[0.9] * len(edges))
        return db, {"edges": edges}

    return make_database


def calibrate_service_seconds(engine) -> float:
    """Mean modeled per-request service time at trivial load (no
    queueing, no coalescing) — defines device capacity for the sweep."""
    factory = make_factory(engine)
    gen = LoadGenerator(engine, factory, rate_hz=1.0, n_requests=12, seed=SEED)
    scheduler = Scheduler(n_devices=1)
    report = scheduler.run(gen.generate())
    assert report.completed == 12
    return report.metrics.histogram("serve.service_s").mean


def serving_classes(service_s: float) -> dict[str, SLOClass]:
    """One interactive class scaled to the measured service time, so the
    same shape assertions hold whatever the cost-model constants are."""
    return {
        "interactive": SLOClass(
            "interactive",
            deadline_s=DEADLINE_MULT * service_s,
            max_batch_delay_s=2.0 * service_s,
            max_batch_size=4,
            queue_limit=48,
            priority=0,
        )
    }


def run_point(engine, service_s, n_devices, multiple):
    capacity_hz = 1.0 / service_s  # single-device capacity
    rate = multiple * capacity_hz
    gen = LoadGenerator(
        engine, make_factory(engine), rate_hz=rate, n_requests=N_REQUESTS, seed=SEED
    )
    requests = gen.generate()
    scheduler = Scheduler(
        DevicePool(n_devices, policy="least-loaded"),
        classes=serving_classes(service_s),
    )
    report = scheduler.run(requests)
    return report, requests


@pytest.fixture(scope="module")
def sweep():
    engine = make_engine()
    service_s = calibrate_service_seconds(engine)
    points = {
        (n_devices, multiple): run_point(engine, service_s, n_devices, multiple)
        for n_devices in DEVICE_COUNTS
        for multiple in LOAD_MULTIPLES
    }
    for (n_devices, multiple), (point_report, _) in points.items():
        latencies = [
            o.latency_s for o in point_report.outcomes if o.status == "completed"
        ]
        # The full modeled latency distribution at this operating point
        # (deterministic serve clock, so gateable across machines).
        report(
            SUITE, f"latency/{n_devices}dev/{multiple:.2f}x",
            samples=latencies, unit="modeled_s",
            devices=n_devices, offered=multiple,
            completed=point_report.completed,
            shed_rate=point_report.shed_rate, tiny=TINY,
        )
    return engine, service_s, points


def _rows(points, service_s, n_devices):
    rows = []
    for multiple in LOAD_MULTIPLES:
        report, _ = points[(n_devices, multiple)]
        hist = report.latency_histogram("interactive")
        batch = report.metrics.histogram("serve.batch_size")
        rows.append(
            [
                f"{multiple:.2f}x",
                f"{multiple / service_s:.0f}/s",
                report.completed,
                report.rejected + report.shed,
                f"{report.shed_rate * 100:.1f}%",
                f"{hist.p50 * 1e3:.3f}ms" if hist.count else "-",
                f"{hist.p99 * 1e3:.3f}ms" if hist.count else "-",
                f"{batch.mean:.2f}",
                f"{report.goodput_rps:.0f}/s",
            ]
        )
    return rows


def test_serving_latency_throughput(sweep, benchmark):
    engine, service_s, points = sweep

    def check():
        for n_devices in DEVICE_COUNTS:
            print_table(
                f"Serving — latency vs offered load, {n_devices} device(s)"
                + (" (tiny)" if TINY else ""),
                [
                    "offered",
                    "rate",
                    "done",
                    "refused",
                    "shed rate",
                    "p50",
                    "p99",
                    "batch",
                    "goodput",
                ],
                _rows(points, service_s, n_devices),
            )

        def report_at(n_devices, multiple):
            return points[(n_devices, multiple)][0]

        # (a) The knee: p99 grows as load crosses 1-device capacity ...
        low = report_at(1, 0.25).p99_latency_s("interactive")
        high = report_at(1, 1.5).p99_latency_s("interactive")
        assert high > low, (low, high)
        # ... and load shedding engages past capacity, never below it.
        assert report_at(1, 0.25).shed_rate == 0.0
        assert report_at(1, 2.5).shed_rate > 0.0
        # Shedding is explicit, not silent: every refused request ended
        # rejected-or-shed with a reason.
        overload = report_at(1, 2.5)
        refused = [o for o in overload.outcomes if o.status != "completed"]
        assert refused and all(o.reason for o in refused)

        # (b) Micro-batching over 4 devices sustains strictly more
        # offered load than 1 device at the same p99 bound.
        p99_bound = 20.0 * service_s

        def sustained(n_devices):
            ok = [
                multiple
                for multiple in LOAD_MULTIPLES
                if report_at(n_devices, multiple).shed_rate == 0.0
                and report_at(n_devices, multiple).p99_latency_s("interactive")
                <= p99_bound
            ]
            return max(ok) if ok else 0.0

        assert sustained(4) > sustained(1), (sustained(1), sustained(4))

        # Micro-batches actually coalesce under pressure.
        assert (
            points[(1, 2.5)][0].metrics.histogram("serve.batch_size").max > 1
        )

    record(benchmark, check)


def test_no_request_lost_and_p99_nonzero(sweep, benchmark):
    """The CI smoke gate: conservation at every operating point, and a
    meaningful (nonzero) p99 wherever anything completed."""
    engine, service_s, points = sweep

    def check():
        for (n_devices, multiple), (report, requests) in points.items():
            assert report.submitted == len(requests) == N_REQUESTS
            assert (
                report.completed + report.rejected + report.shed == N_REQUESTS
            ), (n_devices, multiple)
            tickets = [o.ticket for o in report.outcomes]
            assert len(tickets) == len(set(tickets)) == N_REQUESTS
            if report.completed:
                assert report.p99_latency_s("interactive") > 0.0

    record(benchmark, check)


def test_served_results_bitwise_match_solo_runs(sweep, benchmark):
    engine, service_s, points = sweep

    def check():
        report, requests = points[(4, 0.9)]
        by_ticket = {r.ticket: r for r in requests}
        solo_engine = LobsterEngine(
            TRANSITIVE_CLOSURE, provenance="minmaxprob", cache=False
        )
        checked = 0
        for outcome in report.outcomes:
            if outcome.status != "completed":
                continue
            request = by_ticket[outcome.ticket]
            solo_db = solo_engine.create_database()
            edges = outcome.meta["edges"]
            solo_db.add_facts("edge", edges, probs=[0.9] * len(edges))
            solo_engine.run(solo_db)
            served_rows, served_probs = request.database.result_probs("path")
            solo_rows, solo_probs = solo_db.result_probs("path")
            assert served_rows == solo_rows
            assert list(served_probs) == list(solo_probs)  # bitwise
            checked += 1
        assert checked == report.completed > 0

    record(benchmark, check)


def test_serving_benchmark_4_devices(benchmark):
    def run():
        engine = make_engine()
        service_s = calibrate_service_seconds(engine)
        run_point(engine, service_s, 4, 0.9)

    benchmark.pedantic(run, rounds=1, iterations=1)

"""Name-based provenance registry (§3.5).

Lobster supports a library of semirings so users pick a reasoning mode by
name — e.g. ``provenance="diff-top-1-proofs"`` — without touching the
program.  The seven device semirings of the paper plus the CPU-only
general top-k are registered here.
"""

from __future__ import annotations

from typing import Callable

from .addmultprob import AddMultProbProvenance
from .base import Provenance
from .diff_addmultprob import DiffAddMultProbProvenance
from .diff_minmaxprob import DiffMinMaxProbProvenance
from .diff_top1proof import DiffTop1ProofProvenance
from .minmaxprob import MinMaxProbProvenance
from .top1proof import Top1ProofProvenance
from .topkproofs import TopKProofsProvenance
from .unit import UnitProvenance

_REGISTRY: dict[str, Callable[..., Provenance]] = {}


def register(name: str, factory: Callable[..., Provenance]) -> None:
    _REGISTRY[name] = factory


def create(name: str, **kwargs) -> Provenance:
    """Instantiate a provenance semiring by registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown provenance {name!r}; known: {known}") from None
    return factory(**kwargs)


def available() -> list[str]:
    return sorted(_REGISTRY)


register("unit", UnitProvenance)
register("minmaxprob", MinMaxProbProvenance)
register("addmultprob", AddMultProbProvenance)
register("prob-top-1-proofs", Top1ProofProvenance)
register("diff-minmaxprob", DiffMinMaxProbProvenance)
register("diff-addmultprob", DiffAddMultProbProvenance)
register("diff-top-1-proofs", DiffTop1ProofProvenance)
register("top-k-proofs", TopKProofsProvenance)

# §3.5 extension: vectorized top-k on the device (see topk_device.py).
from .topk_device import DiffTopKProofsDeviceProvenance, TopKProofsDeviceProvenance

register("top-k-proofs-device", TopKProofsDeviceProvenance)
register("diff-top-k-proofs-device", DiffTopKProofsDeviceProvenance)

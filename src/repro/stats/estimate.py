"""Cardinality estimation and the exchange-aware cost model.

The cost-based planner works over *bindings*: an atom (or a partial join
result) is summarized as an estimated row count plus a per-variable
:class:`VarStats` (distinct count and, when the variable maps straight to
a stored column, that column's sketches).  Estimation follows the classic
System-R recipe with a sketch upgrade:

* **base atoms** — row count from :class:`~repro.stats.RelationStats`;
  constant arguments apply a CMS point-query selectivity (exact-ish under
  skew, ``1/V`` fallback); repeated variables apply ``1/max(V)``;
* **joins** — when both sides still carry a concrete column sketch for a
  shared variable, the CMS inner product estimates the match count
  directly (this is what prices *skew*: a shared heavy hitter multiplies
  out, which the distinct-count formula cannot see); otherwise the
  textbook ``|L||R| / prod max(V_L, V_R)`` formula applies;
* **comparisons** — equality ``1/max(V)``, range predicates interpolate
  against min/max when a constant bound is known, ``1/3`` otherwise.

Unknown relations (an IDB predicate before its first run) fall back to
:data:`DEFAULT_ROWS`; the adaptive loop replaces the guess with observed
statistics after one execution.

:class:`CostModel` turns cardinalities into plan cost.  Each join step
charges its inputs and its output; a sharded engine additionally prices
every *derived* row's trip through the exchange collectives (shuffle to
owner + all-gather, ``2 x (n-1)/n`` cross-shard copies per row), with the
device exchange model's bytes/second normalized into tuple units.  Under
the partitioned-frontier/replicated-closure scheme joins themselves stay
shard-local (build sides are replicated), so exchange cost attaches to
rule *outputs* — it raises the price of plans that materialize wide
intermediate results into recursive predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .relation_stats import ColumnStats, RelationStats, StatsCatalog
from ..gpu.device import (
    DEFAULT_EXCHANGE_BANDWIDTH_BYTES_PER_S,
    KERNEL_ROW_COST_S,
)

__all__ = ["CostModel", "VarStats", "Binding", "DEFAULT_ROWS"]

#: Assumed cardinality of a relation with no statistics (an IDB predicate
#: that has never been materialized, or a cold EDB).
DEFAULT_ROWS = 1000.0


@dataclass
class VarStats:
    """What the estimator knows about one bound variable."""

    n_distinct: float
    #: The stored column's sketches, while the variable still maps 1:1 to
    #: a base-relation column (joins against it can use the CMS inner
    #: product); dropped once the variable survives a join, where its
    #: value distribution is no longer any single column's.
    column: ColumnStats | None = None

    def copy(self) -> "VarStats":
        return VarStats(self.n_distinct, self.column)


@dataclass
class Binding:
    """A partial plan's estimated output: row count + per-variable stats."""

    rows: float
    vars: dict[str, VarStats]

    def copy(self) -> "Binding":
        return Binding(self.rows, {k: v.copy() for k, v in self.vars.items()})

    def clamp(self) -> "Binding":
        self.rows = max(self.rows, 1.0)
        for stats in self.vars.values():
            stats.n_distinct = max(1.0, min(stats.n_distinct, self.rows))
        return self


@dataclass(frozen=True)
class CostModel:
    """Prices a plan step in abstract tuple units."""

    #: Cost per input row consumed by a join/selection kernel.
    tuple_cost: float = 1.0
    #: Cost per output row materialized.
    output_cost: float = 1.0
    #: Shards the plan will execute on (1 = single device).
    n_shards: int = 1
    #: Cost per cross-shard row copy, in tuple units (0 single-device).
    exchange_row_cost: float = 0.0

    @classmethod
    def for_shards(
        cls,
        n_shards: int,
        *,
        row_bytes: float = 24.0,
        exchange_bandwidth: float = DEFAULT_EXCHANGE_BANDWIDTH_BYTES_PER_S,
    ) -> "CostModel":
        """Derive exchange pricing from the device cost model: seconds
        per exchanged row over seconds per kernel row gives the exchange
        cost in the same units the join kernels are charged in."""
        if n_shards <= 1:
            return cls()
        per_row_s = row_bytes / exchange_bandwidth
        return cls(
            n_shards=n_shards,
            exchange_row_cost=per_row_s / KERNEL_ROW_COST_S,
        )

    def key(self) -> str:
        """Cache-identity fragment: two engines whose cost models differ
        (e.g. sharded vs single-device exchange pricing) must not share
        a compiled plan even for the same program and stats bucket."""
        return (
            f"t{self.tuple_cost:g}o{self.output_cost:g}"
            f"n{self.n_shards}x{self.exchange_row_cost:g}"
        )

    def join_cost(self, left_rows: float, right_rows: float, out_rows: float) -> float:
        return (
            self.tuple_cost * (left_rows + right_rows)
            + self.output_cost * out_rows
        )

    def exchange_cost(self, out_rows: float) -> float:
        """Modeled collective cost of routing ``out_rows`` derived rows
        to their owners and broadcasting the merged delta back."""
        if self.n_shards <= 1:
            return 0.0
        cross = (self.n_shards - 1) / self.n_shards
        return 2.0 * cross * out_rows * self.exchange_row_cost


# ---------------------------------------------------------------------------
# Estimation


def relation_rows(stats: RelationStats | None) -> float:
    if stats is None:
        return DEFAULT_ROWS
    return float(max(stats.row_count, 1))


def eq_const_selectivity(stats: RelationStats | None, column: int, value) -> float:
    """Selectivity of ``col == value`` on a base relation."""
    if stats is None or column >= stats.arity or stats.row_count == 0:
        return 0.1
    col = stats.columns[column]
    value = col.coerce(value)
    if value is None:
        # A fractional constant can never equal an integer column.
        return 1.0 / (2.0 * stats.row_count)
    estimate = col.cms.count(value)
    if estimate <= 0:
        # CMS never undercounts, so a zero is a certain miss; keep a
        # floor so plans never divide by a zero-cardinality step.
        return 1.0 / (2.0 * stats.row_count)
    return min(1.0, estimate / stats.row_count)


def range_selectivity(column: ColumnStats | None, op: str, value: float) -> float:
    """Uniform-interpolation selectivity of ``col <op> value``."""
    if (
        column is None
        or column.min is None
        or column.max is None
        or column.max <= column.min
    ):
        return 1.0 / 3.0
    fraction = (value - column.min) / (column.max - column.min)
    fraction = min(1.0, max(0.0, fraction))
    if op in ("<", "<="):
        return max(fraction, 1e-3)
    if op in (">", ">="):
        return max(1.0 - fraction, 1e-3)
    return 1.0 / 3.0


def join_bindings(left: Binding, right: Binding, shared: list[str]) -> Binding:
    """Estimated output of joining two bindings on their shared variables."""
    if not shared:
        out_rows = left.rows * right.rows
    else:
        # Matching on *all* shared variables is a subset of matching on
        # each one, so the per-variable estimates bound the join size:
        # take their min.  Per variable, prefer the CMS inner product
        # when both sides still carry concrete column sketches (it sees
        # skew); fall back to |L||R| / max(V_L, V_R) otherwise.
        out_rows = left.rows * right.rows
        for name in shared:
            lvar, rvar = left.vars[name], right.vars[name]
            if lvar.column is not None and rvar.column is not None:
                candidate = lvar.column.cms.inner_product(rvar.column.cms)
                # The sketches summarize the *base* columns; scale by the
                # fraction of each side's rows that earlier selections
                # kept, so a constant filter stays visible in the join.
                if lvar.column.cms.total > 0:
                    candidate *= min(1.0, left.rows / lvar.column.cms.total)
                if rvar.column.cms.total > 0:
                    candidate *= min(1.0, right.rows / rvar.column.cms.total)
                candidate = max(candidate, 1.0)
            else:
                denom = max(lvar.n_distinct, rvar.n_distinct, 1.0)
                candidate = left.rows * right.rows / denom
            out_rows = min(out_rows, candidate)

    merged: dict[str, VarStats] = {}
    for name, stats in left.vars.items():
        if name in right.vars:
            other = right.vars[name]
            merged[name] = VarStats(
                min(stats.n_distinct, other.n_distinct), column=None
            )
        else:
            merged[name] = VarStats(stats.n_distinct, column=None)
    for name, stats in right.vars.items():
        if name not in merged:
            merged[name] = VarStats(stats.n_distinct, column=None)
    return Binding(out_rows, merged).clamp()


def atom_binding(
    predicate: str,
    args: list,
    catalog: StatsCatalog | None,
) -> Binding:
    """Estimated output of scanning one atom (constants and repeated
    variables applied as selections, matching the lowering).

    ``args`` pairs each argument position with either ``("var", name)``,
    ``("const", value)``, or ``("other", None)`` — the planner extracts
    this from the AST so this module stays AST-agnostic.
    """
    stats = catalog.get(predicate) if catalog is not None else None
    rows = relation_rows(stats)
    selectivity = 1.0
    seen: dict[str, int] = {}
    vars_out: dict[str, VarStats] = {}
    for position, (kind, value) in enumerate(args):
        column = (
            stats.columns[position]
            if stats is not None and position < stats.arity
            else None
        )
        if kind == "const":
            selectivity *= eq_const_selectivity(stats, position, value)
        elif kind == "var":
            if value in seen:
                # Repeated variable: implicit equality between columns.
                distinct = vars_out[value].n_distinct
                other = column.n_distinct if column is not None else distinct
                selectivity *= 1.0 / max(distinct, other, 1.0)
            else:
                seen[value] = position
                distinct = (
                    column.n_distinct if column is not None else max(rows, 1.0)
                )
                vars_out[value] = VarStats(distinct, column=column)
    out_rows = rows * selectivity
    for name, stats_v in vars_out.items():
        stats_v.n_distinct = min(stats_v.n_distinct, max(out_rows, 1.0))
    return Binding(out_rows, vars_out).clamp()

"""Admission control: bounded queues and deadline-feasibility shedding.

Without admission control an open-loop arrival process past capacity
grows the queue (and every latency percentile) without bound.  The
controller turns overload into *explicit* ``Rejected`` outcomes at the
door, applying two tests when a request arrives:

* **queue depth** — each SLO class owns a bounded queue
  (``SLOClass.queue_limit``); arrivals past the bound are rejected
  ("queue full").  This is the hard backstop.
* **deadline feasibility** — the controller estimates when the request
  could start (device backlog plus queued work ahead of it, using a
  per-program EWMA of observed service times) and rejects requests whose
  deadline would already be blown ("deadline infeasible").  This sheds
  load *early*, before the request wastes queue residency it cannot
  convert into a completion.

:meth:`AdmissionController.backpressure` exposes queue pressure as a
0..1 signal so closed-loop clients can throttle before rejections start.
"""

from __future__ import annotations

from .queue import RequestQueue
from .request import Request, SLOClass

__all__ = ["AdmissionController", "ServiceEstimator"]


class ServiceEstimator:
    """EWMA of per-request modeled service seconds, per program key.

    The scheduler feeds every completed request's service time back in;
    the admission controller reads the estimate to price queued work.
    An unseen program estimates 0.0 — optimistic, so cold-start traffic
    is never rejected on a guess.
    """

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._estimates: dict[str, float] = {}

    def observe(self, program_key: str, service_s: float) -> None:
        previous = self._estimates.get(program_key)
        if previous is None:
            self._estimates[program_key] = service_s
        else:
            self._estimates[program_key] = (
                self.alpha * service_s + (1 - self.alpha) * previous
            )

    def estimate(self, program_key: str) -> float:
        return self._estimates.get(program_key, 0.0)


class AdmissionController:
    """Decides admit-or-reject for each arrival.

    Parameters
    ----------
    classes:
        The scheduler's SLO classes (depth bounds live on the class).
    slack:
        Multiplier on the feasibility estimate before it trips: > 1.0
        admits optimistically (estimates are noisy), < 1.0 sheds early.
    """

    def __init__(self, classes: dict[str, SLOClass], slack: float = 1.0):
        self.classes = classes
        self.slack = slack
        self.estimator = ServiceEstimator()

    def decide(
        self,
        request: Request,
        *,
        now: float,
        queue: RequestQueue,
        free_at: list[float],
    ) -> str | None:
        """``None`` to admit, else a human-readable rejection reason."""
        slo_class = self.classes[request.slo]
        depth = queue.depth(request.slo)
        if depth >= slo_class.queue_limit:
            return (
                f"queue full: {depth} {request.slo} requests queued "
                f"(limit {slo_class.queue_limit})"
            )

        # Feasibility: earliest a fresh batch could start is when the
        # least-backlogged device frees up, plus the queued work ahead
        # of this request spread across the fleet.  Only classes that
        # dispatch at or before this one's priority count as "ahead" —
        # lower-priority backlog runs after it and must not push
        # high-priority traffic into rejection.
        device_wait = max(0.0, min(free_at) - now)
        backlog_s = self._queued_work_seconds(
            queue, max_priority=slo_class.priority
        ) / max(len(free_at), 1)
        service = self.estimator.estimate(request.program_key)
        estimated_finish = now + (device_wait + backlog_s + service) * self.slack
        deadline_at = request.deadline_at(slo_class)
        if estimated_finish > deadline_at:
            wait_ms = (estimated_finish - now) * 1e3
            budget_ms = (deadline_at - now) * 1e3
            return (
                f"deadline infeasible: estimated {wait_ms:.3f}ms to "
                f"completion exceeds the {budget_ms:.3f}ms budget"
            )
        return None

    def _queued_work_seconds(
        self, queue: RequestQueue, max_priority: int
    ) -> float:
        """EWMA-priced queued work in classes dispatching at or before
        ``max_priority`` (lower value = dispatches earlier)."""
        total = 0.0
        for group in queue.groups():
            if self.classes[group.slo].priority > max_priority:
                continue
            total += len(group) * self.estimator.estimate(group.program_key)
        return total

    def backpressure(self, queue: RequestQueue) -> float:
        """Queue pressure in [0, 1]: the fullest class's depth over its
        limit.  1.0 means at least one class is rejecting on depth."""
        pressure = 0.0
        for name, slo_class in self.classes.items():
            pressure = max(pressure, queue.depth(name) / slo_class.queue_limit)
        return min(pressure, 1.0)

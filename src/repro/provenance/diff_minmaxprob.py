"""The ``diff-max-min-prob`` semiring.

The differentiable counterpart of max-min-prob: each tag carries its
probability plus the id of the *witness* input fact whose probability
currently determines it (the arg-min along the conjunctions, arg-max across
disjunctions).  The gradient of the output w.r.t. that witness is exactly 1
and 0 for every other input, so backward is a scatter-add.
"""

from __future__ import annotations

import numpy as np

from .base import SATURATION_EPS, Provenance
from ..gpu.kernels import segment_argmax


class DiffMinMaxProbProvenance(Provenance):
    """Differentiable fuzzy reasoning: (prob, witness fact id) tags."""

    name = "diff-minmaxprob"
    is_differentiable = True
    idempotent_oplus = True  # ⊕ = max (witness rides along)

    _dtype = np.dtype([("prob", "f8"), ("fact", "i8")])

    def tag_dtype(self) -> np.dtype:
        return self._dtype

    def one_tags(self, n: int) -> np.ndarray:
        out = np.zeros(n, dtype=self._dtype)
        out["prob"] = 1.0
        out["fact"] = -1
        return out

    def input_tags(self, fact_ids: np.ndarray) -> np.ndarray:
        fact_ids = np.asarray(fact_ids, dtype=np.int64)
        out = self.one_tags(len(fact_ids))
        tagged = fact_ids >= 0
        out["prob"][tagged] = self.input_probs[fact_ids[tagged]]
        out["fact"][tagged] = fact_ids[tagged]
        return out

    def otimes(self, a, b) -> np.ndarray:
        take_a = a["prob"] <= b["prob"]
        out = b.copy()
        out[take_a] = a[take_a]
        return out

    def oplus_reduce(self, tags, segment_ids, nseg) -> np.ndarray:
        winners = segment_argmax(tags["prob"], segment_ids, nseg)
        return tags[winners]

    def merge_existing(self, old, new):
        improved = new["prob"] > old["prob"] + SATURATION_EPS
        merged = old.copy()
        merged[improved] = new[improved]
        return merged, improved

    def prob(self, tags) -> np.ndarray:
        return tags["prob"].astype(np.float64)

    def is_absorbing_zero(self, tags) -> np.ndarray:
        return tags["prob"] <= 0.0

    def backward(self, tags, grad_out, grad_in) -> None:
        facts = tags["fact"]
        has_witness = facts >= 0
        np.add.at(grad_in, facts[has_witness], grad_out[has_witness])

"""Durable streaming views: checkpoint + WAL replay under fault injection.

The headline property (hypothesis-driven): for ANY schedule of injected
crashes — mid-WAL-append torn tails, fully-durable-record-then-die,
partial or unrenamed checkpoint temp files, post-swap deaths — a stream
that keeps crashing and recovering lands on state **bitwise equal** to
the same stream run uninterrupted.  Checked across the unit, minmaxprob,
and top-k-proofs semirings on transitive closure and CSPA, on sliding
and tumbling windows.

Equality is over everything a consumer can observe: per-relation result
maps (bit-exact float probabilities), the view baseline, the retained
delta history (ticks, inserted/retracted rows — timing fields excluded:
device warm state legitimately differs across processes), and the
statistics catalog's plan bucket.  Alongside: exactly-once subscription
delivery across crash boundaries, torn-tail vs corrupt-at-rest
semantics, stale-checkpoint fallback, codec/stats round-trips, and the
database export/import interchange.
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CheckpointMismatchError,
    CorruptLogError,
    LobsterEngine,
    MaterializedView,
    RecoveryManager,
    recover,
)
from repro.recovery.codec import decode, encode
from repro.recovery.framing import frame, read_frames
from repro.recovery.storage import LocalStorage
from repro.stats import RelationStats, StatsCatalog
from repro.stream import RelationStream, SlidingWindow, TumblingWindow
from repro.workloads.analytics import CSPA

from _faults import CrashingStorage, InjectedCrash

TC = "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)). query path"
EDGES = [(i, i + 1) for i in range(12)] + [(0, 5), (3, 9), (2, 7), (6, 11)]

rng = np.random.default_rng(7)
ASSIGN = sorted(
    {
        (int(a), int(b))
        for a, b in zip(rng.integers(0, 14, 40), rng.integers(0, 14, 40))
        if a != b
    }
)
DEREF = sorted(
    {
        (int(a), int(b))
        for a, b in zip(rng.integers(0, 14, 20), rng.integers(0, 14, 20))
        if a != b
    }
)
del rng

SEMIRINGS = ["unit", "minmaxprob", "top-k-proofs-device"]


def make_engine(source: str, provenance: str) -> LobsterEngine:
    kwargs = {"k": 3} if provenance == "top-k-proofs-device" else {}
    return LobsterEngine(source, provenance=provenance, **kwargs)


def tc_setup(provenance: str, window_cls=SlidingWindow, size: int = 4):
    """(engine, feed) for the TC workload; deterministic per call."""
    engine = make_engine(TC, provenance)
    stream = RelationStream(
        "edge",
        EDGES,
        per_tick=3,
        seed=7,
        prob_range=None if provenance == "unit" else (0.5, 0.95),
    )
    return engine, window_cls(stream, size=size)


def cspa_setup(provenance: str):
    """(engine, feed, init) for CSPA: assign churns through a tumbling
    window, dereference is static (seeded by ``init``)."""
    engine = make_engine(CSPA, provenance)
    stream = RelationStream(
        "assign",
        ASSIGN,
        per_tick=4,
        seed=3,
        prob_range=None if provenance == "unit" else (0.3, 1.0),
    )

    def init(database):
        database.add_facts("dereference", DEREF)

    return engine, TumblingWindow(stream, size=3), init


def fingerprint(view: MaterializedView) -> dict:
    """Everything a consumer can observe, minus per-process timing."""
    return {
        "state": {rel: view.result(rel) for rel in view.relations},
        "baseline": view.baseline(),
        "history": [
            (
                d.tick,
                d.ticks_covered,
                {r: tuple(rows) for r, rows in d.inserted.items()},
                {r: tuple(rows) for r, rows in d.retracted.items()},
            )
            for d in view.history
        ],
        "ticks": view.ticks_applied,
        "pruned": view.pruned_ticks,
        "stats_bucket": view.database.stats_catalog().bucket_key(),
    }


def run_uninterrupted(make_setup, n_ticks: int) -> dict:
    """The reference: same stream, no durability, no crashes."""
    setup = make_setup()
    engine, feed = setup[0], setup[1]
    database = engine.create_database()
    if len(setup) > 2:
        setup[2](database)
    view = MaterializedView(engine, database=database, name="s")
    for _ in range(n_ticks):
        view.apply(feed.advance())
    return fingerprint(view)


def run_durable(
    root,
    make_setup,
    n_ticks: int,
    schedules,
    *,
    checkpoint_every: int = 3,
    poll_every: int | None = None,
):
    """Drive a durable stream to ``n_ticks`` applied, crashing per the
    given schedules (one ``{op_index: frac}`` dict per process
    incarnation) and recovering after each death.  Returns
    ``(view, delivered_deltas, crash_count)``."""
    schedules = list(schedules)
    delivered = []
    crashes = 0
    while True:
        schedule = schedules[crashes] if crashes < len(schedules) else {}
        storage = CrashingStorage(root, schedule)
        setup = make_setup()
        feed = setup[1]
        try:
            manager, views, _ = recover(
                None,
                {"s": setup},
                storage=storage,
                checkpoint_every=checkpoint_every,
            )
            view = views["s"]
            sub = view.resubscribe("consumer") if poll_every else None
            while view.ticks_applied < n_ticks:
                manager.apply("s", feed.advance())
                if sub is not None and view.ticks_applied % poll_every == 0:
                    # The consumer's poll-and-process step is atomic in
                    # the fault model (crashes target the tick path).
                    with storage.suspended():
                        delivered.extend(sub.poll())
            if sub is not None:
                with storage.suspended():
                    delivered.extend(sub.poll())
            return view, delivered, crashes
        except InjectedCrash:
            crashes += 1
            assert crashes <= len(schedules), "crash without a schedule"


# A write-op fraction: 0.0 = nothing persisted, 1.0 = everything
# persisted then die, in between = torn.
FRACTIONS = st.sampled_from([0.0, 0.2, 0.45, 0.6, 0.8, 0.97, 1.0])
SCHEDULES = st.lists(
    st.tuples(st.integers(0, 24), FRACTIONS), min_size=1, max_size=3
).map(lambda pairs: [{op: frac} for op, frac in pairs])


class TestCrashSchedules:
    """The tentpole property: recovered == uninterrupted, anywhere."""

    @pytest.mark.parametrize("provenance", SEMIRINGS)
    @settings(max_examples=12, deadline=None)
    @given(schedules=SCHEDULES)
    def test_tc_recovers_bitwise_equal(self, provenance, schedules):
        want = run_uninterrupted(lambda: tc_setup(provenance), 8)
        root = tempfile.mkdtemp()
        try:
            view, _, _ = run_durable(
                root, lambda: tc_setup(provenance), 8, schedules
            )
            assert fingerprint(view) == want
        finally:
            shutil.rmtree(root)

    @settings(max_examples=8, deadline=None)
    @given(schedules=SCHEDULES)
    def test_cspa_recovers_bitwise_equal(self, schedules):
        want = run_uninterrupted(lambda: cspa_setup("minmaxprob"), 7)
        root = tempfile.mkdtemp()
        try:
            view, _, _ = run_durable(
                root, lambda: cspa_setup("minmaxprob"), 7, schedules
            )
            assert fingerprint(view) == want
        finally:
            shutil.rmtree(root)

    @settings(max_examples=10, deadline=None)
    @given(schedules=SCHEDULES)
    def test_subscription_exactly_once(self, schedules):
        """No ViewDelta lost, none duplicated, across any crash point."""
        root = tempfile.mkdtemp()
        try:
            _, delivered, _ = run_durable(
                root,
                lambda: tc_setup("minmaxprob"),
                8,
                schedules,
                poll_every=2,
            )
            assert [d.tick for d in delivered] == list(range(8))
        finally:
            shutil.rmtree(root)

    def test_every_single_crash_point_deterministically(self, tmp_path):
        """Exhaustively kill EVERY write op at a torn and a post-write
        boundary (the hypothesis test samples this space; the sweep pins
        the boundaries down deterministically)."""
        want = run_uninterrupted(lambda: tc_setup("unit"), 6)
        # Count the write ops of an uninterrupted durable run first, so
        # the sweep covers each one exactly.
        probe = CrashingStorage(str(tmp_path / "probe"), {})
        setup = tc_setup("unit")
        manager, _, _ = recover(None, {"s": setup}, storage=probe,
                                checkpoint_every=3)
        for _ in range(6):
            manager.apply("s", setup[1].advance())
        n_ops = probe.op_index
        assert n_ops >= 8  # baseline + 6 WAL appends + cadence ckpts

        for op in range(n_ops):
            for frac in (0.0, 0.5, 1.0):
                root = tmp_path / f"op{op}-{frac}"
                view, _, crashes = run_durable(
                    str(root), lambda: tc_setup("unit"), 6, [{op: frac}]
                )
                assert crashes == 1, (op, frac)
                assert fingerprint(view) == want, (op, frac)


class TestLogSemantics:
    """Torn tails truncate silently; corruption at rest does not."""

    def test_torn_wal_tail_is_silent(self, tmp_path):
        engine, feed = tc_setup("unit")
        view = MaterializedView(engine, name="s")
        manager = RecoveryManager(tmp_path, checkpoint_every=10)
        manager.register("s", view, feed)
        for _ in range(4):
            manager.apply("s", feed.advance())
        wal = tmp_path / "wal-00000000.log"
        data = wal.read_bytes()
        wal.write_bytes(data[:-7])  # tear the final record

        engine2, feed2 = tc_setup("unit")
        manager2, views, info = recover(tmp_path, {"s": (engine2, feed2)})
        assert info.truncated_bytes > 0
        assert views["s"].ticks_applied == 3  # the torn tick is gone...
        manager2.apply("s", feed2.advance())  # ...and regenerates live
        assert views["s"].ticks_applied == 4
        assert fingerprint(views["s"]) == run_uninterrupted(
            lambda: tc_setup("unit"), 4
        )

    def test_corrupt_nonfinal_segment_raises(self, tmp_path):
        engine, feed = tc_setup("unit")
        view = MaterializedView(engine, name="s")
        manager = RecoveryManager(tmp_path, checkpoint_every=2, keep_checkpoints=3)
        manager.register("s", view, feed)
        for _ in range(5):
            manager.apply("s", feed.advance())
        # Corrupt the newest checkpoint so recovery must read the older
        # WAL segment chain — then tear a non-final segment: that tear
        # cannot be a crash artifact (the segment was sealed), so it is
        # corruption at rest and must raise, not silently drop ticks.
        ckpts = sorted(tmp_path.glob("ckpt-*.ckpt"))
        ckpts[-1].write_bytes(b"\x00" * 32)
        fallback_seq = int(ckpts[-2].stem.split("-")[1])
        sealed = tmp_path / f"wal-{fallback_seq:08d}.log"
        assert sealed.exists() and sealed != sorted(tmp_path.glob("wal-*.log"))[-1]
        sealed.write_bytes(sealed.read_bytes()[:-5])
        engine2, feed2 = tc_setup("unit")
        with pytest.raises(CorruptLogError):
            recover(tmp_path, {"s": (engine2, feed2)})

    def test_stale_checkpoint_falls_back(self, tmp_path):
        """A checkpoint corrupted at rest is skipped: recovery restores
        the previous one and replays a longer WAL tail to the identical
        state."""
        engine, feed = tc_setup("minmaxprob")
        view = MaterializedView(engine, name="s")
        manager = RecoveryManager(tmp_path, checkpoint_every=2, keep_checkpoints=3)
        manager.register("s", view, feed)
        for _ in range(7):
            manager.apply("s", feed.advance())
        newest = sorted(tmp_path.glob("ckpt-*.ckpt"))[-1]
        newest.write_bytes(newest.read_bytes()[:40])  # corrupt at rest

        engine2, feed2 = tc_setup("minmaxprob")
        manager2, views, info = recover(tmp_path, {"s": (engine2, feed2)})
        assert info.checkpoint_seq is not None
        assert info.replayed_deltas >= 2  # the stale gap came from the WAL
        for _ in range(2):
            manager2.apply("s", feed2.advance())
        assert fingerprint(views["s"]) == run_uninterrupted(
            lambda: tc_setup("minmaxprob"), 9
        )

    def test_wal_disagreeing_with_source_raises(self, tmp_path):
        engine, feed = tc_setup("unit")
        view = MaterializedView(engine, name="s")
        manager = RecoveryManager(tmp_path, checkpoint_every=10)
        manager.register("s", view, feed)
        for _ in range(3):
            manager.apply("s", feed.advance())
        # Recover against a *different* stream (other seed): the log no
        # longer describes the feed, which verified replay must catch.
        engine2 = make_engine(TC, "unit")
        other = SlidingWindow(
            RelationStream("edge", EDGES, per_tick=3, seed=99), size=4
        )
        with pytest.raises(CorruptLogError):
            recover(tmp_path, {"s": (engine2, other)})

    def test_coalesced_delta_replays(self, tmp_path):
        """A WAL record covering several source ticks re-advances the
        feed that many times during verified replay."""
        want_setup = lambda: tc_setup("unit")  # noqa: E731
        engine, feed = want_setup()
        database = engine.create_database()
        reference = MaterializedView(engine, database=database, name="s")
        e2, f2 = want_setup()
        view = MaterializedView(e2, name="s")
        manager = RecoveryManager(tmp_path, checkpoint_every=100)
        manager.register("s", view, f2)
        manager.apply("s", f2.advance())
        reference.apply(feed.advance())
        merged = f2.advance().merged_with(f2.advance())
        manager.apply("s", merged)
        reference.apply(feed.advance().merged_with(feed.advance()))

        e3, f3 = want_setup()
        _, views, info = recover(tmp_path, {"s": (e3, f3)})
        assert info.replayed_deltas == 2
        assert f3.next_tick == 3
        assert fingerprint(views["s"]) == fingerprint(reference)


class TestMismatches:
    """Structural incompatibility stops recovery; it never guesses."""

    def _checkpointed_dir(self, tmp_path, provenance="minmaxprob"):
        engine, feed = tc_setup(provenance)
        view = MaterializedView(engine, name="s")
        manager = RecoveryManager(tmp_path, checkpoint_every=2)
        manager.register("s", view, feed)
        for _ in range(4):
            manager.apply("s", feed.advance())
        return tmp_path

    def test_semiring_mismatch(self, tmp_path):
        root = self._checkpointed_dir(tmp_path, "minmaxprob")
        engine, feed = tc_setup("unit")
        with pytest.raises(CheckpointMismatchError):
            recover(root, {"s": (engine, feed)})

    def test_window_shape_mismatch(self, tmp_path):
        root = self._checkpointed_dir(tmp_path)
        engine, _ = tc_setup("minmaxprob")
        wrong_size = SlidingWindow(
            RelationStream("edge", EDGES, per_tick=3, seed=7,
                           prob_range=(0.5, 0.95)),
            size=9,
        )
        with pytest.raises(CheckpointMismatchError):
            recover(root, {"s": (engine, wrong_size)})
        tumbling = TumblingWindow(
            RelationStream("edge", EDGES, per_tick=3, seed=7,
                           prob_range=(0.5, 0.95)),
            size=4,
        )
        with pytest.raises(CheckpointMismatchError):
            recover(root, {"s": (engine, tumbling)})

    def test_unknown_stream_in_checkpoint(self, tmp_path):
        root = self._checkpointed_dir(tmp_path)
        engine, feed = tc_setup("minmaxprob")
        with pytest.raises(CheckpointMismatchError):
            recover(root, {"renamed": (engine, feed)})

    def test_format_version_mismatch(self, tmp_path):
        root = self._checkpointed_dir(tmp_path)
        newest = sorted(root.glob("ckpt-*.ckpt"))[-1]
        header = frame(encode({"format": 999, "kind": "checkpoint", "seq": 1}))
        payload = frame(encode({"streams": {}}))
        newest.write_bytes(header + payload)
        # Corrupt the *older* checkpoints too, so latest() cannot fall
        # back past the incompatible one: the mismatch must surface.
        for stale in sorted(root.glob("ckpt-*.ckpt"))[:-1]:
            stale.unlink()
        engine, feed = tc_setup("minmaxprob")
        with pytest.raises(CheckpointMismatchError):
            recover(root, {"s": (engine, feed)})


class TestStatsRoundTrip:
    """Satellite: checkpoint restore keeps the plan-cache bucket valid."""

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 50), st.integers(-9, 9)),
            min_size=0,
            max_size=120,
        )
    )
    def test_relation_stats_roundtrip_exact(self, rows):
        from repro.provenance.registry import create as create_provenance
        from repro.runtime.relation import StoredRelation
        from repro.runtime.table import Table

        provenance = create_provenance("unit")
        relation = StoredRelation(
            "r", (np.dtype(np.int64), np.dtype(np.int64)), provenance
        )
        stats = relation.enable_stats()
        if rows:
            tags = provenance.input_tags(np.full(len(rows), -1, dtype=np.int64))
            relation.advance(
                Table.from_rows(rows, relation.dtypes, tags)
            )
        restored = RelationStats.from_state(decode(encode(stats.state_dict())))
        assert restored == stats  # sketch state included (KMV + CMS)
        assert restored.bucket() == stats.bucket()

    def test_catalog_bucket_survives_database_roundtrip(self):
        from repro.runtime.database import Database

        engine, feed = tc_setup("minmaxprob")
        view = MaterializedView(engine, name="s")
        for _ in range(5):
            view.apply(feed.advance())
        catalog = view.database.stats_catalog()
        key = catalog.bucket_key()
        assert key  # non-trivial catalog

        restored = Database.from_state(
            decode(encode(view.database.state_dict())),
            engine._provenance_factory(),
        )
        restored_catalog = restored.stats_catalog()
        assert restored_catalog.bucket_key() == key
        assert StatsCatalog.from_database(restored).relations.keys() == (
            catalog.relations.keys()
        )


class TestCodec:
    @settings(max_examples=50, deadline=None)
    @given(
        value=st.recursive(
            st.none()
            | st.booleans()
            | st.integers(min_value=-(2**80), max_value=2**80)
            | st.floats(allow_nan=False)
            | st.text(max_size=8)
            | st.binary(max_size=8),
            lambda children: st.lists(children, max_size=4)
            | st.tuples(children, children)
            | st.dictionaries(
                st.text(max_size=4) | st.tuples(st.integers(), st.integers()),
                children,
                max_size=4,
            ),
            max_leaves=12,
        )
    )
    def test_roundtrip_identity(self, value):
        assert decode(encode(value)) == value

    def test_tuple_list_distinction_survives(self):
        value = {"t": (1, 2), "l": [1, 2], (3, 4): "key"}
        out = decode(encode(value))
        assert isinstance(out["t"], tuple) and isinstance(out["l"], list)
        assert out[(3, 4)] == "key"

    def test_float_bits_exact(self):
        values = [0.1, -0.0, 1e-300, float(np.nextafter(1.0, 2.0))]
        for v in values:
            out = decode(encode(v))
            assert np.float64(out).tobytes() == np.float64(v).tobytes()

    def test_structured_tag_arrays(self):
        dtype = np.dtype([("prob", np.float64), ("ids", np.int64, (3,))])
        arr = np.zeros(4, dtype=dtype)
        arr["prob"] = [0.1, 0.2, 0.3, 0.4]
        arr["ids"][:, 0] = [1, 2, 3, 4]
        out = decode(encode(arr))
        assert out.dtype == dtype
        assert np.array_equal(out, arr)

    def test_truncated_payload_raises(self):
        data = encode({"a": [1, 2, 3]})
        with pytest.raises(CorruptLogError):
            decode(data[:-3])
        with pytest.raises(CorruptLogError):
            decode(data + b"xx")

    def test_frames_detect_torn_tail(self):
        data = frame(b"one") + frame(b"two")
        scan = read_frames(data[:-2])
        assert scan.payloads == [b"one"] and not scan.clean
        with pytest.raises(CorruptLogError):
            read_frames(data[:-2], strict=True)


class TestExportImport:
    """The checkpoint format as a database interchange."""

    @pytest.mark.parametrize("provenance", SEMIRINGS)
    def test_roundtrip(self, tmp_path, provenance):
        engine, feed = tc_setup(provenance)
        view = MaterializedView(engine, name="s")
        for _ in range(5):
            view.apply(feed.advance())
        path = tmp_path / "tc.lobsterdb"
        engine.export_database(view.database, path)

        engine2 = make_engine(TC, provenance)
        restored = engine2.import_database(path)
        assert engine2.query_probs(restored, "path") == engine.query_probs(
            view.database, "path"
        )
        # The import is live, not a dead snapshot: keep streaming on it.
        restored.add_facts("edge", [(40, 41)])
        engine2.run(restored)
        assert (40, 41) in engine2.query_probs(restored, "path")

    def test_semiring_mismatch_raises(self, tmp_path):
        engine, feed = tc_setup("minmaxprob")
        view = MaterializedView(engine, name="s")
        view.apply(feed.advance())
        path = tmp_path / "db.lobsterdb"
        engine.export_database(view.database, path)
        with pytest.raises(CheckpointMismatchError):
            make_engine(TC, "unit").import_database(path)

    def test_corrupt_export_raises(self, tmp_path):
        engine, feed = tc_setup("unit")
        view = MaterializedView(engine, name="s")
        view.apply(feed.advance())
        path = tmp_path / "db.lobsterdb"
        engine.export_database(view.database, path)
        path.write_bytes(path.read_bytes()[:-9])
        with pytest.raises(CorruptLogError):
            engine.import_database(path)

    def test_checkpoint_is_not_an_export(self, tmp_path):
        engine, feed = tc_setup("unit")
        view = MaterializedView(engine, name="s")
        manager = RecoveryManager(tmp_path, checkpoint_every=1)
        manager.register("s", view, feed)
        manager.apply("s", feed.advance())
        ckpt = sorted(tmp_path.glob("ckpt-*.ckpt"))[-1]
        with pytest.raises(CheckpointMismatchError):
            engine.import_database(ckpt)


class TestStorage:
    def test_tmp_debris_invisible(self, tmp_path):
        storage = LocalStorage(tmp_path)
        storage.write_atomic("a.bin", b"data")
        (tmp_path / "b.bin.tmp").write_bytes(b"debris")
        assert storage.list() == ["a.bin"]

    def test_atomic_swap_replaces(self, tmp_path):
        storage = LocalStorage(tmp_path)
        storage.write_atomic("a.bin", b"old")
        storage.write_atomic("a.bin", b"new-longer")
        assert storage.read("a.bin") == b"new-longer"
        assert storage.list() == ["a.bin"]


class TestSchedulerDurability:
    def test_stream_scheduler_routes_through_manager(self, tmp_path):
        from repro import StreamScheduler

        engine, feed = tc_setup("minmaxprob")
        view = MaterializedView(engine, name="tc")
        manager = RecoveryManager(tmp_path, checkpoint_every=3)
        scheduler = StreamScheduler(n_devices=1, durability=manager)
        scheduler.register(view, feed, period_s=1e-3, name="tc")
        report = scheduler.run(5)
        assert report.ticks == 5
        assert sorted(tmp_path.glob("wal-*.log"))  # WAL written
        assert sorted(tmp_path.glob("ckpt-*.ckpt"))  # checkpoints cut

        engine2, feed2 = tc_setup("minmaxprob")
        _, views, info = recover(tmp_path, {"tc": (engine2, feed2)})
        assert not info.cold_start
        assert views["tc"].ticks_applied == 5
        assert views["tc"].result("path") == view.result("path")

"""The neural <-> symbolic bridge.

:class:`NeurosymbolicFunction` makes a Lobster engine behave like one
differentiable operation in the autodiff graph: the forward pass loads
neural predictions as probabilistic input facts and runs the Datalog
program; the backward pass routes output-probability gradients through the
provenance semiring's :meth:`~repro.provenance.base.Provenance.backward`
back onto the prediction tensor — exactly the end-to-end training loop of
Fig. 1.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor
from ..runtime.database import Database
from ..runtime.engine import LobsterEngine


class NeurosymbolicFunction:
    """Wraps an engine as a differentiable probs -> probs function.

    Parameters
    ----------
    engine:
        A :class:`LobsterEngine` built with a differentiable provenance.
    populate:
        Callback ``populate(db, probs) -> fact_ids`` that registers the
        probabilistic input facts (and any discrete context facts) in a
        fresh database.  ``fact_ids[i]`` must be the input-fact id that
        received probability ``probs[i]``.
    output_relation:
        Relation whose fact probabilities are the function's outputs.
    output_rows:
        The fixed tuple set read out of ``output_relation``; absent facts
        read as probability 0.
    """

    def __init__(
        self,
        engine: LobsterEngine,
        populate: Callable[[Database, np.ndarray], np.ndarray],
        output_relation: str,
        output_rows: list[tuple],
    ):
        self.engine = engine
        self.populate = populate
        self.output_relation = output_relation
        self.output_rows = [tuple(row) for row in output_rows]
        self.last_result = None

    def __call__(self, probs: Tensor) -> Tensor:
        flat = probs.data.reshape(-1)
        database = self.engine.create_database()
        fact_ids = np.asarray(self.populate(database, flat), dtype=np.int64)
        self.last_result = self.engine.run(database)

        derived = self.engine.query_probs(database, self.output_relation)
        out = np.array([derived.get(row, 0.0) for row in self.output_rows])

        def backward(grad_out):
            grad_map = {
                row: float(g) for row, g in zip(self.output_rows, grad_out)
            }
            grad_inputs = self.engine.backward(
                database, self.output_relation, grad_map
            )
            grad_flat = np.zeros_like(flat)
            valid = fact_ids >= 0
            grad_flat[valid] = grad_inputs[fact_ids[valid]]
            return [(probs, grad_flat.reshape(probs.data.shape))]

        return Tensor(out, _parents=(probs,), _backward=backward)

"""Table 3: Same Generation runtimes — Lobster vs FVLog, including OOMs.

Both engines run under a fixed device-memory budget; the quadratic
same-generation IDB blows past it on the memory-hungry datasets.  The
paper's shape: Lobster is faster wherever both finish, and FVLog — whose
lack of IR optimizations inflates intermediate footprints — runs out of
memory on more datasets.  (The paper's single reversal, vsp_finan, where
*Lobster* OOMs and FVLog finishes, stems from tag-register overhead our
byte-sized unit tags don't reproduce; EXPERIMENTS.md discusses the
divergence.)
"""

from __future__ import annotations

import pytest

from repro import LobsterEngine, VirtualDevice
from repro.baselines import FVLogEngine
from repro.workloads.analytics import SAME_GENERATION
from repro.workloads.graphs import load_graph

from _harness import record, Measurement, print_table, report, timed

SUITE = "table3_samegen"

DATASETS = [
    "fe-sphere",
    "CA-HepTH",
    "ego-Facebook",
    "Gnu31",
    "fe_body",
    "loc-Brightkite",
    "SF.cedge",
    "fc_ocean",
    "vsp_finan",
]

#: Device budget: generous enough for meshes/roads, tight enough that the
#: high-fanout graphs exceed it (mirrors the 80 GB A100 of §6).
CAPACITY_BYTES = 800_000_000


def run_engine(engine_cls, edges) -> Measurement:
    # Fresh engine + database on every trial (re-running an already
    # fixpointed db is a warm incremental pass — a different workload
    # than the cold evaluation Table 3 measures), built untimed so
    # setup cost is not charged to the engine.
    def setup():
        if engine_cls is LobsterEngine:
            device = VirtualDevice(capacity_bytes=CAPACITY_BYTES)
            engine = LobsterEngine(SAME_GENERATION, provenance="unit", device=device)
        else:
            device = VirtualDevice(capacity_bytes=CAPACITY_BYTES, reuse_buffers=False)
            engine = FVLogEngine(SAME_GENERATION, device=device)
        db = engine.create_database()
        db.add_facts("parent", edges)
        return engine, db

    return timed(lambda state: state[0].run(state[1]), setup=setup)


@pytest.fixture(scope="module")
def results():
    rows = {}
    for name in DATASETS:
        edges = load_graph(name)
        rows[name] = (
            run_engine(LobsterEngine, edges),
            run_engine(FVLogEngine, edges),
        )
        lobster, fvlog = rows[name]
        report(SUITE, f"samegen/{name}/lobster", lobster, engine="lobster")
        report(SUITE, f"samegen/{name}/fvlog", fvlog, engine="fvlog")
    return rows


def test_table3_same_generation(results, benchmark):
    def check():
        table = [
            [name, lobster.label, fvlog.label]
            for name, (lobster, fvlog) in results.items()
        ]
        print_table(
            "Table 3 — Same Generation runtime (device budget enforced)",
            ["dataset", "lobster", "fvlog"],
            table,
        )
        finished_both = [
            (lobster, fvlog)
            for lobster, fvlog in results.values()
            if lobster.status == "ok" and fvlog.status == "ok"
        ]
        # Shape 1: wherever both finish, Lobster is never meaningfully
        # slower.  (The paper reports >=2x per dataset; our two engines
        # share one kernel substrate, so the wall gap compresses to
        # near-parity — see EXPERIMENTS.md.)  Best-of-trials, not the
        # mean: a single descheduled trial on a contended host would
        # otherwise fail a shape assertion about the engines.
        assert finished_both, "no dataset finished on both engines"
        for lobster, fvlog in finished_both:
            assert min(lobster.samples) <= min(fvlog.samples) * 1.2
        # Shape 2: FVLog runs out of memory on strictly more datasets —
        # the Table 3 OOM asymmetry (no buffer management fragments the
        # arena across fix-point iterations).
        lobster_oom = sum(1 for l, _ in results.values() if l.status == "oom")
        fvlog_oom = sum(1 for _, f in results.values() if f.status == "oom")
        assert fvlog_oom > lobster_oom


    record(benchmark, check)

def test_table3_benchmark_samegen_lobster(benchmark):
    edges = load_graph("fc_ocean")

    def run():
        engine = LobsterEngine(SAME_GENERATION, provenance="unit")
        db = engine.create_database()
        db.add_facts("parent", edges)
        engine.run(db)

    benchmark.pedantic(run, rounds=2, iterations=1)

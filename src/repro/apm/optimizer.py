"""APM-level optimization passes (§4).

APM's SSA, straight-line form makes passes trivial to state:

* **dead code elimination** — instructions whose outputs are never read
  (e.g. projections introduced by the planner and then subsumed) are
  dropped;
* **projection fusion** — two consecutive pure-permutation
  ``EvalProject`` instructions collapse into one columnar copy.

Buffer reuse (§4.1) and static hash-index reuse (§4.2) are *runtime*
behaviours keyed on structures the compiler marks (allocation sites and
``static_key``); they are toggled on the interpreter, not here.
"""

from __future__ import annotations

from . import instructions as I
from .compiler import ApmProgram, Variant


def optimize(program: ApmProgram) -> ApmProgram:
    """Run all passes in place and return the program."""
    for stratum in program.strata:
        for rule in stratum.rules:
            for index, variant in enumerate(rule.variants):
                rule.variants[index] = _optimize_variant(variant)
            for index, variant in enumerate(rule.delta_variants):
                rule.delta_variants[index] = _optimize_variant(variant)
            # rule.rederive_variant is deliberately left unoptimized: the
            # maintain path substitutes filtered tables by Load position,
            # which must stay aligned with the RAM scans_of order — DCE
            # may drop a Load whose columns are all projected away.
    return program


def _optimize_variant(variant: Variant) -> Variant:
    instructions = _fuse_projections(list(variant.instructions))
    instructions = _eliminate_dead(instructions)
    return Variant(
        instructions,
        variant.result,
        variant.recent_scan,
        variant.frontier,
        rule_key=variant.rule_key,
    )


def _fuse_projections(instructions: list[I.Instruction]) -> list[I.Instruction]:
    """Collapse EvalProject chains that are pure column permutations."""
    producer: dict[str, I.EvalProject] = {}
    out: list[I.Instruction] = []
    for instruction in instructions:
        if isinstance(instruction, I.EvalProject) and all(
            isinstance(p, int) for p in instruction.programs
        ):
            upstream = producer.get(instruction.src.cols[0] if instruction.src.cols else "")
            if (
                upstream is not None
                and upstream.dst.cols == instruction.src.cols
                and all(isinstance(p, int) for p in upstream.programs)
            ):
                fused_programs = tuple(
                    upstream.programs[p] for p in instruction.programs
                )
                instruction = I.EvalProject(
                    instruction.dst, upstream.src, fused_programs
                )
            for col in instruction.dst.cols:
                producer[col] = instruction
        out.append(instruction)
    return out


def _eliminate_dead(instructions: list[I.Instruction]) -> list[I.Instruction]:
    """Drop instructions whose outputs are never consumed.

    A single backward pass suffices because APM is SSA and straight-line:
    liveness flows strictly from later instructions to earlier ones.
    """
    live: set[str] = set()
    kept_reversed: list[I.Instruction] = []
    for instruction in reversed(instructions):
        writes = _writes(instruction)
        if isinstance(instruction, I.StoreDelta) or not writes or (writes & live):
            kept_reversed.append(instruction)
            live |= _reads(instruction)
    return list(reversed(kept_reversed))


def _reads(instruction: I.Instruction) -> set[str]:
    if isinstance(instruction, I.StoreDelta):
        return set(instruction.src.cols) | {instruction.src.tags}
    if isinstance(instruction, (I.EvalProject, I.EvalFilter)):
        return set(instruction.src.cols) | {instruction.src.tags}
    if isinstance(instruction, I.Build):
        return set(instruction.src.cols[: instruction.width])
    if isinstance(instruction, (I.Probe, I.AntiProbe)):
        return set(instruction.probe.cols[: instruction.width]) | {
            instruction.index,
            instruction.probe.tags,
        }
    if isinstance(instruction, I.Gather):
        return set(instruction.src_cols) | {instruction.index}
    if isinstance(instruction, I.GatherTags):
        return {
            instruction.left_index,
            instruction.right_index,
            instruction.left_tags,
            instruction.right_tags,
        }
    if isinstance(instruction, I.CopyTags):
        return {instruction.src}
    if isinstance(instruction, I.CrossIndices):
        return {instruction.left_tags, instruction.right_tags}
    if isinstance(instruction, I.PassIfEmpty):
        return set(instruction.src.cols) | {instruction.src.tags, instruction.guard_tags}
    return set()


def _writes(instruction: I.Instruction) -> set[str]:
    if isinstance(instruction, I.Load):
        return set(instruction.dst.cols) | {instruction.dst.tags}
    if isinstance(instruction, (I.EvalProject, I.EvalFilter, I.PassIfEmpty)):
        return set(instruction.dst.cols) | {instruction.dst.tags}
    if isinstance(instruction, I.Build):
        return {instruction.dst}
    if isinstance(instruction, I.Probe):
        return {instruction.dst_build, instruction.dst_probe}
    if isinstance(instruction, I.AntiProbe):
        return {instruction.dst}
    if isinstance(instruction, I.Gather):
        return set(instruction.dst_cols)
    if isinstance(instruction, I.GatherTags):
        return {instruction.dst}
    if isinstance(instruction, I.CopyTags):
        return {instruction.dst}
    if isinstance(instruction, I.CrossIndices):
        return {instruction.dst_left, instruction.dst_right}
    return set()

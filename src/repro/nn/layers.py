"""Neural layers for the perception models used by the workloads."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


class Module:
    """Base class; subclasses expose parameters for the optimizer."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Fully connected layer with Kaiming-ish initialization."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        scale = np.sqrt(2.0 / in_features)
        self.weight = Tensor(
            rng.normal(0.0, scale, size=(in_features, out_features)), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class MLP(Module):
    """ReLU multi-layer perceptron."""

    def __init__(self, sizes: list[int], rng: np.random.Generator):
        self.layers = [Linear(a, b, rng) for a, b in zip(sizes, sizes[1:])]

    def forward(self, x: Tensor) -> Tensor:
        for index, layer in enumerate(self.layers):
            x = layer(x)
            if index < len(self.layers) - 1:
                x = x.relu()
        return x


class PatchScorer(Module):
    """The workloads' stand-in for a CNN: an MLP scoring fixed-size pixel
    patches (edge detection for Pathfinder, cell classification for
    PacMan).  A convolution over a lattice is exactly a patch scorer
    applied at every lattice site, so this exercises the same
    neural-to-symbolic interface."""

    def __init__(self, patch_size: int, hidden: int, rng: np.random.Generator):
        self.net = MLP([patch_size, hidden, 1], rng)

    def forward(self, patches: Tensor) -> Tensor:
        return self.net(patches).reshape(-1).sigmoid()


class Classifier(Module):
    """Softmax classifier over feature vectors (HWF symbols, CLUTRR
    relations)."""

    def __init__(self, in_features: int, hidden: int, n_classes: int, rng):
        self.net = MLP([in_features, hidden, n_classes], rng)

    def forward(self, features: Tensor) -> Tensor:
        return self.net(features).softmax(axis=-1)

"""Streaming incremental view maintenance.

Where :mod:`repro.serve` answers *requests* that arrive over time,
``stream/`` keeps *standing queries* continuously correct as the data
changes underneath them — the fourth pillar next to ``apm/`` (one
query, one device), ``dist/`` (one query, many devices), and ``serve/``
(many queries, many devices).  Four pieces compose it:

* :mod:`~repro.stream.source` — seeded, replayable event streams over
  the workload generators (graph edges, static-analysis churn);
* :mod:`~repro.stream.window` — tumbling/sliding windows that turn the
  insert stream into *signed* per-tick deltas (expiry emits
  retractions);
* :mod:`~repro.stream.view` — :class:`MaterializedView`: one compiled
  program's query relations, re-evaluated per tick through the engine's
  DRed-style maintain path (over-delete, re-derive, propagate — with a
  checkpointed-recompute fallback for negation / non-idempotent ⊕), and
  diffed into result deltas that satisfy the conservation law;
* :mod:`~repro.stream.subscription` — poll/push cursors over a view's
  delta log, with exact replay from tick 0.

The serve-clock integration — maintenance ticks sharing devices and
metrics with request traffic — lives in
:class:`repro.serve.streaming.StreamScheduler`.
"""

from .source import (
    RelationStream,
    StreamEvent,
    graph_edge_stream,
    psa_churn_stream,
)
from .subscription import Subscription, replay_deltas
from .view import MaterializedView, ViewDelta
from .window import SlidingWindow, TickDelta, TumblingWindow, Window

__all__ = [
    "MaterializedView",
    "RelationStream",
    "SlidingWindow",
    "StreamEvent",
    "Subscription",
    "TickDelta",
    "TumblingWindow",
    "ViewDelta",
    "Window",
    "graph_edge_stream",
    "psa_churn_stream",
    "replay_deltas",
]

"""Probabilistic Static Analysis (PSA, §6.1, Fig. 11).

Extends a dataflow/taint analysis with probabilistic inputs: analysis
facts (call edges, flow edges, source/sink/sanitizer annotations) carry
confidences, which propagate to ranked alarms — the false-positive
down-weighting idea of St. Amour & Tilevich.  Provenance: minmaxprob
(Table 2), so an alarm's score is the weakest link on its best derivation.

The 28-rule program below covers call-graph reachability, interprocedural
taint propagation through assignments/loads/stores/calls/returns, a
field-insensitive alias component, sanitizer suppression levels, and
three alarm severity tiers.

The paper's subjects (sunflow, biojava, ...) map to seeded synthetic
program graphs whose relative sizes follow the originals.
"""

from __future__ import annotations

import zlib

import numpy as np

PROGRAM = """
// --- call graph -----------------------------------------------------------
rel reachable_method(m) :- entry_method(m).
rel reachable_method(n) :- reachable_method(m), call_edge(m, n).
rel reachable_call(m, n) :- reachable_method(m), call_edge(m, n).

// --- intraprocedural value flow --------------------------------------------
rel flow(x, y) :- assign(x, y).
rel flow(x, y) :- load(x, f, y).
rel flow(x, y) :- store(x, f, y).
rel flow_trans(x, y) :- flow(x, y).
rel flow_trans(x, z) :- flow_trans(x, y), flow(y, z).

// --- aliasing (field-insensitive) ------------------------------------------
rel alias(x, y) :- points_to(x, o), points_to(y, o).
rel alias_flow(x, y) :- alias(x, y).
rel alias_flow(x, z) :- alias(x, y), flow_trans(y, z).

// --- interprocedural taint -------------------------------------------------
rel tainted(x) :- taint_source(x).
rel tainted(y) :- tainted(x), flow(x, y).
rel tainted(y) :- tainted(x), alias_flow(x, y).
rel tainted(y) :- tainted(x), param_pass(x, m, y), reachable_method(m).
rel tainted(y) :- tainted(x), return_pass(x, m, y), reachable_method(m).

// --- sanitization ----------------------------------------------------------
rel sanitized(x) :- sanitizer(x).
rel sanitized(y) :- sanitized(x), flow(x, y).
rel suppressed(x) :- sanitized(x), tainted(x).

// --- sinks and alarms -------------------------------------------------------
rel sink_hit(x, s) :- tainted(x), sink_at(x, s).
rel alarm(s) :- sink_hit(x, s).
rel critical_sink(s) :- sink_severity(s, 2).
rel major_sink(s) :- sink_severity(s, 1).
rel minor_sink(s) :- sink_severity(s, 0).
rel alarm_critical(s) :- alarm(s), critical_sink(s).
rel alarm_major(s) :- alarm(s), major_sink(s).
rel alarm_minor(s) :- alarm(s), minor_sink(s).
rel any_alarm() :- alarm(s).
query alarm_critical
query alarm_major
query alarm_minor
"""

#: Subjects from Fig. 11 with relative scale factors (methods, vars).
#: Absolute sizes are set so the slowest baseline (tuple-at-a-time
#: Scallop over the flow_trans closure) finishes within a benchmark
#: budget; the relative ordering follows the paper's subjects.
SUBJECTS = {
    "sunflow-core": (20, 90),
    "sunflow": (30, 130),
    "biojava": (45, 190),
    "graphchi": (28, 115),
    "avrora": (38, 155),
    "pmd": (50, 220),
    "jme3": (58, 255),
}


def psa_instance(subject: str, seed: int | None = None) -> dict:
    """Synthetic probabilistic fact base for a named subject.

    Returns ``{"discrete": {rel: rows}, "probabilistic": {rel: (rows,
    probs)}}``; confidences model an upstream heuristic front-end (e.g.
    reflection-aware call-graph construction).
    """
    if subject not in SUBJECTS:
        raise KeyError(f"unknown PSA subject {subject!r}")
    n_methods, n_vars = SUBJECTS[subject]
    if seed is None:
        seed = zlib.crc32(subject.encode())  # deterministic across processes
    rng = np.random.default_rng(seed)

    def edges(count: int, n_from: int, n_to: int, forward_bias: bool = False):
        src = rng.integers(0, n_from, size=count)
        if forward_bias:
            dst = np.minimum(src + rng.integers(1, 20, size=count), n_to - 1)
        else:
            dst = rng.integers(0, n_to, size=count)
        return sorted({(int(a), int(b)) for a, b in zip(src, dst) if (a, b) != (b, a) or a != b})

    call_edge = edges(n_methods * 3, n_methods, n_methods, forward_bias=True)
    assign = edges(n_vars * 2, n_vars, n_vars, forward_bias=True)
    n_objects = n_vars // 4
    points_to = sorted(
        {
            (int(v), int(o))
            for v, o in zip(
                rng.integers(0, n_vars, size=n_vars),
                rng.integers(0, max(n_objects, 1), size=n_vars),
            )
        }
    )
    load = [
        (int(x), int(f), int(y))
        for x, f, y in zip(
            rng.integers(0, n_vars, size=n_vars // 3),
            rng.integers(0, 12, size=n_vars // 3),
            rng.integers(0, n_vars, size=n_vars // 3),
        )
    ]
    store = [
        (int(x), int(f), int(y))
        for x, f, y in zip(
            rng.integers(0, n_vars, size=n_vars // 3),
            rng.integers(0, 12, size=n_vars // 3),
            rng.integers(0, n_vars, size=n_vars // 3),
        )
    ]
    param_pass = [
        (int(x), int(m), int(y))
        for x, m, y in zip(
            rng.integers(0, n_vars, size=n_vars // 2),
            rng.integers(0, n_methods, size=n_vars // 2),
            rng.integers(0, n_vars, size=n_vars // 2),
        )
    ]
    return_pass = [
        (int(x), int(m), int(y))
        for x, m, y in zip(
            rng.integers(0, n_vars, size=n_vars // 4),
            rng.integers(0, n_methods, size=n_vars // 4),
            rng.integers(0, n_vars, size=n_vars // 4),
        )
    ]

    n_sources = max(4, n_vars // 40)
    n_sinks = max(6, n_vars // 30)
    sources = rng.choice(n_vars, size=n_sources, replace=False)
    sink_vars = rng.choice(n_vars, size=n_sinks, replace=False)
    sink_at = [(int(v), int(s)) for s, v in enumerate(sink_vars)]
    sink_severity = [(int(s), int(rng.integers(0, 3))) for s in range(n_sinks)]
    sanitizers = rng.choice(n_vars, size=max(2, n_vars // 60), replace=False)

    return {
        "discrete": {
            "entry_method": [(0,)],
            "load": load,
            "store": store,
            "param_pass": param_pass,
            "return_pass": return_pass,
            "sink_at": sink_at,
            "sink_severity": sink_severity,
            "sanitizer": [(int(v),) for v in sanitizers],
        },
        "probabilistic": {
            "call_edge": (call_edge, rng.uniform(0.55, 1.0, size=len(call_edge))),
            "assign": (assign, rng.uniform(0.6, 1.0, size=len(assign))),
            "points_to": (points_to, rng.uniform(0.4, 0.95, size=len(points_to))),
            "taint_source": (
                [(int(v),) for v in sources],
                rng.uniform(0.7, 1.0, size=len(sources)),
            ),
        },
    }


def populate_database(database, instance: dict) -> None:
    for name, rows in instance["discrete"].items():
        database.add_facts(name, rows)
    for name, (rows, probs) in instance["probabilistic"].items():
        database.add_facts(name, rows, probs=list(probs))

"""Desugaring: flatten rule bodies to disjunctive normal form.

A rule whose body contains ``or`` becomes several rules (one per disjunct),
matching how Fig. 3c's ``path`` rule compiles to a union in RAM.
"""

from __future__ import annotations

from . import ast


def body_to_dnf(formula: ast.Formula) -> list[list[ast.Literal]]:
    """Expand a body formula into a list of conjunctive literal lists."""
    if isinstance(formula, (ast.Atom, ast.Comparison)):
        return [[formula]]
    if isinstance(formula, ast.Conj):
        disjuncts: list[list[ast.Literal]] = [[]]
        for item in formula.items:
            expanded = body_to_dnf(item)
            disjuncts = [prefix + suffix for prefix in disjuncts for suffix in expanded]
        return disjuncts
    if isinstance(formula, ast.Disj):
        out: list[list[ast.Literal]] = []
        for item in formula.items:
            out.extend(body_to_dnf(item))
        return out
    raise TypeError(f"unexpected formula node {formula!r}")


def desugar_rules(rules: list[ast.Rule]) -> list[tuple[ast.Atom, list[ast.Literal]]]:
    """Expand every rule into (head, conjunctive body) pairs."""
    flat: list[tuple[ast.Atom, list[ast.Literal]]] = []
    for rule in rules:
        for conjunct in body_to_dnf(rule.body):
            flat.append((rule.head, conjunct))
    return flat

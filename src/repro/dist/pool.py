"""A pool of virtual devices for throughput serving.

Where the :class:`~repro.dist.executor.ShardedExecutor` splits *one*
query across N devices (latency scaling), a :class:`DevicePool` spreads
*independent* queries across N devices round-robin (throughput scaling)
— the serving-fleet pattern for a :class:`~repro.runtime.session.
LobsterSession` draining many databases.

The pool is thread-safe: worker threads can interleave :meth:`acquire`
calls and still get a fair round-robin assignment.
"""

from __future__ import annotations

import threading

from ..gpu.device import DeviceProfile, VirtualDevice


class DevicePool:
    """Round-robin scheduler over a fixed set of virtual devices."""

    def __init__(
        self,
        n_devices: int = 2,
        devices: list[VirtualDevice] | None = None,
        **device_kwargs,
    ):
        """Builds ``n_devices`` fresh :class:`VirtualDevice`\\ s (passing
        ``device_kwargs`` through) unless ``devices`` supplies the pool
        explicitly."""
        if devices is not None:
            self.devices = list(devices)
        else:
            self.devices = [VirtualDevice(**device_kwargs) for _ in range(n_devices)]
        if not self.devices:
            raise ValueError("DevicePool needs at least one device")
        self._next = 0
        self._lock = threading.Lock()
        #: Serializes session drains over this pool (see LobsterSession:
        #: sessions sharing a pool must not interleave on its devices).
        self._drain_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.devices)

    def acquire(self) -> tuple[int, VirtualDevice]:
        """Next ``(index, device)`` in round-robin order (thread-safe)."""
        with self._lock:
            index = self._next
            self._next = (self._next + 1) % len(self.devices)
        return index, self.devices[index]

    def merged_profile(self) -> DeviceProfile:
        """Counter-wise rollup of every device's live profile."""
        return DeviceProfile.merge([device.profile for device in self.devices])

"""Plan feedback: estimated vs. observed cardinalities for one run.

The interpreter fills a :class:`PlanFeedback` while it executes — per-rule
output cardinalities (the largest single firing, which on a cold run is
the full-join firing the planner estimated), per-instruction-class output
row totals, final relation sizes, and (sharded) per-shard derived-row
counts reported by the exchange loop.  The engine pairs the actuals with
the compiled plan's estimates and exposes :meth:`PlanFeedback.max_drift`:
the worst estimated/observed ratio across rules.

Drift past the engine's threshold means the plan was chosen from
statistics that no longer describe the data.  The adaptive loop then
*invalidates* the cached artifact for that stats bucket
(:meth:`~repro.runtime.cache.ProgramCache.invalidate`), so the next run —
whose catalog now includes the observed intermediate cardinalities —
re-plans instead of reusing the stale join order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PlanFeedback"]


@dataclass
class PlanFeedback:
    """Observed cardinalities of one execution, keyed like the plan."""

    #: Bucket key of the catalog the executed plan was costed under
    #: (None: the zero-stats fallback plan).
    stats_bucket: str | None = None
    #: Planner estimate per rule (``s<i>r<j>`` keys): rows one full
    #: evaluation of the rule body produces.
    rule_estimates: dict[str, float] = field(default_factory=dict)
    #: Largest observed single-firing output per rule, same keys.
    rule_actuals: dict[str, int] = field(default_factory=dict)
    #: Total output rows per instruction class (Probe = join matches,
    #: EvalFilter = selection survivors, StoreDelta = rule outputs).
    instruction_rows: dict[str, int] = field(default_factory=dict)
    #: Final row count per relation after the run.
    relation_rows: dict[str, int] = field(default_factory=dict)
    #: Derived rows per shard (sharded runs only) — the exchange loop's
    #: view of how evenly the derivation work spread.
    shard_rows: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording (interpreter / executor side)

    def record_rule(self, rule_key: str, n_rows: int) -> None:
        prior = self.rule_actuals.get(rule_key)
        if prior is None or n_rows > prior:
            # A zero must register too: an estimated-large rule whose
            # every firing is empty is the *worst* misestimate, and
            # max_drift clamps observations to 1.0 before comparing.
            self.rule_actuals[rule_key] = n_rows

    def record_instruction(self, name: str, n_rows: int) -> None:
        self.instruction_rows[name] = self.instruction_rows.get(name, 0) + n_rows

    def record_shard(self, shard: int, n_rows: int) -> None:
        self.shard_rows[shard] = self.shard_rows.get(shard, 0) + n_rows

    # ------------------------------------------------------------------
    # Reading (engine / scheduler side)

    def max_drift(self) -> float:
        """Worst symmetric estimated/observed ratio across rules with
        both an estimate and an observation; 1.0 = perfectly calibrated,
        0.0 = nothing to compare (no estimates recorded)."""
        worst = 0.0
        for key, estimate in self.rule_estimates.items():
            actual = self.rule_actuals.get(key)
            if actual is None or estimate <= 0.0:
                continue
            observed = max(float(actual), 1.0)
            expected = max(estimate, 1.0)
            worst = max(worst, observed / expected, expected / observed)
        return worst

    def should_replan(self, threshold: float) -> bool:
        """Whether observed cardinalities drifted past ``threshold``
        (a ratio, e.g. 8.0 = off by 8x in either direction)."""
        return self.max_drift() > threshold

    def shard_imbalance(self) -> float:
        """Max/mean derived-row ratio across shards (1.0 = balanced)."""
        if not self.shard_rows:
            return 1.0
        counts = list(self.shard_rows.values())
        mean = sum(counts) / len(counts)
        if mean <= 0:
            return 1.0
        return max(counts) / mean

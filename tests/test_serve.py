"""Serving-front-end invariants.

The four acceptance properties of the serving subsystem:

* deterministic replay — one seed, one latency histogram, bit for bit;
* conservation — no request lost or duplicated, even when submissions
  race from many threads;
* explicit shedding — a deadline-expired request ends as a ``shed``
  outcome with a reason, never a silent drop;
* result fidelity — micro-batched results bitwise-match a solo run of
  the same database on a fresh single-device engine.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    DevicePool,
    LoadGenerator,
    LobsterEngine,
    LobsterError,
    Request,
    Scheduler,
    SLOClass,
)
from repro.serve import COMPLETED, REJECTED, SHED, AdmissionController
from repro.serve.queue import RequestQueue
from repro.workloads.analytics import TRANSITIVE_CLOSURE

from _helpers import random_digraph


@pytest.fixture(scope="module")
def engine():
    return LobsterEngine(TRANSITIVE_CLOSURE, provenance="minmaxprob")


def make_database_factory(engine, n_nodes=16, n_edges=30):
    def make_database(rng, index):
        edges = random_digraph(rng, n_nodes, n_edges)
        db = engine.create_database()
        db.add_facts("edge", edges, probs=[0.9] * len(edges))
        return db, {"edges": edges}

    return make_database


def tight_classes(deadline_s=1.0, delay_s=1e-4, batch=4, limit=64):
    return {
        "interactive": SLOClass(
            "interactive",
            deadline_s=deadline_s,
            max_batch_delay_s=delay_s,
            max_batch_size=batch,
            queue_limit=limit,
            priority=0,
        )
    }


class TestSchedulerBasics:
    def test_all_requests_complete_at_low_load(self, engine):
        gen = LoadGenerator(
            engine,
            make_database_factory(engine),
            rate_hz=100.0,
            n_requests=12,
            seed=3,
        )
        scheduler = Scheduler(n_devices=2)
        report = scheduler.run(gen.generate())
        assert report.submitted == 12
        assert report.completed == 12
        assert report.rejected == report.shed == 0
        assert report.makespan_s > 0
        # Every outcome carries serve-clock timings.
        for outcome in report.outcomes:
            assert outcome.status == COMPLETED
            assert outcome.finish_s > outcome.start_s >= outcome.arrival_s >= 0
            assert outcome.latency_s > 0 and outcome.service_s > 0

    def test_results_are_correct_closures(self, engine):
        gen = LoadGenerator(
            engine,
            make_database_factory(engine, n_nodes=8, n_edges=12),
            rate_hz=200.0,
            n_requests=6,
            seed=11,
        )
        requests = gen.generate()
        report = Scheduler(n_devices=1).run(requests)
        by_ticket = {r.ticket: r for r in requests}
        for outcome in report.outcomes:
            request = by_ticket[outcome.ticket]
            rows = set(request.database.result("path").rows())
            edges = set(outcome.meta["edges"])
            closure = set(edges)
            while True:
                extra = {
                    (a, d)
                    for a, b in closure
                    for c, d in closure
                    if b == c and (a, d) not in closure
                }
                if not extra:
                    break
                closure |= extra
            assert rows == closure

    def test_micro_batches_coalesce(self, engine):
        # Simultaneous arrivals of one program coalesce up to the size
        # bound: 8 requests, max_batch_size=4 -> exactly 2 batches.
        classes = tight_classes(batch=4)
        scheduler = Scheduler(n_devices=1, classes=classes)
        factory = make_database_factory(engine)
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(8):
            db, meta = factory(rng, 0)
            scheduler.submit(Request(engine=engine, database=db, arrival_s=0.0))
        report = scheduler.run()
        assert report.completed == 8
        assert scheduler.metrics.counter("serve.batches").value == 2
        assert all(o.batch_size == 4 for o in report.outcomes)
        # The scheduler's per-program sessions keep no per-request
        # bookkeeping (long-lived serving must not grow without bound).
        assert all(len(s) == 0 for s in scheduler._sessions.values())

    def test_outcomes_are_per_drain(self, engine):
        # A reused scheduler keeps only the latest drain's outcomes —
        # history belongs to the returned reports.
        scheduler = Scheduler(n_devices=1)
        factory = make_database_factory(engine)
        import numpy as np

        rng = np.random.default_rng(23)

        def one_request():
            db, _meta = factory(rng, 0)
            return Request(engine=engine, database=db, arrival_s=0.0)

        first = scheduler.run([one_request(), one_request()])
        second = scheduler.run([one_request()])
        assert len(first.outcomes) == 2 and len(second.outcomes) == 1
        assert set(scheduler.outcomes) == {o.ticket for o in second.outcomes}

    def test_sharded_engine_is_refused(self):
        sharded = LobsterEngine(TRANSITIVE_CLOSURE, shards=2)
        db = sharded.create_database()
        with pytest.raises(LobsterError, match="shards=1"):
            Scheduler(n_devices=2).submit(Request(engine=sharded, database=db))

    def test_unknown_slo_class_is_refused(self, engine):
        scheduler = Scheduler(n_devices=1)
        db = engine.create_database()
        with pytest.raises(LobsterError, match="unknown SLO class"):
            scheduler.submit(Request(engine=engine, database=db, slo="bulk"))

    def test_double_submit_of_one_request_is_refused(self, engine):
        scheduler = Scheduler(n_devices=1)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        request = Request(engine=engine, database=db)
        scheduler.submit(request)
        with pytest.raises(LobsterError, match="already submitted"):
            scheduler.submit(request)
        report = scheduler.run()
        assert report.submitted == 1 and report.completed == 1

    def test_bad_busy_until_does_not_eat_submitted_requests(self, engine):
        # Regression: validation must precede the intake drain, so a
        # caller can fix the argument and retry without losing work.
        scheduler = Scheduler(n_devices=2)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        scheduler.submit(Request(engine=engine, database=db))
        with pytest.raises(LobsterError, match="busy_until"):
            scheduler.run(busy_until=[0.0])  # wrong length
        report = scheduler.run(busy_until=[0.0, 0.0])
        assert report.submitted == 1 and report.completed == 1

    def test_engines_differing_in_max_iterations_get_separate_sessions(self):
        # Same compiled program, different execution budget: coalescing
        # them through one session would run requests under the wrong
        # engine's max_iterations.
        a = LobsterEngine(TRANSITIVE_CLOSURE, provenance="unit")
        b = LobsterEngine(
            TRANSITIVE_CLOSURE, provenance="unit", max_iterations=7777
        )
        assert a.compiled.key == b.compiled.key  # cache shares the artifact
        scheduler = Scheduler(n_devices=1)
        for eng in (a, b):
            db = eng.create_database()
            db.add_facts("edge", [(0, 1), (1, 2)])
            scheduler.submit(Request(engine=eng, database=db, arrival_s=0.0))
        report = scheduler.run()
        assert report.completed == 2
        assert len(scheduler._sessions) == 2


class TestDeterministicReplay:
    def test_same_seed_identical_latency_histogram(self, engine):
        def run_once():
            gen = LoadGenerator(
                engine,
                make_database_factory(engine),
                rate_hz=2000.0,
                n_requests=30,
                seed=42,
                pattern="bursty",
            )
            scheduler = Scheduler(n_devices=2)
            return scheduler.run(gen.generate())

        first, second = run_once(), run_once()
        assert first.latency_histogram("interactive") == second.latency_histogram(
            "interactive"
        )
        # The full outcome stream replays identically too.
        key = lambda o: (o.ticket, o.status, o.start_s, o.finish_s, o.service_s)
        assert [key(o) for o in first.outcomes] == [key(o) for o in second.outcomes]

    def test_different_seed_differs(self, engine):
        def run_once(seed):
            gen = LoadGenerator(
                engine,
                make_database_factory(engine),
                rate_hz=2000.0,
                n_requests=30,
                seed=seed,
            )
            return Scheduler(n_devices=2).run(gen.generate())

        assert run_once(1).latency_histogram("interactive") != run_once(
            2
        ).latency_histogram("interactive")


class TestConservation:
    def test_no_request_lost_or_duplicated_under_concurrent_submit(self, engine):
        scheduler = Scheduler(n_devices=2, classes=tight_classes())
        factory = make_database_factory(engine, n_nodes=6, n_edges=8)
        n_threads, per_thread = 8, 16
        errors = []

        def submit_many(thread_index):
            import numpy as np

            rng = np.random.default_rng(thread_index)
            try:
                for i in range(per_thread):
                    db, meta = factory(rng, i)
                    scheduler.submit(
                        Request(
                            engine=engine,
                            database=db,
                            arrival_s=float(i) * 1e-4,
                            meta=meta,
                        )
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=submit_many, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        report = scheduler.run()
        total = n_threads * per_thread
        assert report.submitted == total
        assert report.completed + report.rejected + report.shed == total
        tickets = [o.ticket for o in report.outcomes]
        assert len(tickets) == len(set(tickets)) == total


class TestSheddingAndAdmission:
    def test_deadline_expired_requests_are_shed_not_dropped(self, engine):
        # One giant burst at t=0 with a deadline far below the time the
        # queue needs to drain on one device: the tail must be *shed*,
        # with an explicit reason, and the books must balance.
        classes = tight_classes(deadline_s=3e-4, batch=1, limit=500)
        scheduler = Scheduler(n_devices=1, classes=classes)
        factory = make_database_factory(engine)
        import numpy as np

        rng = np.random.default_rng(5)
        n = 40
        for _ in range(n):
            db, _meta = factory(rng, 0)
            scheduler.submit(Request(engine=engine, database=db, arrival_s=0.0))
        report = scheduler.run()
        assert report.completed + report.rejected + report.shed == n
        assert report.shed > 0
        shed = [o for o in report.outcomes if o.status == SHED]
        for outcome in shed:
            assert "deadline expired" in outcome.reason
        assert (
            scheduler.metrics.counter("serve.shed.interactive").value
            == report.shed
        )

    def test_queue_limit_rejects_with_reason(self, engine):
        classes = tight_classes(deadline_s=10.0, batch=1, limit=4)
        scheduler = Scheduler(n_devices=1, classes=classes)
        factory = make_database_factory(engine)
        import numpy as np

        rng = np.random.default_rng(9)
        for _ in range(12):
            db, _meta = factory(rng, 0)
            scheduler.submit(Request(engine=engine, database=db, arrival_s=0.0))
        report = scheduler.run()
        rejected = [o for o in report.outcomes if o.status == REJECTED]
        assert rejected
        for outcome in rejected:
            assert "queue full" in outcome.reason
        assert report.completed + report.rejected + report.shed == 12

    def test_infeasible_deadline_rejected_at_the_door(self, engine):
        # Warm the estimator so admission can price the backlog, then
        # offer a burst whose tail cannot possibly meet its deadline.
        classes = tight_classes(deadline_s=2e-4, batch=1, limit=10_000)
        scheduler = Scheduler(n_devices=1, classes=classes)
        factory = make_database_factory(engine)
        import numpy as np

        rng = np.random.default_rng(13)
        db, _ = factory(rng, 0)
        scheduler.run([Request(engine=engine, database=db, arrival_s=0.0)])
        for _ in range(60):
            db, _meta = factory(rng, 0)
            scheduler.submit(Request(engine=engine, database=db, arrival_s=0.0))
        report = scheduler.run()
        reasons = {o.reason for o in report.outcomes if o.status == REJECTED}
        assert any("deadline infeasible" in r for r in reasons)

    def test_batches_backfill_past_shed_requests(self, engine):
        # Head-of-group requests with blown deadlines must not shrink
        # the dispatched batch: viable peers backfill their slots.
        # A higher-priority blocker class wins the only device at t=0;
        # everything is admitted at t=0 (the device still looks free, so
        # feasibility cannot reject the doomed requests at the door),
        # and by the time the device frees the tiny deadlines are blown.
        classes = {
            "blocker": SLOClass(
                "blocker", deadline_s=10.0, max_batch_delay_s=0.0,
                max_batch_size=1, queue_limit=8, priority=0,
            ),
            "interactive": SLOClass(
                "interactive", deadline_s=10.0, max_batch_delay_s=0.0,
                max_batch_size=3, queue_limit=64, priority=1,
            ),
        }
        scheduler = Scheduler(n_devices=1, classes=classes)
        factory = make_database_factory(engine)
        import numpy as np

        rng = np.random.default_rng(29)
        blocker_engine = LobsterEngine(TRANSITIVE_CLOSURE, provenance="unit")
        blocker = blocker_engine.create_database()
        blocker.add_facts("edge", [(i, i + 1) for i in range(30)])
        scheduler.submit(
            Request(
                engine=blocker_engine, database=blocker,
                slo="blocker", arrival_s=0.0,
            )
        )
        # Two doomed requests (tiny deadline) at the head of the group,
        # three viable ones behind them.
        for deadline in (1e-6, 1e-6, None, None, None):
            db, _meta = factory(rng, 0)
            scheduler.submit(
                Request(
                    engine=engine,
                    database=db,
                    arrival_s=0.0,
                    deadline_s=deadline,
                )
            )
        report = scheduler.run()
        assert report.shed == 2
        late = [
            o
            for o in report.outcomes
            if o.status == COMPLETED and o.slo == "interactive"
        ]
        assert len(late) == 3
        # One full backfilled batch of 3 — not a size-1 batch headed by
        # the first viable request plus a size-2 straggler batch.
        assert all(o.batch_size == 3 for o in late)

    def test_lower_priority_backlog_does_not_reject_interactive(self, engine):
        # Deadline feasibility only counts work that dispatches at or
        # before the request's priority: a deep batch-class backlog must
        # not push interactive traffic into rejection.
        classes = {
            "interactive": SLOClass(
                "interactive", deadline_s=0.005, max_batch_delay_s=0.0,
                max_batch_size=4, queue_limit=64, priority=0,
            ),
            "batch": SLOClass(
                "batch", deadline_s=60.0, max_batch_delay_s=0.0,
                max_batch_size=4, queue_limit=10_000, priority=1,
            ),
        }
        controller = AdmissionController(classes)
        queue = RequestQueue(classes)
        db = engine.create_database()
        key = Request(engine=engine, database=db).program_key
        controller.estimator.observe(key, 0.001)  # 1ms per queued request
        for i in range(200):  # ~200ms of batch backlog
            queue.push(
                Request(
                    engine=engine, database=db, slo="batch",
                    arrival_s=0.0, ticket=i,
                )
            )
        interactive = Request(
            engine=engine, database=db, slo="interactive",
            arrival_s=0.0, ticket=500,
        )
        assert (
            controller.decide(interactive, now=0.0, queue=queue, free_at=[0.0])
            is None
        )
        # The same backlog ahead of a *batch*-class request does count.
        peer = Request(
            engine=engine, database=db, slo="batch",
            arrival_s=0.0, ticket=501, deadline_s=0.005,
        )
        reason = controller.decide(peer, now=0.0, queue=queue, free_at=[0.0])
        assert reason is not None and "deadline infeasible" in reason

    def test_backpressure_signal(self, engine):
        classes = tight_classes(limit=10)
        controller = AdmissionController(classes)
        queue = RequestQueue(classes)
        assert controller.backpressure(queue) == 0.0
        db = engine.create_database()
        for i in range(5):
            queue.push(Request(engine=engine, database=db, arrival_s=0.0, ticket=i))
        assert controller.backpressure(queue) == pytest.approx(0.5)


class TestResultFidelity:
    def test_micro_batched_results_bitwise_match_solo_runs(self, engine):
        gen = LoadGenerator(
            engine,
            make_database_factory(engine),
            rate_hz=5000.0,  # dense arrivals -> real coalescing
            n_requests=16,
            seed=21,
        )
        requests = gen.generate()
        report = Scheduler(n_devices=2).run(requests)
        assert report.completed == 16
        assert report.metrics.histogram("serve.batch_size").max > 1
        by_ticket = {r.ticket: r for r in requests}
        for outcome in report.outcomes:
            request = by_ticket[outcome.ticket]
            solo_engine = LobsterEngine(
                TRANSITIVE_CLOSURE, provenance="minmaxprob", cache=False
            )
            solo_db = solo_engine.create_database()
            edges = outcome.meta["edges"]
            solo_db.add_facts("edge", edges, probs=[0.9] * len(edges))
            solo_engine.run(solo_db)
            served_rows, served_probs = request.database.result_probs("path")
            solo_rows, solo_probs = solo_db.result_probs("path")
            assert served_rows == solo_rows
            assert list(served_probs) == list(solo_probs)  # bitwise, no approx


class TestLoadGenerator:
    def test_poisson_stream_is_deterministic(self, engine):
        factory = make_database_factory(engine)
        a = LoadGenerator(engine, factory, rate_hz=100.0, n_requests=20, seed=7)
        b = LoadGenerator(engine, factory, rate_hz=100.0, n_requests=20, seed=7)
        assert a.arrival_times() == b.arrival_times()
        edges_a = [r.meta["edges"] for r in a.generate()]
        edges_b = [r.meta["edges"] for r in b.generate()]
        assert edges_a == edges_b

    def test_arrivals_monotone_and_rate_plausible(self, engine):
        gen = LoadGenerator(
            engine,
            make_database_factory(engine),
            rate_hz=1000.0,
            n_requests=400,
            seed=3,
        )
        times = gen.arrival_times()
        assert all(b > a for a, b in zip(times, times[1:]))
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1e-3, rel=0.25)

    def test_bursty_pattern_clumps_arrivals(self, engine):
        factory = make_database_factory(engine)
        poisson = LoadGenerator(
            engine, factory, rate_hz=1000.0, n_requests=500, seed=5
        ).arrival_times()
        bursty = LoadGenerator(
            engine,
            factory,
            rate_hz=1000.0,
            n_requests=500,
            seed=5,
            pattern="bursty",
            burst_factor=6.0,
            duty_cycle=0.2,
        ).arrival_times()

        def cv_of_gaps(times):
            import numpy as np

            gaps = np.diff(np.array(times))
            return float(gaps.std() / gaps.mean())

        # A modulated process is strictly more variable than Poisson
        # (whose gap coefficient of variation is ~1).
        assert cv_of_gaps(bursty) > cv_of_gaps(poisson) * 1.3

    def test_class_mix_spans_classes(self, engine):
        gen = LoadGenerator(
            engine,
            make_database_factory(engine),
            rate_hz=100.0,
            n_requests=60,
            seed=2,
            class_mix={"interactive": 0.7, "batch": 0.3},
        )
        slos = {r.slo for r in gen.generate()}
        assert slos == {"interactive", "batch"}

    def test_invalid_parameters_raise(self, engine):
        factory = make_database_factory(engine)
        with pytest.raises(LobsterError):
            LoadGenerator(engine, factory, rate_hz=0.0, n_requests=5)
        with pytest.raises(LobsterError):
            LoadGenerator(
                engine, factory, rate_hz=1.0, n_requests=5, pattern="sawtooth"
            )
        with pytest.raises(LobsterError):
            LoadGenerator(
                engine,
                factory,
                rate_hz=1.0,
                n_requests=5,
                pattern="bursty",
                burst_factor=0.0,
            )
        with pytest.raises(LobsterError):
            LoadGenerator(
                engine,
                factory,
                rate_hz=1.0,
                n_requests=5,
                pattern="bursty",
                cycle_s=0.0,
            )

    def test_goodput_measures_the_busy_span_not_absolute_clock(self, engine):
        # A stream whose timestamps start at t=100s must report the same
        # goodput as the identical stream starting at t=0.
        def run_with_start(start_s):
            gen = LoadGenerator(
                engine,
                make_database_factory(engine),
                rate_hz=500.0,
                n_requests=12,
                seed=6,
                start_s=start_s,
            )
            return Scheduler(n_devices=1).run(gen.generate())

        at_zero, offset = run_with_start(0.0), run_with_start(100.0)
        assert offset.completed == at_zero.completed == 12
        assert offset.goodput_rps == pytest.approx(at_zero.goodput_rps)


class TestPriorities:
    def test_interactive_cuts_ahead_of_batch(self, engine):
        # Same program, both classes, one device, simultaneous arrivals:
        # interactive (priority 0) must dispatch before batch.
        classes = {
            "interactive": SLOClass(
                "interactive", deadline_s=10.0, max_batch_delay_s=0.0,
                max_batch_size=4, queue_limit=64, priority=0,
            ),
            "batch": SLOClass(
                "batch", deadline_s=10.0, max_batch_delay_s=0.0,
                max_batch_size=4, queue_limit=64, priority=1,
            ),
        }
        scheduler = Scheduler(n_devices=1, classes=classes)
        factory = make_database_factory(engine)
        import numpy as np

        rng = np.random.default_rng(17)
        for slo in ("batch", "interactive"):  # batch submitted first
            for _ in range(2):
                db, _meta = factory(rng, 0)
                scheduler.submit(
                    Request(engine=engine, database=db, slo=slo, arrival_s=0.0)
                )
        report = scheduler.run()
        interactive_finish = max(
            o.finish_s for o in report.outcomes if o.slo == "interactive"
        )
        batch_start = min(o.start_s for o in report.outcomes if o.slo == "batch")
        assert interactive_finish <= batch_start

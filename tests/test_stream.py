"""The stream/ subsystem: sources, windows, views, subscriptions, and
the serve-clock StreamScheduler.

Two laws anchor everything:

* **Bitwise fidelity** — after every tick, the maintained view equals a
  cold from-scratch run of the same live fact set;
* **Conservation** — every tick's emitted view delta satisfies
  ``view_before ⊎ inserts ∖ retracts == view_after``, so replaying the
  delta log from tick 0 reconstructs the final view exactly.
"""

from __future__ import annotations

import pytest

from repro import (
    LobsterEngine,
    MaterializedView,
    SlidingWindow,
    StaleViewError,
    StreamScheduler,
    TumblingWindow,
)
from repro.dist import DevicePool
from repro.serve import MetricsRegistry, Scheduler
from repro.stream import RelationStream, TickDelta, graph_edge_stream, replay_deltas

TC = """
rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
query path
"""

EDGES = [(i, i + 1) for i in range(12)] + [(0, 5), (3, 9), (2, 7), (6, 11)]


def make_window(size=5, per_tick=2, seed=3, cls=SlidingWindow, probs=None):
    return cls(
        RelationStream("edge", EDGES, per_tick, seed=seed, prob_range=probs),
        size,
    )


class TestSources:
    def test_batches_are_pure_functions_of_tick(self):
        stream = RelationStream("edge", EDGES, 3, seed=9)
        assert stream.batch(4) == stream.batch(4)
        assert stream.batch(0) != stream.batch(1)

    def test_probs_stable_across_reinsertion(self):
        stream = RelationStream("edge", EDGES, 2, seed=9, prob_range=(0.2, 1.0))
        first_cycle = {e.row: e.prob for t in range(20) for e in stream.batch(t)}
        second_cycle = {e.row: e.prob for t in range(20, 40) for e in stream.batch(t)}
        assert first_cycle == second_cycle

    def test_graph_edge_stream_over_corpus(self):
        stream = graph_edge_stream("SF.cedge", per_tick=4, seed=1)
        assert len(stream.batch(0)) == 4
        assert all(event.relation == "edge" for event in stream.batch(7))


class TestWindows:
    def test_sliding_window_expires_after_size_ticks(self):
        window = make_window(size=3, per_tick=1)
        inserted_at = {}
        for tick in range(10):
            delta = window.advance()
            for rows, _ in delta.inserts.values():
                for row in rows:
                    inserted_at[row] = tick
            for rows in delta.retracts.values():
                for row in rows:
                    assert tick - inserted_at.pop(row) == 3

    def test_reinsert_extends_life_instead_of_duplicating(self):
        # Two rows cycling through a size-3 window with per_tick=1 over a
        # 2-row stream: every row re-inserts before expiring, so no
        # retraction ever fires.
        window = SlidingWindow(
            RelationStream("edge", [(0, 1), (1, 2)], 1, seed=0), size=3
        )
        for _ in range(12):
            delta = window.advance()
            assert not delta.retracts
        assert window.live_count == 2

    def test_tumbling_window_clears_whole_epochs(self):
        window = TumblingWindow(
            RelationStream("edge", EDGES, 2, seed=5), size=4
        )
        retract_ticks = set()
        for tick in range(16):
            delta = window.advance()
            if delta.retracts:
                retract_ticks.add(tick)
        assert retract_ticks <= {4, 8, 12}

    def test_reset_replays_identically(self):
        window = make_window()
        first = [window.advance() for _ in range(12)]
        window.reset()
        second = [window.advance() for _ in range(12)]
        for a, b in zip(first, second):
            assert a.inserts == b.inserts and a.retracts == b.retracts

    def test_merge_cancels_insert_then_retract(self):
        early = TickDelta(0, inserts={"edge": ([(0, 1), (1, 2)], None)})
        late = TickDelta(1, retracts={"edge": [(0, 1)]})
        merged = early.merged_with(late)
        assert merged.inserts["edge"][0] == [(1, 2)]
        assert "edge" not in merged.retracts
        assert merged.ticks_covered == 2

    def test_merge_keeps_both_on_retract_then_reinsert(self):
        # The old live instance must still be retracted before the fresh
        # insert lands, or the coalesced tick leaves a duplicate behind.
        early = TickDelta(0, retracts={"edge": [(0, 1)]})
        late = TickDelta(1, inserts={"edge": ([(0, 1)], [0.7])})
        merged = early.merged_with(late)
        assert merged.inserts["edge"] == ([(0, 1)], [0.7])
        assert merged.retracts["edge"] == [(0, 1)]

    def test_coalesced_ticks_match_sequential_for_nonidempotent_oplus(self):
        # Regression: dropping the retract half of a retract-then-
        # reinsert pair leaves two instances of the row, which addmult-
        # prob's ⊕ counts twice.
        engine_seq = LobsterEngine("rel q(x) :- a(x).", provenance="addmultprob")
        engine_co = LobsterEngine("rel q(x) :- a(x).", provenance="addmultprob")
        first = TickDelta(0, inserts={"a": ([(1,)], [0.5])})
        second = TickDelta(1, retracts={"a": [(1,)]})
        third = TickDelta(2, inserts={"a": ([(1,)], [0.5])})
        sequential = MaterializedView(engine_seq, relations=["q"])
        for delta in (first, second, third):
            sequential.apply(delta)
        coalesced = MaterializedView(engine_co, relations=["q"])
        coalesced.apply(first)
        coalesced.apply(second.merged_with(third))
        assert sequential.result("q") == coalesced.result("q") == {(1,): 0.5}

    def test_mixed_discrete_and_probabilistic_batch(self):
        # A per-row None prob marks a discrete fact, not probability 0.
        engine = LobsterEngine(TC, provenance="minmaxprob")
        view = MaterializedView(engine)
        delta = TickDelta(0, inserts={"edge": ([(0, 1), (1, 2)], [None, 0.4])})
        view.apply(delta)
        result = view.result("path")
        assert result[(0, 1)] == pytest.approx(1.0)  # discrete = certain
        assert result[(1, 2)] == pytest.approx(0.4)
        assert result[(0, 2)] == pytest.approx(0.4)


class TestMaterializedView:
    def test_every_tick_matches_cold(self):
        window = make_window()
        view = MaterializedView(LobsterEngine(TC))
        live: set[tuple] = set()
        for _ in range(18):
            delta = window.advance()
            for rows in delta.retracts.values():
                live.difference_update(rows)
            for rows, _ in delta.inserts.values():
                live.update(rows)
            view.apply(delta)
            cold_engine = LobsterEngine(TC)
            cold_db = cold_engine.create_database()
            cold_db.add_facts("edge", sorted(live))
            cold_engine.run(cold_db)
            assert set(view.result("path")) == set(cold_db.result("path").rows())

    def test_probabilistic_view_matches_cold(self):
        window = make_window(probs=(0.3, 1.0))
        view = MaterializedView(LobsterEngine(TC, provenance="minmaxprob"))
        live: dict[tuple, float] = {}
        for _ in range(14):
            delta = window.advance()
            for rows in delta.retracts.values():
                for row in rows:
                    live.pop(row, None)
            for rows, probs in delta.inserts.values():
                live.update(zip(rows, probs))
            view.apply(delta)
            cold_engine = LobsterEngine(TC, provenance="minmaxprob")
            cold_db = cold_engine.create_database()
            cold_db.add_facts(
                "edge", sorted(live), probs=[live[r] for r in sorted(live)]
            )
            cold_engine.run(cold_db)
            cold = cold_engine.query_probs(cold_db, "path")
            warm = view.result("path")
            assert set(warm) == set(cold)
            for row, prob in warm.items():
                assert prob == pytest.approx(cold[row], abs=1e-9)

    def test_conservation_law_per_tick(self):
        window = make_window()
        view = MaterializedView(LobsterEngine(TC))
        state = view.result("path")
        for _ in range(15):
            before = dict(state)
            delta = view.apply(window.advance())
            state = replay_deltas({"path": before}, [delta])["path"]
            assert state == view.result("path")

    def test_subscription_replay_reconstructs_final_view(self):
        window = make_window()
        view = MaterializedView(LobsterEngine(TC))
        subscription = view.subscribe()
        for _ in range(16):
            view.apply(window.advance())
        assert subscription.replay()["path"] == view.result("path")
        polled = subscription.poll()
        assert len(polled) == 16
        assert subscription.poll() == []  # drained
        assert replay_deltas(view.baseline(), polled)["path"] == view.result("path")

    def test_push_callbacks_see_every_delta(self):
        window = make_window()
        view = MaterializedView(LobsterEngine(TC))
        pushed = []
        view.subscribe(callback=pushed.append)
        applied = [view.apply(window.advance()) for _ in range(6)]
        assert pushed == applied

    def test_view_with_preloaded_baseline(self):
        engine = LobsterEngine(TC)
        db = engine.create_database()
        db.add_facts("edge", [(100, 101), (101, 102)])
        engine.run(db)
        view = MaterializedView(engine, database=db)
        subscription = view.subscribe()
        assert (100, 102) in view.result("path")
        window = make_window()
        for _ in range(8):
            view.apply(window.advance())
        assert subscription.replay()["path"] == view.result("path")
        assert (100, 102) in view.result("path")  # baseline rows persist

    def test_out_of_band_mutation_raises_stale(self):
        window = make_window()
        view = MaterializedView(LobsterEngine(TC))
        view.apply(window.advance())
        view.database.add_facts("edge", [(70, 71)])
        with pytest.raises(StaleViewError, match="outside the view"):
            view.apply(window.advance())
        view.refresh()
        view.apply(window.advance())  # healthy again
        assert (70, 71) in view.result("path")

    def test_refresh_invalidates_even_caught_up_subscriptions(self):
        # Regression: a fully caught-up cursor must still fail after a
        # refresh — the baseline changed out-of-band, so resuming the
        # delta stream would silently skip that change.
        window = make_window()
        view = MaterializedView(LobsterEngine(TC))
        view.apply(window.advance())
        subscription = view.subscribe()
        assert subscription.poll() == []  # caught up
        view.database.add_facts("edge", [(80, 81)])
        view.refresh()
        view.apply(window.advance())
        with pytest.raises(StaleViewError, match="refresh"):
            subscription.poll()

    def test_pruned_history_raises_stale_on_lagging_subscription(self):
        window = make_window()
        view = MaterializedView(LobsterEngine(TC), max_history=4)
        lagging = view.subscribe()
        caught_up = view.subscribe()
        for _ in range(4):
            view.apply(window.advance())
        assert len(caught_up.poll()) == 4
        for _ in range(4):
            view.apply(window.advance())
        with pytest.raises(StaleViewError, match="pruned"):
            lagging.poll()
        assert len(caught_up.poll()) == 4  # exactly the retained tail
        with pytest.raises(StaleViewError, match="replay"):
            lagging.replay()


class TestStreamScheduler:
    def build(self, pool=None, metrics=None, period_s=1e-4):
        scheduler = StreamScheduler(
            pool=pool or DevicePool(2, policy="least-loaded"),
            metrics=metrics or MetricsRegistry(),
        )
        view = MaterializedView(LobsterEngine(TC), name="tc")
        scheduler.register(view, make_window(), period_s=period_s)
        return scheduler, view

    def test_run_is_deterministic_for_a_seed(self):
        first, _ = self.build()
        second, _ = self.build()
        report_a = first.run(12)
        report_b = second.run(12)
        assert report_a.makespan_s == report_b.makespan_s
        assert report_a.passes == report_b.passes
        assert first.metrics.histogram(
            "stream.maintain_latency_s.tc"
        ) == second.metrics.histogram("stream.maintain_latency_s.tc")

    def test_update_latency_histogram_covers_every_pass(self):
        scheduler, _ = self.build()
        report = scheduler.run(10)
        histogram = scheduler.metrics.histogram("stream.maintain_latency_s.tc")
        assert histogram.count == report.passes
        assert histogram.p99 > 0.0
        assert report.ticks == 10

    def test_backlog_coalesces_into_net_deltas(self):
        scheduler, view = self.build(period_s=1e-12)
        scheduler.max_lag_ticks = 0.5
        report = scheduler.run(12)
        assert report.coalesced > 0
        assert report.ticks == 12 == report.passes + report.coalesced
        assert (
            scheduler.metrics.counter("stream.ticks_coalesced").value
            == report.coalesced
        )
        # Coalescing must not change the final answer.
        window = make_window()
        reference = MaterializedView(LobsterEngine(TC))
        for _ in range(12):
            reference.apply(window.advance())
        assert view.result("path") == reference.result("path")

    def test_maintenance_occupies_shared_devices(self):
        pool = DevicePool(1, policy="least-loaded")
        metrics = MetricsRegistry()
        scheduler, _ = self.build(pool=pool, metrics=metrics)
        report = scheduler.run(8)
        assert report.busy_until[0] > 0.0
        # A request drain seeded with the maintenance horizon starts its
        # devices busy: an immediate-arrival stream can't start before it.
        request_scheduler = Scheduler(pool=pool, metrics=metrics)
        engine = LobsterEngine(TC)
        from repro.serve import Request

        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        request_scheduler.submit(Request(engine, db, slo="batch", arrival_s=0.0))
        drained = request_scheduler.run(busy_until=report.busy_until)
        outcome = drained.outcomes[0]
        assert outcome.status == "completed"
        assert outcome.start_s >= report.busy_until[0]

    def test_registering_sharded_engine_is_rejected(self):
        scheduler = StreamScheduler(n_devices=1)
        view = MaterializedView(LobsterEngine(TC, shards=2), name="sharded")
        with pytest.raises(Exception, match="shard"):
            scheduler.register(view, make_window())

"""Checkpoint files: atomically swapped, CRC-framed state snapshots.

A checkpoint file ``ckpt-<seq>.ckpt`` holds exactly two frames: a small
header (format version + sequence number) and the state payload.  Files
are written through :meth:`LocalStorage.write_atomic`, so a reader never
observes a half-written checkpoint at the destination name — a file
that *still* fails CRC framing was corrupted at rest, and
:meth:`CheckpointStore.latest` skips it and falls back to the previous
sequence (the "stale checkpoint" recovery scenario: older state plus a
longer WAL tail, same final answer).  A header whose format version is
from a different future raises
:class:`~repro.errors.CheckpointMismatchError` — silently recovering
across an incompatible layout would load wrong state, not old state.

The same two-frame file layout is the database export/import
interchange format (:func:`repro.recovery.export_database`).
"""

from __future__ import annotations

import re

from .codec import decode, encode
from .framing import frame, read_frames
from .storage import LocalStorage
from ..errors import CheckpointMismatchError, CorruptLogError

__all__ = ["CheckpointStore", "FORMAT_VERSION", "pack_payload", "unpack_payload"]

#: On-disk layout version; bump on incompatible state_dict changes.
FORMAT_VERSION = 1

_NAME = re.compile(r"^ckpt-(\d{8})\.ckpt$")


def pack_payload(payload: dict, *, seq: int = 0, kind: str = "checkpoint") -> bytes:
    """Frame a header + payload pair (the checkpoint/export file body)."""
    header = {"format": FORMAT_VERSION, "kind": kind, "seq": seq}
    return frame(encode(header)) + frame(encode(payload))


def unpack_payload(data: bytes, *, kind: str = "checkpoint") -> tuple[dict, dict]:
    """Validate and decode one checkpoint/export file; returns
    ``(header, payload)``.  CRC or structural failures raise
    :class:`CorruptLogError`; a foreign format version or record kind
    raises :class:`CheckpointMismatchError`."""
    scan = read_frames(data, strict=True)
    if len(scan.payloads) != 2:
        raise CorruptLogError(
            f"expected 2 frames (header + payload), found {len(scan.payloads)}"
        )
    header = decode(scan.payloads[0])
    if not isinstance(header, dict) or "format" not in header:
        raise CorruptLogError("first frame is not a checkpoint header")
    if header["format"] != FORMAT_VERSION:
        raise CheckpointMismatchError(
            f"checkpoint format {header['format']} != supported "
            f"{FORMAT_VERSION}; cannot load across layout versions"
        )
    if header.get("kind") != kind:
        raise CheckpointMismatchError(
            f"file holds a {header.get('kind')!r} record, expected {kind!r}"
        )
    payload = decode(scan.payloads[1])
    if not isinstance(payload, dict):
        raise CorruptLogError("checkpoint payload is not a mapping")
    return header, payload


class CheckpointStore:
    """Numbered checkpoints in one storage root."""

    def __init__(self, storage: LocalStorage):
        self.storage = storage

    @staticmethod
    def name(seq: int) -> str:
        return f"ckpt-{seq:08d}.ckpt"

    def sequences(self) -> list[int]:
        """Durable checkpoint sequence numbers, ascending."""
        out = []
        for file_name in self.storage.list():
            match = _NAME.match(file_name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def save(self, seq: int, payload: dict) -> None:
        self.storage.write_atomic(self.name(seq), pack_payload(payload, seq=seq))

    def load(self, seq: int) -> dict:
        _, payload = unpack_payload(self.storage.read(self.name(seq)))
        return payload

    def latest(self) -> tuple[int, dict] | None:
        """The newest checkpoint that validates, or None.

        Corrupt files are skipped (fall back to the previous sequence);
        a :class:`CheckpointMismatchError` propagates — an incompatible
        checkpoint must never be silently ignored.
        """
        for seq in reversed(self.sequences()):
            try:
                return seq, self.load(seq)
            except CorruptLogError:
                continue
        return None

    def prune(self, keep: int) -> list[int]:
        """Drop all but the newest ``keep`` checkpoints; returns the
        sequences still retained (the WAL keeps segments back to the
        oldest of these, so a corrupt newest checkpoint stays
        recoverable)."""
        sequences = self.sequences()
        retained = sequences[-keep:] if keep > 0 else []
        for seq in sequences:
            if seq not in retained:
                self.storage.remove(self.name(seq))
        return retained

"""Device (vectorized) top-k-proofs — the paper's §3.5 extension.

The paper ships top-1-proofs on the GPU and notes "Lobster could also
easily be extended to track larger k".  This module is that extension:
tags carry up to ``k`` proofs, each a fixed-capacity fact-id array, laid
out as flat per-slot vectors so they still fit APM's vector registers.

* ⊗ forms all k x k pairwise proof unions (through the same merge kernel
  as top-1), deduplicates by proof hash, and keeps the k most likely.
* ⊕ pools the proofs of duplicate tuples and keeps the k most likely
  distinct ones.
* ``prob`` is exact inclusion-exclusion over the retained proofs (2^k - 1
  terms; k is small), honouring exclusion-group conflicts.
* the differentiable variant backpropagates through the
  inclusion-exclusion formula with leave-one-out products per term.

Proof identity uses a 64-bit splitmix hash of the padded fact-id vector;
a collision would merge two distinct proofs, with probability ~2^-64 per
pair — the standard GPU trade (documented, not corrected).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .base import SATURATION_EPS, Provenance
from .top1proof import DEFAULT_PROOF_CAPACITY, PAD, Top1ProofProvenance, leave_one_out_products

DEFAULT_K = 3


def _hash_proofs(proofs: np.ndarray) -> np.ndarray:
    """64-bit hash per proof row (..., cap) -> (...,)."""
    with np.errstate(over="ignore"):
        z = proofs.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
        acc = np.zeros(proofs.shape[:-1], dtype=np.uint64)
        for position in range(proofs.shape[-1]):
            acc = acc * np.uint64(0x100000001B3) + z[..., position]
    return acc


class TopKProofsDeviceProvenance(Provenance):
    """Vectorized top-k proof tracking (k >= 1)."""

    name = "top-k-proofs-device"
    idempotent_oplus = True  # ⊕ unions proof sets, deduped, keeps top k

    def __init__(self, k: int = DEFAULT_K, proof_capacity: int = DEFAULT_PROOF_CAPACITY):
        super().__init__()
        self.k = int(k)
        self.proof_capacity = int(proof_capacity)
        # Reuse top-1's merge kernel for pairwise proof unions.
        self._merger = Top1ProofProvenance(proof_capacity)
        self._dtype = np.dtype(
            [
                ("prob", "f8", (self.k,)),
                ("size", "i8", (self.k,)),
                ("proof", "i8", (self.k, self.proof_capacity)),
            ]
        )

    def setup(self, input_probs, exclusion_groups=None) -> None:
        super().setup(input_probs, exclusion_groups)
        self._merger.setup(input_probs, exclusion_groups)

    # ------------------------------------------------------------------

    def tag_dtype(self) -> np.dtype:
        return self._dtype

    def one_tags(self, n: int) -> np.ndarray:
        out = np.zeros(n, dtype=self._dtype)
        out["proof"] = PAD
        out["size"] = -1
        out["size"][:, 0] = 0
        out["prob"][:, 0] = 1.0
        return out

    def input_tags(self, fact_ids: np.ndarray) -> np.ndarray:
        fact_ids = np.asarray(fact_ids, dtype=np.int64)
        out = self.one_tags(len(fact_ids))
        tagged = fact_ids >= 0
        out["prob"][tagged, 0] = self.input_probs[fact_ids[tagged]]
        out["size"][tagged, 0] = 1
        out["proof"][tagged, 0, 0] = fact_ids[tagged]
        return out

    # ------------------------------------------------------------------

    def otimes(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n = len(a)
        k = self.k
        # All k x k pairwise unions, flattened to (n * k^2, cap).
        pa = np.repeat(a["proof"], k, axis=1).reshape(n * k * k, self.proof_capacity)
        pb = np.tile(b["proof"], (1, k, 1)).reshape(n * k * k, self.proof_capacity)
        dead = (
            np.repeat(a["size"] < 0, k, axis=1) | np.tile(b["size"] < 0, (1, k))
        ).reshape(n * k * k)
        merged, sizes, probs = self._merger.merge_proof_arrays(pa, pb, dead)
        return self._select_top_k(
            merged.reshape(n, k * k, self.proof_capacity),
            sizes.reshape(n, k * k),
            probs.reshape(n, k * k),
        )

    def _select_top_k(
        self, proofs: np.ndarray, sizes: np.ndarray, probs: np.ndarray
    ) -> np.ndarray:
        """Per row: keep the k most likely *distinct* live proofs.

        ``proofs`` is (n, m, cap) with m candidate proofs per row.
        """
        n, m, cap = proofs.shape
        alive = sizes >= 0
        scores = np.where(alive, probs, -1.0)
        order = np.argsort(-scores, axis=1, kind="stable")
        rows = np.arange(n)[:, None]
        proofs = proofs[rows, order]
        sizes = sizes[rows, order]
        probs = probs[rows, order]
        alive = alive[rows, order]

        hashes = _hash_proofs(proofs)
        # Mark duplicates of any earlier (more likely) candidate.
        duplicate = np.zeros((n, m), dtype=bool)
        for later in range(1, m):
            for earlier in range(later):
                duplicate[:, later] |= hashes[:, later] == hashes[:, earlier]
        keep = alive & ~duplicate
        # Rank kept candidates; those with rank < k land in the output.
        rank = np.cumsum(keep, axis=1) - 1
        out = np.zeros(n, dtype=self._dtype)
        out["proof"] = PAD
        out["size"] = -1
        slot_rows, slot_cols = np.nonzero(keep & (rank < self.k))
        dest = rank[slot_rows, slot_cols]
        out["proof"][slot_rows, dest] = proofs[slot_rows, slot_cols]
        out["size"][slot_rows, dest] = sizes[slot_rows, slot_cols]
        out["prob"][slot_rows, dest] = probs[slot_rows, slot_cols]
        return out

    def oplus_reduce(self, tags, segment_ids, nseg) -> np.ndarray:
        # Pool every member's k proofs per segment, then re-select.  The
        # per-segment candidate count is unbounded, so segments are
        # processed through a padded gather: first order members by
        # probability, keep each segment's top (k * max_needed) slots.
        n = len(tags)
        if n == 0:
            return np.zeros(0, dtype=self._dtype)
        counts = np.bincount(segment_ids, minlength=nseg)
        max_members = int(counts.max()) if len(counts) else 0
        candidates = max_members * self.k
        proofs = np.full((nseg, candidates, self.proof_capacity), PAD, dtype=np.int64)
        sizes = np.full((nseg, candidates), -1, dtype=np.int64)
        probs = np.zeros((nseg, candidates))
        # Slot of each member within its segment.
        firsts = np.zeros(n, dtype=np.int64)
        firsts[1:] = segment_ids[1:] != segment_ids[:-1]
        starts = np.flatnonzero(np.concatenate([[True], segment_ids[1:] != segment_ids[:-1]]))
        member_rank = np.arange(n) - starts[np.cumsum(firsts)]
        base = member_rank * self.k
        for slot in range(self.k):
            proofs[segment_ids, base + slot] = tags["proof"][:, slot]
            sizes[segment_ids, base + slot] = tags["size"][:, slot]
            probs[segment_ids, base + slot] = tags["prob"][:, slot]
        return self._select_top_k(proofs, sizes, probs)

    def merge_existing(self, old, new):
        n = len(old)
        proofs = np.concatenate([old["proof"], new["proof"]], axis=1)
        sizes = np.concatenate([old["size"], new["size"]], axis=1)
        probs = np.concatenate([old["prob"], new["prob"]], axis=1)
        merged = self._select_top_k(proofs, sizes, probs)
        improved = ~np.all(
            (_hash_proofs(merged["proof"]) == _hash_proofs(old["proof"]))
            | (merged["size"] < 0) & (old["size"] < 0),
            axis=1,
        )
        return merged, improved

    # ------------------------------------------------------------------

    def prob(self, tags) -> np.ndarray:
        """Exact inclusion-exclusion over each tag's retained proofs."""
        n = len(tags)
        total = np.zeros(n)
        alive = tags["size"] >= 0
        union_cache: dict[frozenset, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for slot in range(self.k):
            union_cache[frozenset([slot])] = (
                tags["proof"][:, slot],
                np.where(alive[:, slot], 0, 1).astype(bool),  # dead mask
                np.where(alive[:, slot], tags["prob"][:, slot], 0.0),
            )
        for r in range(1, self.k + 1):
            sign = 1.0 if r % 2 == 1 else -1.0
            for subset in combinations(range(self.k), r):
                key = frozenset(subset)
                if key not in union_cache:
                    prefix = union_cache[frozenset(subset[:-1])]
                    last = union_cache[frozenset([subset[-1]])]
                    dead = prefix[1] | last[1]
                    merged, sizes, probs = self._merger.merge_proof_arrays(
                        prefix[0].copy(), last[0], dead
                    )
                    union_cache[key] = (merged, sizes < 0, probs)
                member_alive = np.ones(n, dtype=bool)
                for slot in subset:
                    member_alive &= alive[:, slot]
                _, dead, probs = union_cache[key]
                total += sign * np.where(member_alive & ~dead, probs, 0.0)
        return np.clip(total, 0.0, 1.0)

    def is_absorbing_zero(self, tags) -> np.ndarray:
        return (tags["size"] < 0).all(axis=1)


class DiffTopKProofsDeviceProvenance(TopKProofsDeviceProvenance):
    """Differentiable device top-k: gradients through inclusion-exclusion."""

    name = "diff-top-k-proofs-device"
    is_differentiable = True

    def backward(self, tags, grad_out, grad_in) -> None:
        n = len(tags)
        if n == 0:
            return
        alive = tags["size"] >= 0
        union_cache: dict[frozenset, tuple[np.ndarray, np.ndarray]] = {}
        for slot in range(self.k):
            union_cache[frozenset([slot])] = (
                tags["proof"][:, slot],
                ~alive[:, slot],
            )
        for r in range(1, self.k + 1):
            sign = 1.0 if r % 2 == 1 else -1.0
            for subset in combinations(range(self.k), r):
                key = frozenset(subset)
                if key not in union_cache:
                    prefix = union_cache[frozenset(subset[:-1])]
                    last = union_cache[frozenset([subset[-1]])]
                    dead = prefix[1] | last[1]
                    merged, sizes, _ = self._merger.merge_proof_arrays(
                        prefix[0].copy(), last[0], dead
                    )
                    union_cache[key] = (merged, sizes < 0)
                proofs, dead = union_cache[key]
                member_alive = np.ones(n, dtype=bool)
                for slot in subset:
                    member_alive &= alive[:, slot]
                live = member_alive & ~dead
                if not live.any():
                    continue
                valid = (proofs != PAD) & live[:, None]
                safe = np.clip(proofs, 0, max(self.n_inputs - 1, 0))
                member_probs = np.where(valid, self.input_probs[safe], 1.0)
                partials = leave_one_out_products(member_probs, valid)
                weighted = partials * (sign * grad_out)[:, None]
                np.add.at(grad_in, safe[valid], weighted[valid])

"""Fig. 13: Transitive Closure speedup over Soufflé — Lobster vs FVLog.

The paper runs TC on SNAP graphs and reports both GPU systems' speedups
over the multicore-CPU Soufflé.  Expected shape: both GPU engines beat
Soufflé consistently; Lobster generally matches or beats FVLog thanks to
APM-level optimizations (FVLog has no IR).
"""

from __future__ import annotations

import pytest

from repro import LobsterEngine
from repro.baselines import FVLogEngine, SouffleEngine
from repro.workloads.analytics import TRANSITIVE_CLOSURE
from repro.workloads.graphs import load_graph

from repro.perf.stats import geomean_ratio

from _harness import record, Measurement, print_table, report, speedup, timed

SUITE = "fig13_tc"

#: Subset of Fig. 13's graphs, ordered as in the paper.
GRAPHS = [
    "Gnu31",
    "p2p-Gnu24",
    "com-dblp",
    "p2p-Gnu25",
    "loc-Brightkite",
    "cit-HepTh",
    "usroad",
    "p2p-Gnu30",
    "SF.cedge",
    "fe-body",
    "fe-sphere",
]


# Every trial evaluates a fresh, untimed-built database: re-running a
# fixpointed db measures the warm incremental path, not Fig. 13's cold
# evaluation, and timing db construction would charge setup to the engine.

def run_lobster(edges) -> Measurement:
    def setup():
        engine = LobsterEngine(TRANSITIVE_CLOSURE, provenance="unit")
        db = engine.create_database()
        db.add_facts("edge", edges)
        return engine, db

    return timed(lambda state: state[0].run(state[1]), setup=setup)


def run_fvlog(edges) -> Measurement:
    def setup():
        engine = FVLogEngine(TRANSITIVE_CLOSURE)
        db = engine.create_database()
        db.add_facts("edge", edges)
        return engine, db

    return timed(lambda state: state[0].run(state[1]), setup=setup)


def run_souffle(edges) -> Measurement:
    def setup():
        engine = SouffleEngine(TRANSITIVE_CLOSURE)
        db = engine.create_database()
        db.setdefault("edge", set()).update(edges)
        return engine, db

    return timed(lambda state: state[0].run(state[1]), setup=setup)


@pytest.fixture(scope="module")
def results():
    rows = {}
    for name in GRAPHS:
        edges = load_graph(name)
        rows[name] = (
            len(edges),
            run_souffle(edges),
            run_lobster(edges),
            run_fvlog(edges),
        )
        n_edges, souffle, lobster, fvlog = rows[name]
        for engine, measurement in (
            ("souffle", souffle), ("lobster", lobster), ("fvlog", fvlog),
        ):
            report(
                SUITE, f"TC/{name}/{engine}", measurement,
                edges=n_edges, engine=engine,
            )
    return rows


def test_fig13_speedup_over_souffle(results, benchmark):
    def check():
        table = []
        lobster_wins = 0
        for name, (n_edges, souffle, lobster, fvlog) in results.items():
            table.append(
                [
                    name,
                    n_edges,
                    souffle.label,
                    lobster.label,
                    fvlog.label,
                    speedup(souffle, lobster),
                    speedup(souffle, fvlog),
                ]
            )
            if lobster.seconds and souffle.seconds and lobster.seconds < souffle.seconds:
                lobster_wins += 1
        print_table(
            "Fig. 13 — Transitive Closure, speedup over Souffle",
            ["graph", "|E|", "souffle", "lobster", "fvlog", "lob x", "fv x"],
            table,
        )
        # Shape: Lobster beats the CPU engine on the large majority of graphs.
        assert lobster_wins >= len(results) - 2


    record(benchmark, check)

def test_fig13_lobster_competitive_with_fvlog(results, benchmark):
    def check():
        """Lobster's IR optimizations keep it at least at FVLog's level on
        most graphs (geomean over finished runs, with the trial noise
        propagated — a typed Ratio, so unmeasurable cells are explicit)."""
        ratios = [
            speedup(fvlog, lobster)
            for (_, _, lobster, fvlog) in results.values()
        ]
        geomean = geomean_ratio(ratios)
        assert geomean.ok, "no graph finished on both engines"
        print(f"Lobster vs FVLog geomean advantage on TC: {geomean.label()}")
        assert geomean.value >= 0.9  # at worst within 10% of the no-IR engine


    record(benchmark, check)

def test_fig13_benchmark_tc_lobster(benchmark):
    edges = load_graph("fe-sphere")

    def run():
        engine = LobsterEngine(TRANSITIVE_CLOSURE, provenance="unit")
        db = engine.create_database()
        db.add_facts("edge", edges)
        engine.run(db)

    benchmark.pedantic(run, rounds=2, iterations=1)

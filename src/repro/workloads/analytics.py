"""Discrete graph-analytics workloads: Transitive Closure, Same
Generation, and CSPA (§6.1, Fig. 13, Tables 3-4).

All three mirror the FVLog/GDLog evaluations: plain Datalog over graph
EDBs with the unit provenance.  The CSPA program is the Graspan
context-sensitive value-flow grammar as used by GDLog (10 rules,
matching Table 2).
"""

from __future__ import annotations

import zlib

import numpy as np

from .graphs import Edges

TRANSITIVE_CLOSURE = """
rel path(x, y) :- edge(x, y).
rel path(x, y) :- path(x, z) and edge(z, y).
query path
"""

SAME_GENERATION = """
rel sg(x, y) :- parent(x, p), parent(y, p), x != y.
rel sg(x, y) :- parent(x, a), sg(a, b), parent(y, b).
query sg
"""

CSPA = """
rel value_flow(y, x) :- assign(y, x).
rel value_flow(x, x) :- assign(x, y).
rel value_flow(x, x) :- assign(y, x).
rel value_flow(x, y) :- assign(x, z), memory_alias(z, y).
rel value_flow(x, y) :- value_flow(x, z), value_flow(z, y).
rel memory_alias(x, w) :- dereference(y, x), value_alias(y, z), dereference(z, w).
rel memory_alias(x, x) :- assign(y, x).
rel value_alias(x, y) :- value_flow(z, x), value_flow(z, y).
rel value_alias(x, y) :- value_flow(z, x), memory_alias(z, w), value_flow(w, y).
rel value_alias(x, y) :- value_flow(z, x), value_alias(z, w), value_flow(w, y).
query value_flow
"""


def parent_edges(edges: Edges) -> Edges:
    """Same Generation treats the graph's edges as child->parent links."""
    return edges


def cspa_instance(name: str, seed: int | None = None) -> dict[str, Edges]:
    """Synthetic pointer-analysis fact base for a named program.

    ``assign`` edges form the value-flow skeleton (sparse, DAG-leaning,
    like compiler IR); ``dereference`` edges connect pointers to abstract
    memory objects.  Sizes follow the relative ordering of the paper's
    subjects (linux > postgres > httpd).
    """
    # Sizes are kept small: the value_alias component is quadratic in the
    # value-flow closure, and its footprint (not its row throughput) is the
    # binding constraint in Table 4.  Relative ordering follows the paper's
    # subjects (linux > postgres > httpd).
    sizes = {"httpd": (80, 1.4, 0.3), "linux": (105, 1.35, 0.28), "postgres": (100, 1.4, 0.3)}
    if name not in sizes:
        raise KeyError(f"unknown CSPA subject {name!r}")
    n, assign_degree, deref_fraction = sizes[name]
    if seed is None:
        seed = zlib.crc32(name.encode())  # deterministic across processes
    rng = np.random.default_rng(seed)

    n_assign = int(n * assign_degree)
    src = rng.integers(0, n, size=n_assign)
    # Bias assignments toward earlier variables: value flow in real IR is
    # mostly forward, which keeps closure sizes sane.
    dst = (src * rng.uniform(0.0, 1.0, size=n_assign)).astype(np.int64)
    assign = sorted({(int(a), int(b)) for a, b in zip(src, dst) if a != b})

    n_deref = int(n * deref_fraction)
    pointers = rng.integers(0, n, size=n_deref)
    objects = rng.integers(0, n, size=n_deref)
    dereference = sorted({(int(p), int(o)) for p, o in zip(pointers, objects)})

    return {"assign": assign, "dereference": dereference}

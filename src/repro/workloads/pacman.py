"""The PacMan-Maze task (§6.1): plan a safe path from an image of a maze.

A perception model predicts, per grid cell, the probability that the cell
is enemy-free ("safe").  The symbolic program computes which first moves
lie on a safe path from the actor to the goal — forward reachability from
the actor composed with backward reachability from the goal.  Training
uses curriculum learning (small maze first), mirrored by the benchmarks'
grid-size sweeps (Fig. 10a).

The grid is encoded with single-integer cell ids and explicit adjacency
facts, so the program is pure positive Datalog.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PROGRAM = """
type cell_id = u32
type adjacent(p: cell_id, q: cell_id)
type safe(p: cell_id)
type actor(p: cell_id)
type goal(p: cell_id)

// Forward reachability along safe cells, starting at the actor.
rel reach(p) :- actor(p).
rel reach(q) :- reach(p), adjacent(p, q), safe(q).

// Backward reachability: cells from which the goal is attainable.
rel back(p) :- goal(p).
rel back(p) :- adjacent(p, q), back(q), safe(p).

// The maze is solvable iff the goal is forward-reachable.
rel success() :- reach(p), goal(p).

// A good first move is a safe neighbour of the actor that still reaches
// the goal.
rel good_move(q) :- actor(p), adjacent(p, q), safe(q), back(q).
query good_move
"""

FEATURE_DIM = 6


@dataclass
class MazeInstance:
    grid: int
    adjacency: list[tuple[int, int]]
    enemy: np.ndarray  # bool per cell
    actor: int
    goal: int
    cell_features: np.ndarray  # (cells, FEATURE_DIM)
    optimal_first_moves: set[int]


def grid_adjacency(grid: int) -> list[tuple[int, int]]:
    edges: list[tuple[int, int]] = []
    for x in range(grid):
        for y in range(grid):
            cell = x * grid + y
            if x + 1 < grid:
                edges.append((cell, cell + grid))
                edges.append((cell + grid, cell))
            if y + 1 < grid:
                edges.append((cell, cell + 1))
                edges.append((cell + 1, cell))
    return edges


def generate_instance(grid: int, seed: int, enemy_density: float = 0.18) -> MazeInstance:
    """A maze guaranteed solvable: enemies never block a reserved corridor."""
    rng = np.random.default_rng(seed)
    cells = grid * grid
    actor, goal = 0, cells - 1

    # Reserve a monotone staircase corridor, then sprinkle enemies.
    corridor: set[int] = set()
    x = y = 0
    corridor.add(0)
    while (x, y) != (grid - 1, grid - 1):
        if x < grid - 1 and (y == grid - 1 or rng.random() < 0.5):
            x += 1
        else:
            y += 1
        corridor.add(x * grid + y)

    enemy = rng.random(cells) < enemy_density
    enemy[list(corridor)] = False
    enemy[[actor, goal]] = False

    features = rng.normal(0.0, 1.0, size=(cells, FEATURE_DIM))
    features[enemy, 0] += 2.0
    features[enemy, 1] += 1.0

    moves = _optimal_first_moves(grid, enemy, actor, goal)
    return MazeInstance(grid, grid_adjacency(grid), enemy, actor, goal, features, moves)


def _optimal_first_moves(grid: int, enemy: np.ndarray, actor: int, goal: int) -> set[int]:
    """Ground truth via BFS over enemy-free cells."""
    from collections import deque

    cells = grid * grid
    safe = ~enemy
    adjacency: dict[int, list[int]] = {c: [] for c in range(cells)}
    for a, b in grid_adjacency(grid):
        adjacency[a].append(b)

    def reachable_from(start: int) -> set[int]:
        if not safe[start]:
            return set()
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for nxt in adjacency[node]:
                if safe[nxt] and nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    to_goal = reachable_from(goal)
    return {n for n in adjacency[actor] if safe[n] and n in to_goal}


def pretrained_safety_probs(
    instance: MazeInstance, noise: float = 0.08, seed: int = 0
) -> np.ndarray:
    """Simulated converged enemy detector: P(cell is safe)."""
    rng = np.random.default_rng(seed)
    logits = np.where(instance.enemy, -3.0, 3.0)
    logits = logits + rng.normal(0.0, noise * 6.0, size=len(logits))
    return 1.0 / (1.0 + np.exp(-logits))


def populate_database(database, instance: MazeInstance, safety_probs: np.ndarray):
    """Load one maze; returns the safety fact ids (the differentiable
    inputs)."""
    cells = [(c,) for c in range(instance.grid * instance.grid)]
    ids = database.add_facts("safe", cells, probs=list(safety_probs))
    database.add_facts("adjacent", instance.adjacency)
    database.add_facts("actor", [(instance.actor,)])
    database.add_facts("goal", [(instance.goal,)])
    return ids


def make_dataset(grid: int, n_samples: int, seed: int = 0) -> list[MazeInstance]:
    return [generate_instance(grid, seed * 7919 + i) for i in range(n_samples)]

"""Sharded multi-device execution (the scale-out layer).

Five pieces compose the subsystem:

* :mod:`~repro.dist.partition` — deterministic hash ownership of rows:
  the classic :class:`HashPartitioner` and its skew-aware
  generalization :class:`ShardMap` (per-predicate key columns, hot-key
  split overrides);
* :mod:`~repro.dist.exchange` — shuffle/all-gather collectives that
  re-partition per-iteration deltas and charge the device cost model for
  every cross-device byte (:class:`ExchangeOperator`);
* :mod:`~repro.dist.executor` — the sharded semi-naive loop
  (:class:`ShardedExecutor`), reached via ``LobsterEngine(shards=N)``,
  including mid-run re-homing onto a new shard set
  (:meth:`ShardedExecutor.apply_reshard`);
* :mod:`~repro.dist.reshard` — the cost-gated :class:`ReshardPlanner`
  that prices a stats-driven repartition (migration bytes vs. modeled
  payback) and only migrates when payback beats shuffle cost;
* :mod:`~repro.dist.pool` — round-robin device pools for throughput
  serving of independent session queries (:class:`DevicePool`).
"""

from .exchange import ExchangeOperator
from .executor import ShardedExecutor, ShardView
from .partition import HashPartitioner, ShardMap, hash_rows, reduce_hashes
from .pool import DevicePool
from .reshard import RelationLoad, ReshardPlan, ReshardPlanner

__all__ = [
    "DevicePool",
    "ExchangeOperator",
    "HashPartitioner",
    "RelationLoad",
    "ReshardPlan",
    "ReshardPlanner",
    "ShardMap",
    "ShardView",
    "ShardedExecutor",
    "hash_rows",
    "reduce_hashes",
]

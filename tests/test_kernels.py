"""Unit + property tests for the data-parallel kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import kernels

ints = st.integers(min_value=-50, max_value=50)


class TestExclusiveScan:
    def test_empty(self):
        assert len(kernels.exclusive_scan(np.zeros(0, dtype=np.int64))) == 0

    def test_basic(self):
        out = kernels.exclusive_scan(np.array([3, 1, 4, 1]))
        assert out.tolist() == [0, 3, 4, 8]

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=50))
    def test_matches_cumsum(self, values):
        arr = np.array(values, dtype=np.int64)
        out = kernels.exclusive_scan(arr)
        expected = np.concatenate([[0], np.cumsum(arr)[:-1]]) if len(arr) else arr
        assert np.array_equal(out, expected)


class TestSortAndUnique:
    def test_sort_rows_lexicographic(self):
        cols = [np.array([2, 1, 1]), np.array([0, 5, 3])]
        sorted_cols, order = kernels.sort_rows(cols)
        assert list(zip(*[c.tolist() for c in sorted_cols])) == [(1, 3), (1, 5), (2, 0)]
        assert order.tolist() == [2, 1, 0]

    @given(st.lists(st.tuples(ints, ints), min_size=0, max_size=60))
    def test_unique_rows_matches_set(self, rows):
        cols = (
            [np.array([r[0] for r in rows]), np.array([r[1] for r in rows])]
            if rows
            else [np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)]
        )
        sorted_cols, _ = kernels.sort_rows(cols)
        unique_cols, segment_ids, firsts = kernels.unique_rows(sorted_cols)
        got = set(zip(*[c.tolist() for c in unique_cols])) if rows else set()
        assert got == set(rows)
        # Segment ids are dense, ascending, and map rows to their group.
        if rows:
            assert segment_ids[0] == 0
            assert segment_ids[-1] == len(got) - 1
            assert (np.diff(segment_ids) >= 0).all()

    def test_merge_sorted(self):
        left = [np.array([1, 3])]
        right = [np.array([2, 4])]
        merged, order = kernels.merge_sorted(left, right)
        assert merged[0].tolist() == [1, 2, 3, 4]
        assert order.tolist() == [0, 2, 1, 3]


class TestSegmentReductions:
    def test_segment_reduce_max(self):
        values = np.array([1.0, 5.0, 2.0, 7.0])
        seg = np.array([0, 0, 1, 1])
        assert kernels.segment_reduce_max(values, seg, 2).tolist() == [5.0, 7.0]

    def test_segment_reduce_sum(self):
        values = np.array([1.0, 5.0, 2.0, 7.0])
        seg = np.array([0, 0, 1, 1])
        assert kernels.segment_reduce_sum(values, seg, 2).tolist() == [6.0, 9.0]

    def test_segment_argmax_ties_take_earliest(self):
        values = np.array([3.0, 3.0, 1.0, 2.0])
        seg = np.array([0, 0, 1, 1])
        assert kernels.segment_argmax(values, seg, 2).tolist() == [0, 3]

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.floats(0, 1, allow_nan=False)),
            min_size=1,
            max_size=40,
        )
    )
    def test_segment_argmax_property(self, pairs):
        pairs.sort(key=lambda p: p[0])
        seg_raw = np.array([p[0] for p in pairs])
        # densify segment ids
        _, seg = np.unique(seg_raw, return_inverse=True)
        values = np.array([p[1] for p in pairs])
        nseg = seg.max() + 1
        winners = kernels.segment_argmax(values, seg, nseg)
        for s in range(nseg):
            members = np.flatnonzero(seg == s)
            assert values[winners[s]] == values[members].max()


class TestRepeatRanges:
    def test_expand(self):
        counts = np.array([2, 0, 3])
        offsets = kernels.exclusive_scan(counts)
        row_ids, ranks = kernels.repeat_ranges(counts, offsets)
        assert row_ids.tolist() == [0, 0, 2, 2, 2]
        assert ranks.tolist() == [0, 1, 0, 1, 2]

    def test_empty(self):
        row_ids, ranks = kernels.repeat_ranges(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert len(row_ids) == 0 and len(ranks) == 0


class TestHashColumns:
    def test_deterministic(self):
        cols = [np.array([1, 2, 3]), np.array([4, 5, 6])]
        a = kernels.hash_columns(cols, 2)
        b = kernels.hash_columns(cols, 2)
        assert np.array_equal(a, b)

    def test_width_zero(self):
        cols = [np.array([1, 2, 3])]
        assert kernels.hash_columns(cols, 0).tolist() == [0, 0, 0]

    def test_distinguishes_columns(self):
        a = kernels.hash_columns([np.array([1]), np.array([2])], 2)
        b = kernels.hash_columns([np.array([2]), np.array([1])], 2)
        assert a[0] != b[0]

    def test_float_columns_hashable(self):
        out = kernels.hash_columns([np.array([1.5, 2.5])], 1)
        assert len(out) == 2 and out[0] != out[1]


class TestCompact:
    def test_compact(self):
        mask = np.array([True, False, True])
        cols = kernels.compact(mask, [np.array([10, 20, 30])])
        assert cols[0].tolist() == [10, 30]

"""Predicate stratification.

Computes the condensation of the predicate dependency graph; each strongly
connected component becomes one stratum (executed as a fix-point loop,
§3.4), and strata run in topological order.  Negation inside an SCC is
rejected — the program would not be stratified.
"""

from __future__ import annotations

from ..errors import StratificationError


def stratify(
    heads: list[str],
    dependencies: list[tuple[str, str, bool]],
) -> list[list[str]]:
    """Order predicates into strata.

    Parameters
    ----------
    heads:
        All predicates defined by rules (IDB predicates).
    dependencies:
        ``(body_pred, head_pred, negated)`` edges.

    Returns
    -------
    A list of strata; each stratum is a list of IDB predicate names.
    """
    idb = set(heads)
    graph: dict[str, set[str]] = {p: set() for p in idb}
    negated_edges: set[tuple[str, str]] = set()
    for body_pred, head_pred, negated in dependencies:
        if body_pred in idb and head_pred in idb:
            graph[body_pred].add(head_pred)
            if negated:
                negated_edges.add((body_pred, head_pred))

    sccs = _tarjan(graph)

    # Reject negation within a component.
    component_of: dict[str, int] = {}
    for index, component in enumerate(sccs):
        for pred in component:
            component_of[pred] = index
    for body_pred, head_pred in negated_edges:
        if component_of[body_pred] == component_of[head_pred]:
            raise StratificationError(
                f"negation cycle through {body_pred!r} and {head_pred!r}"
            )

    # Tarjan emits components in reverse topological order of the
    # condensation (for edges body -> head, dependencies come last), so
    # reversing yields execution order.
    return [sorted(component) for component in reversed(sccs)]


def _tarjan(graph: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan SCC; deterministic given sorted adjacency."""
    index_counter = 0
    indices: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[list[str]] = []

    for root in sorted(graph):
        if root in indices:
            continue
        work: list[tuple[str, iter]] = [(root, iter(sorted(graph[root])))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in indices:
                    indices[child] = lowlink[child] = index_counter
                    index_counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result

"""Multi-query serving sessions (compile once, run many).

A :class:`LobsterSession` batches independent databases through **one**
compiled program on **one** shared :class:`~repro.gpu.device.VirtualDevice`.
Relative to constructing and running engines per query, the session
amortizes every one-time cost the device profile models:

* the program is compiled (or fetched from the program cache) exactly
  once, before the first query;
* the host<->device transfer *plan* is computed once per program (memoized
  in :mod:`repro.apm.schedule`);
* allocation sites stay warm across queries — one shared
  :class:`~repro.apm.interpreter.ApmInterpreter` retains its allocation
  sites, so after the first database the arena hands back the previous
  query's buffers instead of paying the simulated allocation latency.

Example
-------
>>> from repro import LobsterEngine, LobsterSession
>>> engine = LobsterEngine(
...     "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."
... )
>>> session = LobsterSession(engine)
>>> for edges in ([(0, 1)], [(1, 2)], [(0, 2), (2, 3)]):
...     db = session.create_database()
...     _ = db.add_facts("edge", edges)
...     _ = session.submit(db)
>>> report = session.run_all()
>>> len(report.results)
3
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .database import Database
from .engine import ExecutionResult, LobsterEngine
from ..apm.interpreter import ApmInterpreter
from ..errors import LobsterError
from ..gpu.device import DeviceProfile


@dataclass
class SubmittedQuery:
    """One enqueued unit of work: a database awaiting (or holding) a run."""

    ticket: int
    database: Database
    result: ExecutionResult | None = None


@dataclass
class SessionReport:
    """Aggregate outcome of one :meth:`LobsterSession.run_all` drain.

    Separates the one-time compile cost from steady-state execution, the
    SPEC CPU2026-style split every benchmark's warm-path mode reports.
    """

    #: One-time front-end cost (0.0 when the program cache already held
    #: the artifact).
    compile_seconds: float
    #: Whether the engine's program was served from the cache.
    program_from_cache: bool
    #: Per-query results, in submission order, for this drain.
    results: list[ExecutionResult] = field(default_factory=list)
    #: Device counters accumulated across the whole drain.
    profile: DeviceProfile | None = None

    @property
    def steady_state_seconds(self) -> float:
        """Measured wall time summed over the drained queries."""
        return sum(result.wall_seconds for result in self.results)

    @property
    def modeled_overhead_seconds(self) -> float:
        return sum(result.simulated_overhead_seconds for result in self.results)

    @property
    def total_seconds(self) -> float:
        return (
            self.compile_seconds
            + self.steady_state_seconds
            + self.modeled_overhead_seconds
        )


class LobsterSession:
    """Serve many independent databases through one compiled program."""

    def __init__(self, engine: LobsterEngine):
        self.engine = engine
        self._queries: list[SubmittedQuery] = []
        self._next_ticket = 0
        # One interpreter for the whole session: allocation sites stay
        # warm across queries (buffer reuse across the batch); data-
        # dependent state (static hash indices) still resets per stratum.
        self._interpreter = ApmInterpreter(
            engine.device,
            enable_static_reuse=engine.optimizations.static_indices,
            enable_buffer_reuse=engine.optimizations.buffer_reuse,
            enable_stratum_scheduling=engine.optimizations.stratum_scheduling,
            max_iterations=engine.max_iterations,
            retain_allocation_sites=engine.optimizations.buffer_reuse,
        )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queries)

    @property
    def pending(self) -> list[SubmittedQuery]:
        return [query for query in self._queries if query.result is None]

    def create_database(self) -> Database:
        """A fresh database for this session's program (convenience
        passthrough to the engine)."""
        return self.engine.create_database()

    def submit(self, database: Database | None = None) -> int:
        """Enqueue ``database`` (or a fresh one) and return its ticket."""
        if database is None:
            database = self.engine.create_database()
        ticket = self._next_ticket
        self._next_ticket += 1
        self._queries.append(SubmittedQuery(ticket, database))
        return ticket

    def database(self, ticket: int) -> Database:
        return self._query(ticket).database

    def result(self, ticket: int) -> ExecutionResult:
        """The ticket's execution result; raises if it has not run yet."""
        result = self._query(ticket).result
        if result is None:
            raise LobsterError(f"ticket {ticket} has not been run yet")
        return result

    def _query(self, ticket: int) -> SubmittedQuery:
        for query in self._queries:
            if query.ticket == ticket:
                return query
        raise LobsterError(f"unknown session ticket {ticket}")

    # ------------------------------------------------------------------

    def run_all(self) -> SessionReport:
        """Drain the queue: run every pending database to fix point.

        Databases run back-to-back on the shared device without resetting
        it, so the batch amortizes allocations; the per-query results
        still carry per-run profiles (computed from counter snapshots).
        Already-evaluated databases with pending facts take the
        incremental path exactly as :meth:`LobsterEngine.run` would.
        """
        device = self.engine.device
        device.profile.reset()
        before = device.profile.snapshot()
        report = SessionReport(
            compile_seconds=self.engine.compile_seconds,
            program_from_cache=self.engine.cache_hit,
        )
        for query in self._queries:
            if query.result is not None:
                continue
            query.result = self.engine.run(
                query.database,
                reset_profile=False,
                _interpreter=self._interpreter,
            )
            report.results.append(query.result)
        report.profile = device.profile.since(before)
        return report

"""Columnar Table and Database layer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ResolutionError
from repro.interning import SymbolTable
from repro.provenance import create
from repro.runtime.database import Database
from repro.runtime.table import Table

INT2 = (np.dtype(np.int64), np.dtype(np.int64))


def unit_provenance():
    provenance = create("unit")
    provenance.setup(np.zeros(0))
    return provenance


class TestTable:
    def test_from_rows(self):
        provenance = unit_provenance()
        table = Table.from_rows([(1, 2), (3, 4)], INT2, provenance.one_tags(2))
        assert table.n_rows == 2 and table.arity == 2
        assert table.rows() == [(1, 2), (3, 4)]

    def test_empty(self):
        table = Table.empty(INT2, unit_provenance())
        assert table.is_empty() and table.arity == 2

    def test_from_rows_empty_and_mixed_dtypes(self):
        provenance = unit_provenance()
        empty = Table.from_rows([], INT2, provenance.one_tags(0))
        assert empty.is_empty() and empty.arity == 2
        mixed = Table.from_rows(
            [(1, 0.5), (2, 1.5)],
            (np.dtype(np.int64), np.dtype(np.float64)),
            provenance.one_tags(2),
        )
        assert mixed.rows() == [(1, 0.5), (2, 1.5)]
        assert mixed.columns[0].dtype == np.int64
        assert mixed.columns[1].dtype == np.float64

    def test_from_rows_vectorized_beats_per_cell_loop(self):
        """Micro-benchmark: the per-column ``np.fromiter`` construction
        must beat the historical per-cell Python double loop.  Best-of-3
        each, and only a >= 1.2x bar, so scheduler noise cannot flake the
        assertion while a regression back to per-cell writes still fails.
        """
        import time

        def naive(rows, dtypes):
            columns = [np.empty(len(rows), dtype=dt) for dt in dtypes]
            for j in range(len(dtypes)):
                for i, row in enumerate(rows):
                    columns[j][i] = row[j]
            return columns

        provenance = unit_provenance()
        rows = [(i, i * 2, i % 7) for i in range(120_000)]
        dtypes = (np.dtype(np.int64),) * 3
        tags = provenance.one_tags(len(rows))

        def best_of(fn, n=3):
            times = []
            for _ in range(n):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        fast = best_of(lambda: Table.from_rows(rows, dtypes, tags))
        slow = best_of(lambda: naive(rows, dtypes))
        assert fast * 1.2 < slow, (
            f"vectorized from_rows ({fast:.4f}s) should beat the "
            f"per-cell loop ({slow:.4f}s)"
        )
        # And it still builds the same table.
        table = Table.from_rows(rows[:5], dtypes, provenance.one_tags(5))
        assert table.rows() == rows[:5]

    def test_take(self):
        provenance = unit_provenance()
        table = Table.from_rows([(1, 2), (3, 4), (5, 6)], INT2, provenance.one_tags(3))
        taken = table.take(np.array([2, 0]))
        assert taken.rows() == [(5, 6), (1, 2)]

    def test_concat(self):
        provenance = unit_provenance()
        a = Table.from_rows([(1, 2)], INT2, provenance.one_tags(1))
        b = Table.from_rows([(3, 4)], INT2, provenance.one_tags(1))
        merged = Table.concat([a, b], INT2, provenance)
        assert merged.rows() == [(1, 2), (3, 4)]

    def test_concat_empty_list(self):
        merged = Table.concat([], INT2, unit_provenance())
        assert merged.is_empty()

    def test_nbytes(self):
        provenance = unit_provenance()
        table = Table.from_rows([(1, 2)], INT2, provenance.one_tags(1))
        assert table.nbytes() == 16 + 1  # two int64 + one unit tag

    def test_float_columns(self):
        provenance = unit_provenance()
        dtypes = (np.dtype(np.float64),)
        table = Table.from_rows([(1.5,), (2.5,)], dtypes, provenance.one_tags(2))
        assert table.rows() == [(1.5,), (2.5,)]


class TestDatabase:
    def make(self):
        return Database({"edge": INT2}, create("minmaxprob"))

    def test_fact_ids_contiguous(self):
        db = self.make()
        first = db.add_facts("edge", [(0, 1), (1, 2)], probs=[0.5, 0.6])
        second = db.add_facts("edge", [(2, 3)], probs=[0.7])
        assert first.tolist() == [0, 1]
        assert second.tolist() == [2]

    def test_discrete_facts_get_minus_one(self):
        db = self.make()
        ids = db.add_facts("edge", [(0, 1)])
        assert ids.tolist() == [-1]

    def test_exclusive_group_assignment(self):
        db = self.make()
        db.add_facts("edge", [(0, 1), (0, 2)], probs=[0.5, 0.5], exclusive=True)
        db.add_facts("edge", [(1, 2)], probs=[0.9])
        db.finalize()
        assert db.exclusion_groups.tolist() == [0, 0, -1]

    def test_shared_group_across_calls(self):
        db = self.make()
        group = db.new_exclusion_group()
        db.add_facts("edge", [(0, 1)], probs=[0.5], group=group)
        db.add_facts("edge", [(0, 2)], probs=[0.5], group=group)
        db.finalize()
        assert db.exclusion_groups.tolist() == [group, group]

    def test_finalize_binds_provenance(self):
        db = self.make()
        db.add_facts("edge", [(0, 1)], probs=[0.25])
        db.finalize()
        assert db.provenance.input_probs.tolist() == [0.25]
        table = db.result("edge")
        assert db.provenance.prob(table.tags).tolist() == [0.25]

    def test_add_after_finalize_marks_pending_delta(self):
        db = self.make()
        db.add_facts("edge", [(0, 1)])
        db.finalize()
        assert not db.has_pending_facts
        db.add_facts("edge", [(1, 2)])
        assert db.has_pending_facts
        db.finalize()  # folds the delta into the stored relation
        assert not db.has_pending_facts
        assert sorted(db.result("edge").rows()) == [(0, 1), (1, 2)]
        assert db.relation("edge").n_recent() == 1  # only the new row

    def test_unknown_relation_rejected(self):
        db = self.make()
        with pytest.raises(ResolutionError):
            db.relation("nope")

    def test_schema_inference_for_new_relations(self):
        db = self.make()
        db.add_facts("score", [(1, 0.5)])
        assert db.schemas["score"] == (np.dtype(np.int64), np.dtype(np.float64))

    def test_probs_length_mismatch(self):
        db = self.make()
        with pytest.raises(ValueError):
            db.add_facts("edge", [(0, 1)], probs=[0.5, 0.6])

    def test_duplicate_input_facts_oplus(self):
        db = self.make()
        db.add_facts("edge", [(0, 1), (0, 1)], probs=[0.3, 0.8])
        db.finalize()
        rows, probs = db.result_probs("edge")
        assert rows == [(0, 1)]
        assert probs[0] == pytest.approx(0.8)  # minmaxprob oplus = max


class TestSymbolTable:
    def test_roundtrip(self):
        table = SymbolTable()
        a = table.intern("alice")
        b = table.intern("bob")
        assert table.intern("alice") == a
        assert table.lookup(b) == "bob"
        assert "alice" in table and len(table) == 2

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            SymbolTable().lookup(0)

    def test_iteration_order(self):
        table = SymbolTable(["x", "y"])
        assert list(table) == ["x", "y"]
        assert table.id_of("y") == 1

    def test_intern_all(self):
        table = SymbolTable()
        assert table.intern_all(["a", "b", "a"]) == [0, 1, 0]

"""Optimizers: SGD with momentum and Adam."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


class Optimizer:
    def __init__(self, params: list[Tensor]):
        self.params = list(params)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, params: list[Tensor], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data += velocity


class Adam(Optimizer):
    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

"""Provenance semiring framework.

The paper's seven device semirings (unit, minmaxprob, addmultprob,
prob-top-1-proofs, and the three differentiable variants), the CPU-only
general top-k-proofs used by the Scallop baseline, and this repo's §3.5
extension: vectorized top-k-proofs on the device.
"""

from .addmultprob import AddMultProbProvenance
from .base import SATURATION_EPS, Provenance
from .diff_addmultprob import DiffAddMultProbProvenance
from .diff_minmaxprob import DiffMinMaxProbProvenance
from .diff_top1proof import DiffTop1ProofProvenance
from .minmaxprob import MinMaxProbProvenance
from .registry import available, create, register
from .top1proof import Top1ProofProvenance
from .topk_device import DiffTopKProofsDeviceProvenance, TopKProofsDeviceProvenance
from .topkproofs import TopKProofsProvenance
from .unit import UnitProvenance

__all__ = [
    "AddMultProbProvenance",
    "DiffAddMultProbProvenance",
    "DiffMinMaxProbProvenance",
    "DiffTop1ProofProvenance",
    "DiffTopKProofsDeviceProvenance",
    "MinMaxProbProvenance",
    "Provenance",
    "SATURATION_EPS",
    "Top1ProofProvenance",
    "TopKProofsDeviceProvenance",
    "TopKProofsProvenance",
    "UnitProvenance",
    "available",
    "create",
    "register",
]

"""Chrome trace-event / Perfetto JSON export for collected spans.

The output is the classic trace-event JSON object format —
``{"traceEvents": [...]}`` with complete events (``ph: "X"``), instants
(``ph: "i"``), and thread-name metadata (``ph: "M"``) — which both
``chrome://tracing`` and https://ui.perfetto.dev open directly.

Timestamps are the spans' *modeled* seconds converted to integer-ish
microseconds; nothing host-clock-derived enters the file, and the
serializer sorts keys and orders events deterministically, so two
same-seed runs export byte-identical JSON (the bench_obs gate).

Tracks become threads: each distinct ``Span.track`` gets a ``tid`` in
sorted-name order, announced by a ``thread_name`` metadata event, so
per-device, per-shard, and per-request lanes render as parallel rows.
"""

from __future__ import annotations

import json

from .tracer import Span

__all__ = [
    "dumps_trace_events",
    "export_perfetto",
    "to_trace_events",
    "validate_trace_events",
]

_PID = 1
#: Modeled-seconds -> trace microseconds.  Floats survive round-trip
#: (Perfetto accepts fractional us), so no precision is invented or lost.
_US = 1e6


def _category(span: Span) -> str:
    """Trace-event category: the subsystem prefix of the span name
    (``serve.request`` -> ``serve``), or the kind for bare names."""
    head, dot, _ = span.name.partition(".")
    return head if dot else span.kind


def to_trace_events(spans: list[Span], *, pid: int = _PID) -> dict:
    """Lower spans to a trace-event JSON object (a plain dict)."""
    tracks = sorted({span.track for span in spans})
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    events: list[dict] = []
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    # Spans export in collection order (already deterministic); sorting
    # at read time is the viewer's job, and keeping creation order makes
    # the JSON diffable against the span list.
    for span in spans:
        args = {
            "span_id": span.span_id,
            "trace_id": span.trace_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key in sorted(span.attrs):
            args[key] = span.attrs[key]
        event = {
            "pid": pid,
            "tid": tids[span.track],
            "name": span.name,
            "cat": _category(span),
            "ts": span.start_s * _US,
            "args": args,
        }
        if span.kind == "instant":
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            end = span.end_s if span.end_s is not None else span.start_s
            event["dur"] = (end - span.start_s) * _US
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dumps_trace_events(spans: list[Span]) -> str:
    """Deterministic serialization: sorted keys, fixed separators."""
    return json.dumps(to_trace_events(spans), sort_keys=True, separators=(",", ":"))


def export_perfetto(spans: list[Span], path) -> dict:
    """Write the trace-event JSON to ``path``; returns the object."""
    obj = to_trace_events(spans)
    with open(path, "w") as handle:
        handle.write(json.dumps(obj, sort_keys=True, separators=(",", ":")))
        handle.write("\n")
    return obj


# ---------------------------------------------------------------------
# Schema validation (the CI trace-smoke gate).

_PHASES = {"X", "i", "M"}
#: Containment tolerance in trace microseconds (1 modeled nanosecond):
#: parent and child endpoints are computed by differently-associated
#: float sums of the same device counters, so the last ulps may differ.
_EPS = 1e-3


def validate_trace_events(obj: dict) -> int:
    """Check ``obj`` against the trace-event schema; returns the number
    of events, raises ``ValueError`` on the first violation.

    Beyond field shapes, this enforces the structural invariants the
    profiler relies on: every ``parent_id`` resolves to an exported
    span, and every child's interval lies inside its parent's — the
    span tree really is a tree over the modeled timeline.
    """
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        raise ValueError("top level must be an object with a traceEvents list")
    events = obj["traceEvents"]
    intervals: dict[str, tuple[float, float]] = {}
    parents: list[tuple[str, str]] = []
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ValueError(f"{where}: ph must be one of {sorted(_PHASES)}, got {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"{where}: {field} must be an int")
        if not isinstance(event.get("args"), dict):
            raise ValueError(f"{where}: args must be an object")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < -_EPS:
            raise ValueError(f"{where}: ts must be a non-negative number, got {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < -_EPS:
                raise ValueError(f"{where}: dur must be a non-negative number")
            end = ts + dur
        else:  # instant
            if event.get("s") not in {"t", "p", "g"}:
                raise ValueError(f"{where}: instant events need a scope 's'")
            end = ts
        span_id = event["args"].get("span_id")
        if not isinstance(span_id, str):
            raise ValueError(f"{where}: args.span_id must be a string")
        if span_id in intervals:
            raise ValueError(f"{where}: duplicate span_id {span_id}")
        intervals[span_id] = (ts, end)
        parent_id = event["args"].get("parent_id")
        if parent_id is not None:
            parents.append((span_id, parent_id))
    for span_id, parent_id in parents:
        if parent_id not in intervals:
            raise ValueError(f"span {span_id}: parent_id {parent_id} not exported")
        start, end = intervals[span_id]
        pstart, pend = intervals[parent_id]
        if start < pstart - _EPS or end > pend + _EPS:
            raise ValueError(
                f"span {span_id} [{start}, {end}] escapes parent "
                f"{parent_id} [{pstart}, {pend}]"
            )
    return len(events)

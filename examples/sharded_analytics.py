"""Scale-out quickstart: one query across shards, many queries across a pool.

Two independent scaling axes, both driven by the same device cost model:

* ``LobsterEngine(shards=N)`` — *latency*: one transitive closure is
  hash-partitioned across N virtual devices; results are identical to a
  single-device run, and the modeled makespan (busiest shard) falls as
  shards absorb the frontier, until exchange traffic pushes back.
* ``LobsterSession(engine, pool=DevicePool(N))`` — *throughput*:
  independent queries round-robin across pool devices, and the session
  report aggregates the per-device profiles counter-wise.
"""

from __future__ import annotations

import numpy as np

from repro import DevicePool, LobsterEngine, LobsterSession
from repro.workloads.analytics import TRANSITIVE_CLOSURE
from repro.workloads.graphs import road_grid


def strong_scaling() -> None:
    edges = road_grid(22, seed=3)
    print(f"Transitive closure over a {len(edges)}-edge road grid")
    print(f"{'shards':>7}  {'rows':>7}  {'sim makespan':>13}  {'exchange':>9}")
    for shards in (1, 2, 4):
        engine = LobsterEngine(TRANSITIVE_CLOSURE, provenance="unit", shards=shards)
        db = engine.create_database()
        db.add_facts("edge", edges)
        result = engine.run(db)
        print(
            f"{shards:>7}  {db.result('path').n_rows:>7}  "
            f"{result.simulated_parallel_seconds * 1e3:>11.3f}ms  "
            f"{result.profile.exchange_seconds * 1e3:>7.3f}ms"
        )


def pooled_serving() -> None:
    rng = np.random.default_rng(12)
    queries = [
        sorted({(int(a), int(b)) for a, b in rng.integers(0, 60, size=(180, 2)) if a != b})
        for _ in range(6)
    ]
    engine = LobsterEngine(TRANSITIVE_CLOSURE, provenance="unit")
    session = LobsterSession(engine, pool=DevicePool(3))
    for edges in queries:
        db = session.create_database()
        db.add_facts("edge", edges)
        session.submit(db)
    report = session.run_all()
    print(f"\nServed {len(report.results)} queries over {report.pool_size} devices")
    print(
        f"  sequential device time: {report.profile.busy_seconds * 1e3:.3f}ms, "
        f"pooled makespan: {report.simulated_parallel_seconds * 1e3:.3f}ms"
    )
    per_device = ", ".join(
        f"{profile.busy_seconds * 1e3:.3f}ms" for profile in report.device_profiles
    )
    print(f"  per-device busy time: {per_device}")


if __name__ == "__main__":
    strong_scaling()
    pooled_serving()

"""The FVLog baseline: GPU Datalog without an IR (§6.2, Fig. 13).

FVLog is the latest GPU-accelerated *discrete* Datalog engine.  Two
characteristics distinguish it from Lobster and are reproduced here:

* **no user-facing front-end or query planner** — FVLog programs are
  hand-written relational algebra.  :meth:`FVLogEngine.from_ram` accepts a
  RAM program directly; the convenience Datalog constructor exists purely
  so benchmarks can hand both systems identical logic.
* **no IR, hence no IR-level optimizations** — the Fig. 13/Table 3
  comparison attributes Lobster's edge to APM's optimization passes, so
  this engine runs the same vectorized kernels with every APM-level
  optimization disabled (no buffer reuse, no static hash-index reuse, no
  stratum scheduling, no DCE/fusion passes).

Only the unit provenance is supported, matching FVLog's discrete-only
feature set.
"""

from __future__ import annotations

from ..errors import LobsterError
from ..gpu.device import VirtualDevice
from ..runtime.engine import ExecutionResult, LobsterEngine, OptimizationConfig


class FVLogEngine(LobsterEngine):
    """Discrete-only vectorized engine with all IR optimizations off."""

    def __init__(
        self,
        source: str,
        device: VirtualDevice | None = None,
        max_iterations: int = 100_000,
    ):
        device = device or VirtualDevice(reuse_buffers=False)
        super().__init__(
            source,
            provenance="unit",
            device=device,
            optimizations=OptimizationConfig.none(),
            max_iterations=max_iterations,
        )

    def run(self, database) -> ExecutionResult:
        if database.provenance.name != "unit":
            raise LobsterError("FVLog supports discrete reasoning only")
        return super().run(database)

"""The ``top-1-proof`` semiring (§3.5).

Each tag carries *one* conjunction of input-fact ids — the most likely
proof of the fact — plus its probability.  Disjunction keeps the more
likely proof; conjunction merges the two proofs, deduplicates, and zeroes
the result on a mutual-exclusion conflict or proof-capacity overflow.

The paper fixes the maximum proof size statically (they use 300; we default
to 64, configurable) so tags occupy fixed-size vector registers — the key
property that lets proofs live on the device.

Exclusion-group conflict detection relies on the runtime's guarantee that
facts within one exclusion group receive *contiguous* fact ids, so after
sorting a proof by fact id, conflicting facts are adjacent.
"""

from __future__ import annotations

import numpy as np

from .base import SATURATION_EPS, Provenance
from ..gpu.kernels import segment_argmax

#: Sentinel for empty proof slots; sorts after any real fact id.
PAD = np.int64(2**62)

DEFAULT_PROOF_CAPACITY = 64


class Top1ProofProvenance(Provenance):
    """Probabilistic reasoning tracking a single most-likely proof."""

    name = "prob-top-1-proofs"
    idempotent_oplus = True  # ⊕ keeps the single most likely proof

    def __init__(self, proof_capacity: int = DEFAULT_PROOF_CAPACITY):
        super().__init__()
        self.proof_capacity = int(proof_capacity)
        self._dtype = np.dtype(
            [("prob", "f8"), ("size", "i8"), ("proof", "i8", (self.proof_capacity,))]
        )

    # ------------------------------------------------------------------

    def tag_dtype(self) -> np.dtype:
        return self._dtype

    def one_tags(self, n: int) -> np.ndarray:
        out = np.zeros(n, dtype=self._dtype)
        out["prob"] = 1.0
        out["proof"] = PAD
        return out

    def zero_tags(self, n: int) -> np.ndarray:
        out = np.zeros(n, dtype=self._dtype)
        out["size"] = -1
        out["proof"] = PAD
        return out

    def input_tags(self, fact_ids: np.ndarray) -> np.ndarray:
        fact_ids = np.asarray(fact_ids, dtype=np.int64)
        out = self.one_tags(len(fact_ids))
        tagged = fact_ids >= 0
        out["prob"][tagged] = self.input_probs[fact_ids[tagged]]
        out["size"][tagged] = 1
        out["proof"][tagged, 0] = fact_ids[tagged]
        return out

    # ------------------------------------------------------------------

    def merge_proof_arrays(
        self, proofs_a: np.ndarray, proofs_b: np.ndarray, dead_in: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Union two batches of proofs: dedupe, conflict-check, score.

        ``proofs_a``/``proofs_b`` are (n, cap) fact-id arrays padded with
        PAD; ``dead_in`` marks rows already absorbed to 0.  Returns
        ``(merged (n, cap), sizes, probs)`` with dead rows zeroed — the
        shared kernel behind top-1 and device top-k conjunction.
        """
        cap = self.proof_capacity
        merged = np.concatenate([proofs_a, proofs_b], axis=1)
        merged.sort(axis=1)
        # Blank out duplicate fact ids, then re-sort to left-justify.
        dup = np.zeros_like(merged, dtype=bool)
        dup[:, 1:] = (merged[:, 1:] == merged[:, :-1]) & (merged[:, 1:] != PAD)
        merged[dup] = PAD
        merged.sort(axis=1)

        valid = merged != PAD
        sizes = valid.sum(axis=1)
        overflow = sizes > cap

        # Conflicts: adjacent distinct facts sharing an exclusion group
        # (group members hold contiguous fact ids, so sorting by fact id
        # makes conflicting facts adjacent).
        safe = np.clip(merged, 0, max(self.n_inputs - 1, 0))
        groups = np.where(valid, self.exclusion_groups[safe], -1)
        adjacent_conflict = (
            (groups[:, 1:] == groups[:, :-1])
            & (groups[:, 1:] != -1)
            & (merged[:, 1:] != merged[:, :-1])
            & valid[:, 1:]
        )
        conflict = adjacent_conflict.any(axis=1)

        probs = np.where(valid, self.input_probs[safe], 1.0).prod(axis=1)

        dead = overflow | conflict | dead_in
        merged = merged[:, :cap]
        if dead.any():
            probs = np.where(dead, 0.0, probs)
            sizes = np.where(dead, -1, sizes)
            merged[dead] = PAD
        return merged, sizes, probs

    def otimes(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        dead_in = (a["size"] < 0) | (b["size"] < 0)
        merged, sizes, probs = self.merge_proof_arrays(
            a["proof"].copy(), b["proof"], dead_in
        )
        out = np.zeros(len(a), dtype=self._dtype)
        out["proof"] = merged
        out["size"] = sizes
        out["prob"] = probs
        return out

    def oplus_reduce(self, tags, segment_ids, nseg) -> np.ndarray:
        winners = segment_argmax(tags["prob"], segment_ids, nseg)
        return tags[winners]

    def merge_existing(self, old, new):
        improved = new["prob"] > old["prob"] + SATURATION_EPS
        merged = old.copy()
        merged[improved] = new[improved]
        return merged, improved

    def prob(self, tags) -> np.ndarray:
        return tags["prob"].astype(np.float64)

    def is_absorbing_zero(self, tags) -> np.ndarray:
        return tags["size"] < 0


def leave_one_out_products(probs: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """For each row i and valid slot j: product of row i's other valid probs.

    Handles zeros exactly (division-free when a zero is present), which
    matters because neural predictions can be exactly 0 early in training.
    ``probs`` has invalid entries already replaced by 1.0.
    """
    zero = (probs == 0.0) & valid
    zero_count = zero.sum(axis=1)
    nonzero_probs = np.where(zero, 1.0, probs)
    prod_nonzero = nonzero_probs.prod(axis=1)

    out = np.zeros_like(probs)
    # No zeros in row: standard ratio.
    row_no_zero = zero_count == 0
    with np.errstate(divide="ignore", invalid="ignore"):
        out[row_no_zero] = (
            prod_nonzero[row_no_zero, None] / probs[row_no_zero]
        )
    # Exactly one zero: only that slot gets the product of the others.
    row_one_zero = zero_count == 1
    out[row_one_zero] = np.where(
        zero[row_one_zero], prod_nonzero[row_one_zero, None], 0.0
    )
    # Two or more zeros: every leave-one-out product is zero (already 0).
    return np.where(valid, out, 0.0)

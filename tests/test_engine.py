"""End-to-end engine tests: language features through the full pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LobsterEngine, LobsterError
from tests.conftest import brute_force_closure, random_digraph, run_tc


class TestTransitiveClosure:
    def test_small_cycle(self):
        _, db = run_tc([(0, 1), (1, 2), (2, 0)])
        assert len(db.result("path").rows()) == 9  # complete closure

    def test_matches_brute_force(self, rng):
        edges = random_digraph(rng, 25, 60)
        _, db = run_tc(edges)
        assert set(db.result("path").rows()) == brute_force_closure(edges)

    def test_empty_edb(self):
        _, db = run_tc([])
        assert db.result("path").n_rows == 0

    def test_self_loop(self):
        _, db = run_tc([(3, 3)])
        assert db.result("path").rows() == [(3, 3)]


class TestLanguageFeatures:
    def test_arity_zero_head(self):
        engine = LobsterEngine("rel found() :- e(x, y), x != y.")
        db = engine.create_database()
        db.add_facts("e", [(1, 1), (2, 3)])
        engine.run(db)
        assert db.result("found").n_rows == 1

    def test_arity_zero_false(self):
        engine = LobsterEngine("rel found() :- e(x, y), x != y.")
        db = engine.create_database()
        db.add_facts("e", [(1, 1)])
        engine.run(db)
        assert db.result("found").n_rows == 0

    def test_constants_in_body(self):
        engine = LobsterEngine("rel from_zero(y) :- e(0, y).")
        db = engine.create_database()
        db.add_facts("e", [(0, 5), (1, 6), (0, 7)])
        engine.run(db)
        assert sorted(db.result("from_zero").rows()) == [(5,), (7,)]

    def test_repeated_variable_in_atom(self):
        engine = LobsterEngine("rel loop(x) :- e(x, x).")
        db = engine.create_database()
        db.add_facts("e", [(1, 1), (1, 2), (3, 3)])
        engine.run(db)
        assert sorted(db.result("loop").rows()) == [(1,), (3,)]

    def test_wildcards(self):
        engine = LobsterEngine("rel src(x) :- e(x, _).")
        db = engine.create_database()
        db.add_facts("e", [(1, 2), (1, 3), (4, 5)])
        engine.run(db)
        assert sorted(db.result("src").rows()) == [(1,), (4,)]

    def test_head_arithmetic(self):
        engine = LobsterEngine("rel double(x + x) :- v(x).")
        db = engine.create_database()
        db.add_facts("v", [(2,), (5,)])
        engine.run(db)
        assert sorted(db.result("double").rows()) == [(4,), (10,)]

    def test_float_arithmetic(self):
        engine = LobsterEngine("rel ratio(x / y) :- pair(x, y).")
        db = engine.create_database()
        db.add_facts("pair", [(1, 2), (3, 4)])
        engine.run(db)
        values = sorted(r[0] for r in db.result("ratio").rows())
        assert values == pytest.approx([0.5, 0.75])

    def test_comparisons(self):
        engine = LobsterEngine("rel big(x) :- v(x), x >= 10.")
        db = engine.create_database()
        db.add_facts("v", [(5,), (10,), (15,)])
        engine.run(db)
        assert sorted(db.result("big").rows()) == [(10,), (15,)]

    def test_cross_product(self):
        engine = LobsterEngine("rel pair(x, y) :- a(x), b(y).")
        db = engine.create_database()
        db.add_facts("a", [(1,), (2,)])
        db.add_facts("b", [(10,), (20,)])
        engine.run(db)
        assert len(db.result("pair").rows()) == 4

    def test_stratified_negation(self):
        engine = LobsterEngine(
            """
            rel reach(x) :- start(x) or (reach(y) and e(y, x)).
            rel unreached(x) :- node(x), not reach(x).
            """
        )
        db = engine.create_database()
        db.add_facts("start", [(0,)])
        db.add_facts("e", [(0, 1), (2, 3)])
        db.add_facts("node", [(0,), (1,), (2,), (3,)])
        engine.run(db)
        assert sorted(db.result("unreached").rows()) == [(2,), (3,)]

    def test_negation_zero_shared_vars(self):
        engine = LobsterEngine("rel ok(x) :- v(x), not disabled().")
        db = engine.create_database()
        db.add_facts("v", [(1,)])
        db.add_facts("disabled", [()])
        engine.run(db)
        assert db.result("ok").n_rows == 0

    def test_fact_blocks(self):
        engine = LobsterEngine(
            "rel edge = {(0, 1), (1, 2)}\n"
            "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."
        )
        db = engine.create_database()
        engine.run(db)
        assert set(db.result("path").rows()) == {(0, 1), (1, 2), (0, 2)}

    def test_string_constants(self):
        engine = LobsterEngine(
            'rel parent = {("alice", "bob"), ("bob", "carol")}\n'
            "rel grandparent(x, z) :- parent(x, y), parent(y, z)."
        )
        db = engine.create_database()
        engine.run(db)
        symbols = engine.resolved.symbols
        rows = db.result("grandparent").rows()
        decoded = [(symbols.lookup(a), symbols.lookup(b)) for a, b in rows]
        assert decoded == [("alice", "carol")]

    def test_multi_stratum_pipeline(self):
        engine = LobsterEngine(
            """
            rel tc(x, y) :- e(x, y) or (tc(x, z) and e(z, y)).
            rel in_cycle(x) :- tc(x, x).
            rel cycle_pair(x, y) :- in_cycle(x), in_cycle(y), tc(x, y).
            """
        )
        db = engine.create_database()
        db.add_facts("e", [(0, 1), (1, 0), (1, 2)])
        engine.run(db)
        assert sorted(db.result("in_cycle").rows()) == [(0,), (1,)]

    def test_mutual_recursion(self):
        engine = LobsterEngine(
            """
            rel even(x) :- zero(x).
            rel even(y) :- odd(x), succ(x, y).
            rel odd(y) :- even(x), succ(x, y).
            """
        )
        db = engine.create_database()
        db.add_facts("zero", [(0,)])
        db.add_facts("succ", [(i, i + 1) for i in range(6)])
        engine.run(db)
        assert sorted(db.result("even").rows()) == [(0,), (2,), (4,), (6,)]
        assert sorted(db.result("odd").rows()) == [(1,), (3,), (5,)]


class TestProbabilisticSemantics:
    def test_minmax_path_prob(self):
        engine = LobsterEngine(
            "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).",
            provenance="minmaxprob",
        )
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)], probs=[0.9, 0.4])
        engine.run(db)
        probs = engine.query_probs(db, "path")
        assert probs[(0, 2)] == pytest.approx(0.4)  # weakest link

    def test_minmax_best_alternative(self):
        engine = LobsterEngine(
            "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).",
            provenance="minmaxprob",
        )
        db = engine.create_database()
        # Two routes 0->3: via 1 (min 0.5) and via 2 (min 0.8).
        db.add_facts(
            "edge",
            [(0, 1), (1, 3), (0, 2), (2, 3)],
            probs=[0.5, 0.9, 0.8, 0.85],
        )
        engine.run(db)
        assert engine.query_probs(db, "path")[(0, 3)] == pytest.approx(0.8)

    def test_top1_proof_probability(self):
        engine = LobsterEngine(
            "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).",
            provenance="prob-top-1-proofs",
            proof_capacity=16,
        )
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)], probs=[0.9, 0.4])
        engine.run(db)
        assert engine.query_probs(db, "path")[(0, 2)] == pytest.approx(0.36)

    def test_tag_saturation_terminates(self):
        # Cyclic graph with minmaxprob: tags improve then saturate.
        engine = LobsterEngine(
            "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).",
            provenance="minmaxprob",
        )
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 0)], probs=[0.9, 0.8])
        result = engine.run(db)
        assert result.iterations < 20
        probs = engine.query_probs(db, "path")
        assert probs[(0, 0)] == pytest.approx(0.8)

    def test_backward_requires_differentiable(self):
        engine = LobsterEngine("rel p(x) :- q(x).", provenance="minmaxprob")
        db = engine.create_database()
        db.add_facts("q", [(1,)], probs=[0.5])
        engine.run(db)
        with pytest.raises(LobsterError, match="not differentiable"):
            engine.backward(db, "p", {(1,): 1.0})


class TestEngineApi:
    def test_topk_rejected_on_device(self):
        with pytest.raises(LobsterError, match="no device implementation"):
            LobsterEngine("rel p(x) :- q(x).", provenance="top-k-proofs")

    def test_run_returns_profile(self):
        engine, db = run_tc([(0, 1), (1, 2)])
        result = engine.run(engine.create_database())
        assert result.wall_seconds >= 0
        assert result.profile.kernel_launches >= 0

    def test_query_probs_discrete_all_one(self):
        engine, db = run_tc([(0, 1)])
        assert engine.query_probs(db, "path") == {(0, 1): 1.0}

    def test_reusable_engine_fresh_databases(self):
        engine = LobsterEngine("rel p(x) :- q(x).")
        db1 = engine.create_database()
        db1.add_facts("q", [(1,)])
        engine.run(db1)
        db2 = engine.create_database()
        db2.add_facts("q", [(2,)])
        engine.run(db2)
        assert db1.result("p").rows() == [(1,)]
        assert db2.result("p").rows() == [(2,)]

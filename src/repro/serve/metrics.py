"""Low-overhead metrics for the serving front-end.

Serving systems need always-on instrumentation of the hot path: a
counter increment or histogram observation must cost a few arithmetic
operations, never an allocation per sample (cf. the DBI survey's
overhead taxonomy, PAPERS.md).  Three instrument kinds cover the
serving stack:

* :class:`Counter` — monotone event counts (requests admitted, batches
  dispatched, requests shed);
* :class:`Gauge` — last-written values with a high-water mark (queue
  depth, per-device busy seconds);
* :class:`Histogram` — streaming latency distributions over geometric
  buckets, answering p50/p95/p99 without retaining samples.

All observations the serving layer feeds in are *modeled* seconds from
the device cost model, so a registry's whole state — histograms
included — is deterministic and replayable for one seed.

A :class:`MetricsRegistry` is a thread-safe name->instrument map with
get-or-create semantics and a text report renderer.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-written value plus its high-water mark."""

    __slots__ = ("name", "value", "max_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            self.max_value = max(self.max_value, value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value}, max={self.max_value})"


class Histogram:
    """A streaming histogram over geometric buckets.

    Bucket ``i >= 1`` covers ``(lo * growth**(i-1), lo * growth**i]``;
    bucket 0 absorbs everything ``<= lo``.  With the default
    ``growth=1.08`` a quantile is answered to within ~8% relative
    error over twelve decades — plenty for latency SLO checks — using a
    sparse dict of bucket counts and O(1) per observation.

    Quantiles interpolate linearly inside the winning bucket and clamp
    to the observed min/max, so ``percentile`` is exact for single-value
    histograms and deterministic everywhere.
    """

    __slots__ = ("name", "lo", "growth", "n_buckets", "counts", "count",
                 "total", "min", "max", "_log_growth", "_lock")

    def __init__(
        self,
        name: str = "",
        lo: float = 1e-7,
        growth: float = 1.08,
        hi: float = 1e5,
    ):
        if lo <= 0 or growth <= 1 or hi <= lo:
            raise ValueError("need lo > 0, growth > 1, hi > lo")
        self.name = name
        self.lo = lo
        self.growth = growth
        self._log_growth = math.log(growth)
        self.n_buckets = int(math.ceil(math.log(hi / lo) / self._log_growth)) + 1
        self.counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def _bucket(self, value: float) -> int:
        if value <= self.lo:
            return 0
        index = 1 + int(math.log(value / self.lo) / self._log_growth)
        return min(index, self.n_buckets - 1)

    def _edges(self, index: int) -> tuple[float, float]:
        if index == 0:
            return 0.0, self.lo
        return self.lo * self.growth ** (index - 1), self.lo * self.growth ** index

    def observe(self, value: float) -> None:
        with self._lock:
            index = self._bucket(value)
            self.counts[index] = self.counts.get(index, 0) + 1
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The p-th percentile (0 < p <= 100), interpolated within the
        winning bucket and clamped to the observed range.

        An empty histogram answers 0.0 for *any* ``p`` (even an invalid
        one) rather than raising: report paths query percentiles for
        every instrument ever created, and an SLO class that happened to
        serve no traffic must render as zero latency, not crash the
        report."""
        if not self.count:
            return 0.0
        if not 0 < p <= 100:
            raise ValueError(f"percentile wants 0 < p <= 100, got {p}")
        rank = max(1, math.ceil(p / 100.0 * self.count))
        cumulative = 0
        for index in sorted(self.counts):
            in_bucket = self.counts[index]
            if cumulative + in_bucket >= rank:
                low, high = self._edges(index)
                fraction = (rank - cumulative) / in_bucket
                value = low + fraction * (high - low)
                return min(max(value, self.min), self.max)
            cumulative += in_bucket
        return self.max  # unreachable: ranks are <= count

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def state(self) -> tuple:
        """Canonical value state (bucket counts + extrema), the basis of
        equality — two histograms fed identical observations in any
        order compare equal.  ``total`` is deliberately excluded: float
        summation is order-sensitive at the last bit, and reordering
        identical observations must not break equality."""
        return (
            self.lo,
            self.growth,
            self.count,
            self.min,
            self.max,
            tuple(sorted(self.counts.items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.state() == other.state()

    # Value equality over mutable state makes hashing unsound: two equal
    # histograms would need equal hashes, but the next observe() changes
    # the state.  Unhashable, like list and dict; key sets by identity
    # explicitly (id()) or by name instead.
    __hash__ = None

    def __repr__(self) -> str:
        if not self.count:
            return f"Histogram({self.name}, empty)"
        return (
            f"Histogram({self.name}, n={self.count}, mean={self.mean:.6f}, "
            f"p50={self.p50:.6f}, p99={self.p99:.6f})"
        )


class MetricsRegistry:
    """Thread-safe name->instrument map with get-or-create semantics.

    Names are dotted paths (``serve.latency_s.interactive``); the report
    groups instruments by kind and sorts by name, so renders of two
    deterministic runs diff cleanly.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, **kwargs) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, **kwargs)
            return instrument

    def snapshot(self) -> dict[str, object]:
        """Plain-value view: counters/gauges to numbers, histograms to
        their canonical state tuples.  Keys are in sorted-name order (as
        :meth:`render` reports), so serializing a snapshot without
        re-sorting is already deterministic across runs that created
        instruments in different orders."""
        with self._lock:
            out: dict[str, object] = {}
            for name in sorted(self._counters):
                out[name] = self._counters[name].value
            for name in sorted(self._gauges):
                gauge = self._gauges[name]
                out[name] = (gauge.value, gauge.max_value)
            for name in sorted(self._histograms):
                out[name] = self._histograms[name].state()
            return out

    def render(self, title: str = "metrics") -> str:
        """A text report: counters, gauges, then histogram quantiles.
        Takes the registry lock so a monitoring thread can render while
        the serving thread is still creating instruments."""
        with self._lock:
            return self._render(title)

    def _render(self, title: str) -> str:
        lines = [f"=== {title} ==="]
        if self._counters:
            lines.append("-- counters --")
            for name in sorted(self._counters):
                lines.append(f"{name:<44} {self._counters[name].value}")
        if self._gauges:
            lines.append("-- gauges --")
            for name in sorted(self._gauges):
                gauge = self._gauges[name]
                lines.append(
                    f"{name:<44} {gauge.value:.6g} (max {gauge.max_value:.6g})"
                )
        if self._histograms:
            lines.append("-- histograms --")
            for name in sorted(self._histograms):
                hist = self._histograms[name]
                if not hist.count:
                    lines.append(f"{name:<44} (empty)")
                    continue
                lines.append(
                    f"{name:<44} n={hist.count} mean={hist.mean:.6f} "
                    f"p50={hist.p50:.6f} p95={hist.p95:.6f} "
                    f"p99={hist.p99:.6f} max={hist.max:.6f}"
                )
        return "\n".join(lines)

"""Fig. 9: neurosymbolic inference speedup over Scallop.

The neural component is pretrained (simulated); only the symbolic engine
differs.  The paper's shape: Lobster wins on all four tasks — CLUTRR by
the largest margin, HWF by the smallest.
"""

from __future__ import annotations

import pytest

from repro import LobsterEngine, ProgramCache
from repro.baselines import ScallopInterpreter
from repro.workloads import clutrr, hwf, pacman, pathfinder

from _harness import record, print_table, report, speedup, timed

SUITE = "fig9_inference"


def run_pathfinder(engine_kind: str):
    samples = pathfinder.make_dataset(6, 6, seed=1)

    def run():
        for index, instance in enumerate(samples):
            probs = pathfinder.pretrained_edge_probs(instance, seed=index)
            if engine_kind == "lobster":
                engine = LobsterEngine(
                    pathfinder.PROGRAM,
                    provenance="diff-top-1-proofs",
                    proof_capacity=128,
                )
                db = engine.create_database()
                pathfinder.populate_database(db, instance, probs)
                engine.run(db)
            else:
                engine = ScallopInterpreter(
                    pathfinder.PROGRAM, provenance="top-k-proofs", k=1
                )
                db = engine.create_database()
                pathfinder.populate_database(db, instance, probs)
                engine.run(db)

    return timed(run)


def run_pacman(engine_kind: str):
    samples = pacman.make_dataset(8, 4, seed=2)

    def run():
        for index, instance in enumerate(samples):
            probs = pacman.pretrained_safety_probs(instance, seed=index)
            if engine_kind == "lobster":
                engine = LobsterEngine(
                    pacman.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=256
                )
                db = engine.create_database()
                pacman.populate_database(db, instance, probs)
                engine.run(db)
            else:
                engine = ScallopInterpreter(
                    pacman.PROGRAM, provenance="top-k-proofs", k=1
                )
                db = engine.create_database()
                pacman.populate_database(db, instance, probs)
                engine.run(db)

    return timed(run)


def run_hwf(engine_kind: str):
    samples = hwf.make_dataset(9, 4, seed=3)

    def run():
        for instance in samples:
            if engine_kind == "lobster":
                engine = LobsterEngine(
                    hwf.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=32
                )
                db = engine.create_database()
                hwf.populate_database(db, instance, beam=2)
                engine.run(db)
            else:
                engine = ScallopInterpreter(hwf.PROGRAM, provenance="top-k-proofs", k=1)
                db = engine.create_database()
                hwf.populate_database(db, instance, beam=2)
                engine.run(db)

    return timed(run)


def run_clutrr(engine_kind: str):
    samples = clutrr.make_dataset(10, 6, seed=4)

    def run():
        for instance in samples:
            if engine_kind == "lobster":
                engine = LobsterEngine(
                    clutrr.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=32
                )
                db = engine.create_database()
                clutrr.populate_database(db, instance, beam=3)
                engine.run(db)
            else:
                engine = ScallopInterpreter(
                    clutrr.PROGRAM, provenance="top-k-proofs", k=1
                )
                db = engine.create_database()
                clutrr.populate_database(db, instance, beam=3)
                engine.run(db)

    return timed(run)


TASKS = {
    "CLUTRR": run_clutrr,
    "HWF": run_hwf,
    "Pathfinder": run_pathfinder,
    "Pacman": run_pacman,
}


@pytest.fixture(scope="module")
def results():
    rows = {}
    for name, runner in TASKS.items():
        rows[name] = (runner("scallop"), runner("lobster"))
        scallop, lobster = rows[name]
        report(SUITE, f"{name}/scallop", scallop, engine="scallop")
        report(SUITE, f"{name}/lobster", lobster, engine="lobster")
    return rows


def test_fig9_inference_speedups(results, benchmark):
    def check():
        table = [
            [task, scallop.label, lobster.label, speedup(scallop, lobster)]
            for task, (scallop, lobster) in results.items()
        ]
        print_table(
            "Fig. 9 — Neurosymbolic inference, speedup over Scallop",
            ["task", "scallop", "lobster", "speedup"],
            table,
        )
        # Shape: Lobster wins every task (typed ratio — an OOM/timeout on
        # either side fails loudly instead of skipping the comparison).
        for task, (scallop, lobster) in results.items():
            ratio = speedup(scallop, lobster)
            assert ratio.ok, f"{task}: {ratio.status}"
            assert ratio.value > 1.0, task


    record(benchmark, check)

def test_fig9_warm_path_zero_recompilation(benchmark):
    """Warm-path mode: per-sample engine construction hits the program
    cache, so steady-state serving pays zero recompilation (the SPEC
    CPU2026-style compile-vs-throughput split)."""
    cache = ProgramCache()
    samples = pathfinder.make_dataset(6, 4, seed=11)

    def serve_one(index, instance):
        probs = pathfinder.pretrained_edge_probs(instance, seed=index)
        engine = LobsterEngine(
            pathfinder.PROGRAM,
            provenance="diff-top-1-proofs",
            proof_capacity=128,
            cache=cache,
        )
        db = engine.create_database()
        pathfinder.populate_database(db, instance, probs)
        return engine.run(db)

    results = [serve_one(index, inst) for index, inst in enumerate(samples)]
    cold, warm = results[0], results[1:]

    assert cache.stats.misses == 1  # one compile for the whole serving loop
    assert cache.stats.hits == len(samples) - 1
    assert not cold.program_from_cache and cold.compile_seconds > 0.0
    for result in warm:
        assert result.program_from_cache  # zero recompilation
        assert result.compile_seconds == 0.0

    steady = sum(r.total_seconds for r in warm) / len(warm)
    print_table(
        "Fig. 9 warm path — compile once, serve many (Pathfinder)",
        ["phase", "seconds"],
        [
            ["compile (one-time)", f"{cold.compile_seconds:.4f}s"],
            ["first query (cold cache)", f"{cold.total_seconds:.4f}s"],
            ["steady state (per query)", f"{steady:.4f}s"],
        ],
    )

    def check():
        assert cache.stats.misses == 1

    record(benchmark, check)


def test_fig9_benchmark_pathfinder_inference(benchmark):
    instance = pathfinder.generate_instance(6, seed=7, positive=True)
    probs = pathfinder.pretrained_edge_probs(instance, seed=7)

    def run():
        engine = LobsterEngine(
            pathfinder.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=128
        )
        db = engine.create_database()
        pathfinder.populate_database(db, instance, probs)
        engine.run(db)

    benchmark.pedantic(run, rounds=3, iterations=1)

"""The RAM (Relational Algebra Machine) intermediate language (Fig. 4).

A RAM program is a sequence of strata; each stratum holds rules
``target ← expression`` that iterate to a fix point.  Expressions form a
dataflow tree over the operators π (project), σ (select), ⊲⊳ (join on a
column prefix), ∪, ×, ∩, plus an anti-join extension used for stratified
negation (DESIGN.md §6).

Join convention: ``Join(left, right, width)`` equi-joins on the *first*
``width`` columns of both inputs; output columns are all of the left's
followed by the right's non-key columns, matching Appendix A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .exprs import Expr, expr_dtype


@dataclass(frozen=True)
class Scan:
    """Load a relation (ρ).  ``partition`` is filled by the semi-naive
    expansion: "full", "recent", or "stable"."""

    predicate: str
    partition: str = "full"


@dataclass(frozen=True)
class Project:
    source: "RamExpr"
    exprs: tuple[Expr, ...]


@dataclass(frozen=True)
class Select:
    source: "RamExpr"
    predicate: Expr


@dataclass(frozen=True)
class Join:
    left: "RamExpr"
    right: "RamExpr"
    width: int


@dataclass(frozen=True)
class Antijoin:
    """Rows of ``left`` with no key-prefix match in ``right`` (negation)."""

    left: "RamExpr"
    right: "RamExpr"
    width: int


@dataclass(frozen=True)
class Product:
    left: "RamExpr"
    right: "RamExpr"


@dataclass(frozen=True)
class Union:
    items: tuple["RamExpr", ...]


@dataclass(frozen=True)
class Intersect:
    left: "RamExpr"
    right: "RamExpr"


RamExpr = Scan | Project | Select | Join | Antijoin | Product | Union | Intersect


@dataclass(frozen=True)
class RamRule:
    target: str
    expr: RamExpr
    #: Predicates of this rule's body atoms that live in the same stratum.
    recursive_atoms: tuple[int, ...] = ()
    #: Cost-based planner annotations: estimated rows of one full body
    #: evaluation and total plan cost in tuple units (None when the rule
    #: was ordered by the zero-statistics heuristic).
    estimated_rows: float | None = None
    estimated_cost: float | None = None


@dataclass
class RamStratum:
    predicates: list[str]
    rules: list[RamRule]
    recursive: bool


@dataclass
class RamProgram:
    strata: list[RamStratum]
    schemas: dict[str, tuple[np.dtype, ...]]
    queries: list[str] = field(default_factory=list)


def output_dtypes(
    expr: RamExpr, schemas: dict[str, tuple[np.dtype, ...]]
) -> tuple[np.dtype, ...]:
    """Static column dtypes of a RAM expression."""
    if isinstance(expr, Scan):
        return schemas[expr.predicate]
    if isinstance(expr, Project):
        src = output_dtypes(expr.source, schemas)
        return tuple(expr_dtype(e, src) for e in expr.exprs)
    if isinstance(expr, Select):
        return output_dtypes(expr.source, schemas)
    if isinstance(expr, Join):
        left = output_dtypes(expr.left, schemas)
        right = output_dtypes(expr.right, schemas)
        return left + right[expr.width :]
    if isinstance(expr, Antijoin):
        return output_dtypes(expr.left, schemas)
    if isinstance(expr, Product):
        return output_dtypes(expr.left, schemas) + output_dtypes(expr.right, schemas)
    if isinstance(expr, Union):
        return output_dtypes(expr.items[0], schemas)
    if isinstance(expr, Intersect):
        return output_dtypes(expr.left, schemas)
    raise TypeError(f"unexpected RAM node {expr!r}")


def column_origins(
    expr: RamExpr, schemas: dict[str, tuple[np.dtype, ...]]
) -> list[set[tuple[int, int]]]:
    """Per output column, the ``(scan_index, scan_column)`` leaves whose
    values it copies (scan indices in :func:`scans_of` order).

    Join keys equate columns, so an output column can originate from
    leaves on both sides; a computed :class:`~repro.ram.exprs` projection
    originates from no leaf (empty set).  This is the column-provenance
    map DRed re-derivation uses to push a doomed-head restriction down
    into each leaf scan as a per-column semijoin filter: any rule
    instance whose head lands in the doomed set must draw these columns'
    values from the doomed rows' projections, so filtering the leaves by
    those value sets is a sound (over-approximating) restriction.
    """
    from . import exprs as E

    counter = [0]

    def walk(node: RamExpr) -> list[set[tuple[int, int]]]:
        if isinstance(node, Scan):
            index = counter[0]
            counter[0] += 1
            return [{(index, j)} for j in range(len(schemas[node.predicate]))]
        if isinstance(node, Select):
            return walk(node.source)
        if isinstance(node, Project):
            source = walk(node.source)
            return [
                set(source[e.index]) if isinstance(e, E.Col) else set()
                for e in node.exprs
            ]
        if isinstance(node, Join):
            left = walk(node.left)
            right = walk(node.right)
            out = [
                set(col) | (right[j] if j < node.width else set())
                for j, col in enumerate(left)
            ]
            return out + right[node.width :]
        if isinstance(node, Antijoin):
            left = walk(node.left)
            walk(node.right)  # consume the right subtree's scan indices
            return left
        if isinstance(node, Product):
            return walk(node.left) + walk(node.right)
        if isinstance(node, Intersect):
            left = walk(node.left)
            right = walk(node.right)
            return [set(col) | right[j] for j, col in enumerate(left)]
        if isinstance(node, Union):
            # The planner splits unions into separate rules before this
            # runs, but keep parity with the sibling walkers.  Each scan
            # leaf belongs to exactly one branch, and a branch's rows
            # draw only on its own scans, so every branch's origin pairs
            # are independently valid — take their union.
            items = [walk(item) for item in node.items]
            return [
                set().union(*(item[j] for item in items))
                for j in range(len(items[0]))
            ]
        raise TypeError(f"unexpected RAM node {node!r}")

    return walk(expr)


def scans_of(expr: RamExpr) -> list[Scan]:
    """All Scan leaves of an expression, left to right."""
    if isinstance(expr, Scan):
        return [expr]
    if isinstance(expr, (Project, Select)):
        return scans_of(expr.source)
    if isinstance(expr, (Join, Antijoin, Product, Intersect)):
        return scans_of(expr.left) + scans_of(expr.right)
    if isinstance(expr, Union):
        out: list[Scan] = []
        for item in expr.items:
            out.extend(scans_of(item))
        return out
    raise TypeError(f"unexpected RAM node {expr!r}")


def replace_scan_partition(expr: RamExpr, scan_index: int, partition: str) -> RamExpr:
    """Return a copy of ``expr`` with the ``scan_index``-th Scan leaf set to
    the given partition (used by the semi-naive expansion)."""
    counter = [0]

    def rewrite(node: RamExpr) -> RamExpr:
        if isinstance(node, Scan):
            index = counter[0]
            counter[0] += 1
            if index == scan_index:
                return Scan(node.predicate, partition)
            return node
        if isinstance(node, Project):
            return Project(rewrite(node.source), node.exprs)
        if isinstance(node, Select):
            return Select(rewrite(node.source), node.predicate)
        if isinstance(node, Join):
            return Join(rewrite(node.left), rewrite(node.right), node.width)
        if isinstance(node, Antijoin):
            return Antijoin(rewrite(node.left), rewrite(node.right), node.width)
        if isinstance(node, Product):
            return Product(rewrite(node.left), rewrite(node.right))
        if isinstance(node, Union):
            return Union(tuple(rewrite(i) for i in node.items))
        if isinstance(node, Intersect):
            return Intersect(rewrite(node.left), rewrite(node.right))
        raise TypeError(f"unexpected RAM node {node!r}")

    return rewrite(expr)

"""Lexer, parser, resolver, and stratifier tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datalog import ast, compile_source, parse
from repro.datalog.desugar import body_to_dnf
from repro.datalog.lexer import tokenize
from repro.datalog.stratify import stratify
from repro.errors import ParseError, ResolutionError, StratificationError


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("rel path(x, y) :- edge(x, y).")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert tokens[-1].kind == "eof"

    def test_comments_stripped(self):
        tokens = tokenize("// comment\nrel /* block */ foo(x) :- bar(x).")
        values = [t.value for t in tokens if t.kind != "eof"]
        assert "comment" not in values and "block" not in values

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 0.25")
        assert [t.kind for t in tokens[:-1]] == ["int", "float", "float", "float"]

    def test_string_literal(self):
        tokens = tokenize('rel name = {("alice")}')
        assert any(t.kind == "string" and t.value == "alice" for t in tokens)

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('foo("oops')

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("rel foo(x) :- bar(x) @ baz(x)")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]


class TestParser:
    def test_disjunction_and_conjunction(self):
        program = parse("rel p(x, y) :- e(x, y) or (p(x, z) and e(z, y)).")
        assert isinstance(program.rules[0].body, ast.Disj)

    def test_both_rule_syntaxes(self):
        a = parse("rel p(x) :- q(x).")
        b = parse("rel p(x) = q(x).")
        assert a.rules[0].head == b.rules[0].head

    def test_fact_block(self):
        program = parse("rel edge = {(0, 1), (1, 2)}")
        assert program.fact_blocks[0].predicate == "edge"
        assert len(program.fact_blocks[0].facts) == 2

    def test_scalar_fact_block(self):
        program = parse("rel flag = {1, 2, 3}")
        assert len(program.fact_blocks[0].facts) == 3

    def test_negation(self):
        program = parse("rel p(x) :- q(x), not r(x).")
        literals = program.rules[0].body.items
        assert any(isinstance(l, ast.Atom) and l.negated for l in literals)

    def test_arithmetic_precedence(self):
        program = parse("rel p(x + y * 2) :- q(x, y).")
        term = program.rules[0].head.args[0]
        assert term.op == "+"
        assert term.rhs.op == "*"

    def test_comparison(self):
        program = parse("rel p(x) :- q(x, y), x != y, x <= 10.")
        comparisons = [
            l for l in program.rules[0].body.items if isinstance(l, ast.Comparison)
        ]
        assert {c.op for c in comparisons} == {"!=", "<="}

    def test_relation_decl(self):
        program = parse("type edge(x: Cell, y: Cell)")
        decl = program.relation_decls[0]
        assert decl.arg_types == ("Cell", "Cell")

    def test_type_alias(self):
        program = parse("type Cell = u32")
        assert program.type_aliases[0].base == "u32"

    def test_query(self):
        program = parse("rel p(x) :- q(x). query p")
        assert program.queries[0].predicate == "p"

    def test_parse_error_has_location(self):
        with pytest.raises(ParseError, match=r"\d+:\d+"):
            parse("rel p(x :- q(x).")

    def test_wildcard(self):
        program = parse("rel p(x) :- q(x, _).")
        atom = program.rules[0].body
        assert isinstance(atom.args[1], ast.Wildcard)


class TestDesugar:
    def test_dnf_distribution(self):
        program = parse("rel p(x) :- a(x), (b(x) or c(x)).")
        dnf = body_to_dnf(program.rules[0].body)
        assert len(dnf) == 2
        assert all(len(conj) == 2 for conj in dnf)

    def test_nested_disjunction(self):
        program = parse("rel p(x) :- (a(x) or b(x)), (c(x) or d(x)).")
        assert len(body_to_dnf(program.rules[0].body)) == 4


class TestResolver:
    def test_schema_inference(self):
        resolved = compile_source("rel p(x / y) :- q(x, y).")
        assert resolved.schemas["p"][0] == np.dtype(np.float64)
        assert resolved.schemas["q"][0] == np.dtype(np.int64)

    def test_string_interning(self):
        resolved = compile_source('rel likes = {("alice", "bob"), ("bob", "alice")}')
        assert len(resolved.symbols) == 2
        rows = resolved.facts["likes"]
        assert rows[0] == (0, 1)

    def test_unsafe_head_rejected(self):
        with pytest.raises(ResolutionError, match="unsafe"):
            compile_source("rel p(x, y) :- q(x).")

    def test_unsafe_negation_rejected(self):
        with pytest.raises(ResolutionError, match="unsafe negation"):
            compile_source("rel p(x) :- q(x), not r(y).")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ResolutionError, match="arity"):
            compile_source("rel p(x) :- q(x, y), q(x).")

    def test_edb_idb_split(self):
        resolved = compile_source("rel p(x) :- q(x). rel r(x) :- p(x).")
        assert resolved.edb_predicates == {"q"}
        assert resolved.idb_predicates == {"p", "r"}

    def test_declared_float_schema(self):
        resolved = compile_source("type v(x: f64)\nrel p(x) :- v(x).")
        assert resolved.schemas["p"][0] == np.dtype(np.float64)

    def test_cyclic_alias_rejected(self):
        with pytest.raises(ResolutionError, match="cyclic"):
            compile_source("type A = B\ntype B = A\n")


class TestStratify:
    def test_linear_dependencies(self):
        strata = stratify(["a", "b"], [("a", "b", False)])
        assert strata == [["a"], ["b"]]

    def test_mutual_recursion_one_stratum(self):
        strata = stratify(["a", "b"], [("a", "b", False), ("b", "a", False)])
        assert strata == [["a", "b"]]

    def test_negation_cycle_rejected(self):
        with pytest.raises(StratificationError):
            stratify(["a", "b"], [("a", "b", True), ("b", "a", False)])

    def test_negation_across_strata_ok(self):
        strata = stratify(["a", "b"], [("a", "b", True)])
        assert strata == [["a"], ["b"]]

    def test_program_stratum_order(self):
        resolved = compile_source(
            """
            rel tc(x, y) :- e(x, y) or (tc(x, z) and e(z, y)).
            rel unreached(x) :- node(x), not tc(0, x).
            """
        )
        assert [s.predicates for s in resolved.strata] == [["tc"], ["unreached"]]

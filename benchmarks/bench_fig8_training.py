"""Fig. 8 / Fig. 3e: end-to-end training-time speedup over Scallop.

Short fixed-step training runs (both engines execute identical programs
and see identical data, so per-step work is the honest comparison; the
paper trains to convergence, which scales both sides equally).

Expected shape: Lobster ahead on every task; Pacman by far the most
(heaviest symbolic component), the others more modest because neural time
(identical for both) dilutes the symbolic speedup — Amdahl's law, §6.3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LobsterEngine
from repro.baselines import ScallopInterpreter
from repro.workloads import clutrr, hwf, pacman, pathfinder

from _harness import record, print_table, report, speedup, timed
from _train import lobster_train_step, scallop_train_step

SUITE = "fig8_training"

STEPS = 3


def train_task(engine_kind, program, provenance_capacity, samples, populate, relation):
    """Time STEPS sweeps of symbolic forward+backward over the samples."""

    if engine_kind == "lobster":
        engine = LobsterEngine(
            program, provenance="diff-top-1-proofs", proof_capacity=provenance_capacity
        )
        step = lobster_train_step
    else:
        engine = ScallopInterpreter(program, provenance="top-k-proofs", k=1)
        step = scallop_train_step

    def run():
        for _ in range(STEPS):
            for instance_probs, instance_populate in samples:
                step(engine, instance_populate, relation, instance_probs)

    return timed(run)


def pathfinder_samples(n, grid=5):
    out = []
    for index in range(n):
        instance = pathfinder.generate_instance(grid, seed=100 + index, positive=True)
        probs = pathfinder.pretrained_edge_probs(instance, noise=0.4, seed=index)

        def populate(db, p, instance=instance):
            return pathfinder.populate_database(db, instance, p)

        out.append((probs, populate))
    return out


def pacman_samples(n, grid=9):
    out = []
    for index in range(n):
        instance = pacman.generate_instance(grid, seed=200 + index)
        probs = pacman.pretrained_safety_probs(instance, noise=0.3, seed=index)

        def populate(db, p, instance=instance):
            return pacman.populate_database(db, instance, p)

        out.append((probs, populate))
    return out


def hwf_samples(n, length=13):
    out = []
    for index in range(n):
        instance = hwf.generate_instance(length, seed=300 + index)

        def populate(db, p, instance=instance):
            ids, _, _ = hwf.populate_database(db, instance, beam=2)
            return ids

        # Trained quantity: the classifier's per-candidate probabilities.
        probs = np.zeros(0)  # facts carry their own probs via populate
        out.append((probs, populate))
    return out


def clutrr_samples(n, chain=8):
    out = []
    for index in range(n):
        instance = clutrr.generate_instance(chain, seed=400 + index)

        def populate(db, p, instance=instance):
            ids, _, _ = clutrr.populate_database(db, instance, beam=2)
            return ids

        out.append((np.zeros(0), populate))
    return out


TASKS = {
    "CLUTRR": (clutrr.PROGRAM, 32, clutrr_samples(3), "answer"),
    "HWF": (hwf.PROGRAM, 32, hwf_samples(3), "has_result"),
    "Pathfinder": (pathfinder.PROGRAM, 64, pathfinder_samples(3), "endpoints_connected"),
    "Pacman": (pacman.PROGRAM, 256, pacman_samples(3), "success"),
}


@pytest.fixture(scope="module")
def results():
    out = {}
    for task, (program, capacity, samples, relation) in TASKS.items():
        out[task] = (
            train_task("scallop", program, capacity, samples, None, relation),
            train_task("lobster", program, capacity, samples, None, relation),
        )
        scallop, lobster = out[task]
        report(SUITE, f"{task}/scallop", scallop, engine="scallop", steps=STEPS)
        report(SUITE, f"{task}/lobster", lobster, engine="lobster", steps=STEPS)
    return out


def test_fig8_training_speedups(results, benchmark):
    def check():
        table = [
            [task, scallop.label, lobster.label, speedup(scallop, lobster)]
            for task, (scallop, lobster) in results.items()
        ]
        print_table(
            "Fig. 8 — End-to-end training, speedup over Scallop",
            ["task", "scallop", "lobster", "speedup"],
            table,
        )
        for task, (scallop, lobster) in results.items():
            ratio = speedup(scallop, lobster)
            assert ratio.ok, f"{task}: {ratio.status}"
            assert ratio.value > 1.0, task


    record(benchmark, check)

def test_fig3e_pathfinder_training_time(results, benchmark):
    def check():
        scallop, lobster = results["Pathfinder"]
        print_table(
            "Fig. 3e — Pathfinder training time",
            ["engine", "time"],
            [["Scallop", scallop.label], ["Lobster", lobster.label]],
        )
        assert lobster.seconds < scallop.seconds


    record(benchmark, check)

def test_fig8_benchmark_pacman_step(benchmark):
    engine = LobsterEngine(
        pacman.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=256
    )
    instance = pacman.generate_instance(6, seed=1)
    probs = pacman.pretrained_safety_probs(instance, seed=1)

    def run():
        lobster_train_step(
            engine,
            lambda db, p: pacman.populate_database(db, instance, p),
            "success",
            probs,
        )

    benchmark.pedantic(run, rounds=3, iterations=1)

"""The perf/ measurement layer: trial statistics, records, the gate.

What keeps the repo's speedup claims honest:

* **Statistics** — the t-quantile table matches the published values,
  confidence intervals shrink with sample count, and ratio/geomean
  propagation behaves under scaling;
* **Records** — ``BENCH_*.json`` round-trips exactly, and a tampered
  blob is rejected with a :class:`repro.BenchRecordError` naming every
  problem;
* **Gate** — an injected 2× slowdown fails, re-running the same samples
  passes, noise within the confidence interval passes, and the explicit
  non-comparisons (new benchmark, missing benchmark, foreign host,
  non-time unit) come out as their own verdicts;
* **Characterization** — the workload sketch is a pure function of the
  seeded inputs (two runs, identical tables).
"""

from __future__ import annotations

import json
import math

import pytest

from repro import BenchRecordError
from repro.perf import (
    BenchmarkResult,
    SuiteRecord,
    check_record,
    check_records,
    environment_fingerprint,
    geomean_ratio,
    load_record,
    ratio_of,
    record_path,
    summarize,
    t_quantile,
    validate_record,
    write_record,
)
from repro.perf.record import host_key
from repro.perf.stats import Ratio


# ---------------------------------------------------------------------------
# stats: t-quantiles, summarize, ratios


class TestTQuantile:
    def test_matches_published_two_sided_95(self):
        # Standard two-sided 95% values from any t table.
        assert t_quantile(1) == pytest.approx(12.706, abs=1e-3)
        assert t_quantile(2) == pytest.approx(4.303, abs=1e-3)
        assert t_quantile(5) == pytest.approx(2.571, abs=1e-3)
        assert t_quantile(10) == pytest.approx(2.228, abs=1e-3)
        assert t_quantile(30) == pytest.approx(2.042, abs=1e-3)

    def test_large_df_approaches_normal(self):
        assert t_quantile(2000) == pytest.approx(1.960, abs=1e-3)

    def test_other_confidences(self):
        assert t_quantile(10, confidence=0.90) == pytest.approx(1.812, abs=1e-3)
        assert t_quantile(10, confidence=0.99) == pytest.approx(3.169, abs=1e-3)

    def test_lookup_is_conservative_between_table_rows(self):
        # df=45 falls between table rows 40 and 60; the conservative
        # lookup returns the wider (lower-df) quantile.
        assert t_quantile(45) == t_quantile(40)
        assert t_quantile(45) >= t_quantile(60)

    def test_monotone_nonincreasing_in_df(self):
        values = [t_quantile(df) for df in range(1, 200)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            t_quantile(0)
        with pytest.raises(ValueError):
            t_quantile(5, confidence=0.80)


class TestSummarize:
    def test_known_values(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.n == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.stddev == pytest.approx(1.0)
        # ci = t(df=2) * s / sqrt(3)
        assert stats.ci == pytest.approx(4.303 / math.sqrt(3), rel=1e-3)
        assert stats.lo == pytest.approx(stats.mean - stats.ci)
        assert stats.hi == pytest.approx(stats.mean + stats.ci)

    def test_ci_shrinks_with_sample_count(self):
        # Same spread, more samples -> tighter interval (both the
        # 1/sqrt(n) factor and the t-quantile shrink).
        base = [0.9, 1.1]
        widths = [summarize(base * k).ci for k in (1, 2, 8, 32)]
        assert all(a > b for a, b in zip(widths, widths[1:]))

    def test_warmups_discarded(self):
        stats = summarize([100.0, 1.0, 1.0, 1.0], warmups=1)
        assert stats.n == 3
        assert stats.mean == pytest.approx(1.0)

    def test_single_sample_has_zero_ci(self):
        stats = summarize([2.5])
        assert stats.n == 1
        assert stats.ci == 0.0
        assert stats.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], warmups=1)


class TestRatios:
    def test_ratio_of_point_value(self):
        baseline = summarize([2.0, 2.0, 2.0])
        ours = summarize([1.0, 1.0, 1.0])
        ratio = ratio_of(baseline, ours)
        assert ratio.ok
        assert ratio.value == pytest.approx(2.0)
        # Zero spread on both sides -> degenerate (tight) interval.
        assert ratio.lo == pytest.approx(2.0)
        assert ratio.hi == pytest.approx(2.0)

    def test_noise_widens_the_interval(self):
        quiet = ratio_of(summarize([2.0, 2.0, 2.0]), summarize([1.0, 1.0, 1.0]))
        noisy = ratio_of(summarize([1.5, 2.0, 2.5]), summarize([0.8, 1.0, 1.2]))
        assert (noisy.hi - noisy.lo) > (quiet.hi - quiet.lo)
        assert noisy.lo < 2.0 < noisy.hi

    def test_zero_denominator_is_typed_not_crash(self):
        ratio = ratio_of(summarize([1.0]), summarize([0.0]))
        assert not ratio.ok
        assert ratio.status == "zero-denominator"
        assert str(ratio) == "-"

    def test_geomean_of_reciprocals_is_one(self):
        ratios = [
            ratio_of(summarize([2.0] * 3), summarize([1.0] * 3)),
            ratio_of(summarize([1.0] * 3), summarize([2.0] * 3)),
        ]
        geomean = geomean_ratio(ratios)
        assert geomean.ok
        assert geomean.value == pytest.approx(1.0)

    def test_geomean_skips_non_ok_and_empty_is_typed(self):
        good = ratio_of(summarize([3.0] * 3), summarize([1.0] * 3))
        bad = Ratio(None, status="baseline-oom")
        geomean = geomean_ratio([good, bad])
        assert geomean.ok and geomean.value == pytest.approx(3.0)
        empty = geomean_ratio([bad])
        assert not empty.ok and empty.status == "empty"


# ---------------------------------------------------------------------------
# record: schema round-trip and validation


def make_record(suite="demo", samples=(1.0, 1.1, 0.9), unit="s", name="tc/lobster"):
    record = SuiteRecord(
        suite=suite,
        created="2026-08-08T12:00:00",
        environment=environment_fingerprint("0.0-test"),
    )
    record.add(
        BenchmarkResult(
            name=name,
            samples=list(samples),
            unit=unit,
            warmups=1,
            metrics={"busy_seconds": 0.5, "kernel_launches": 17.0},
            attrs={"edges": 100, "engine": "lobster"},
        )
    )
    return record


class TestRecordRoundTrip:
    def test_write_load_identity(self, tmp_path):
        record = make_record()
        path = record_path(tmp_path, record.suite)
        assert path.name == "BENCH_demo.json"
        write_record(record, path)
        loaded = load_record(path)
        assert loaded.suite == record.suite
        assert loaded.created == record.created
        assert loaded.environment == record.environment
        bench = loaded.get("tc/lobster")
        assert bench is not None
        assert bench.samples == [1.0, 1.1, 0.9]
        assert bench.unit == "s"
        assert bench.warmups == 1
        assert bench.metrics == {"busy_seconds": 0.5, "kernel_launches": 17.0}
        assert bench.attrs == {"edges": 100, "engine": "lobster"}

    def test_serialization_is_deterministic(self, tmp_path):
        record = make_record()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_record(record, a)
        write_record(record, b)
        assert a.read_text() == b.read_text()

    def test_embedded_stats_match_summarize(self, tmp_path):
        record = make_record(samples=(1.0, 2.0, 3.0))
        path = record_path(tmp_path, record.suite)
        write_record(record, path)
        data = json.loads(path.read_text())
        derived = data["benchmarks"][0]["stats"]
        stats = summarize([1.0, 2.0, 3.0])
        assert derived["n"] == 3
        assert derived["mean"] == pytest.approx(stats.mean)
        assert derived["ci95"] == pytest.approx(stats.ci)

    def test_add_merges_samples_for_same_name(self):
        record = make_record(samples=(1.0,))
        record.add(BenchmarkResult(name="tc/lobster", samples=[2.0]))
        assert len(record.benchmarks) == 1
        assert record.get("tc/lobster").samples == [1.0, 2.0]


class TestValidation:
    def test_tampered_unit_rejected(self, tmp_path):
        record = make_record()
        path = record_path(tmp_path, record.suite)
        write_record(record, path)
        data = json.loads(path.read_text())
        data["benchmarks"][0]["unit"] = "furlongs"
        path.write_text(json.dumps(data))
        with pytest.raises(BenchRecordError, match="unit"):
            load_record(path)

    def test_future_schema_rejected(self):
        record = make_record()
        data = record.to_dict()
        data["schema_version"] = 999
        with pytest.raises(BenchRecordError, match="schema_version"):
            validate_record(data)

    def test_non_numeric_samples_rejected(self):
        data = make_record().to_dict()
        data["benchmarks"][0]["samples"] = [1.0, "fast"]
        with pytest.raises(BenchRecordError, match="samples"):
            validate_record(data)

    def test_all_problems_reported_at_once(self):
        data = make_record().to_dict()
        data["benchmarks"][0]["samples"] = [-1.0]
        data["benchmarks"][0]["unit"] = "furlongs"
        with pytest.raises(BenchRecordError) as excinfo:
            validate_record(data)
        message = str(excinfo.value)
        assert "unit" in message and "samples" in message

    def test_unknown_unit_refused_at_write(self, tmp_path):
        record = make_record(unit="s")
        record.benchmarks[0].unit = "furlongs"
        with pytest.raises(BenchRecordError):
            write_record(record, tmp_path / "x.json")

    def test_fraction_unit_is_valid(self, tmp_path):
        record = make_record(samples=(0.87,), unit="fraction", name="accuracy")
        path = record_path(tmp_path, record.suite)
        write_record(record, path)
        assert load_record(path).get("accuracy").unit == "fraction"


# ---------------------------------------------------------------------------
# regress: the gate


def suite_with(samples_by_name, unit="s", suite="demo", machine=None):
    environment = environment_fingerprint("0.0-test")
    if machine is not None:
        environment["machine"] = machine
    record = SuiteRecord(
        suite=suite, created="2026-08-08T12:00:00", environment=environment
    )
    for name, samples in samples_by_name.items():
        record.add(BenchmarkResult(name=name, samples=list(samples), unit=unit))
    return record


class TestGate:
    def test_wall_microbenchmarks_below_floor_are_not_gated(self):
        # A 2ms wall cell swings several-x on host state alone; even an
        # injected slowdown must not gate it.
        baseline = suite_with({"micro": [0.002, 0.0021]})
        current = suite_with({"micro": [0.007, 0.008]})
        report = check_record(baseline, current, slowdown_factor=2.0)
        assert report.passed
        assert report.verdicts[0].status == "informational"
        assert "gate floor" in report.verdicts[0].detail

    def test_wall_floor_does_not_hide_a_genuine_blowup(self):
        # 2ms -> 200ms crosses the floor on the current side: gated.
        baseline = suite_with({"micro": [0.002, 0.0021]})
        current = suite_with({"micro": [0.2, 0.21]})
        report = check_record(baseline, current)
        assert not report.passed
        assert report.verdicts[0].status == "regressed"

    def test_modeled_clock_is_gated_below_the_wall_floor(self):
        # The simulator clock is deterministic — scale does not matter.
        baseline = suite_with({"micro": [0.002, 0.002]}, unit="modeled_s")
        current = suite_with({"micro": [0.004, 0.004]}, unit="modeled_s")
        report = check_record(baseline, current)
        assert not report.passed
        assert report.verdicts[0].status == "regressed"

    def test_same_samples_pass(self):
        baseline = suite_with({"tc": [1.0, 1.05, 0.95]})
        report = check_record(baseline, suite_with({"tc": [1.0, 1.05, 0.95]}))
        assert report.passed
        assert report.verdicts[0].status == "ok"

    def test_injected_2x_slowdown_fails(self):
        baseline = suite_with({"tc": [1.0, 1.05, 0.95]})
        current = suite_with({"tc": [1.0, 1.05, 0.95]})
        report = check_record(baseline, current, slowdown_factor=2.0)
        assert not report.passed
        [verdict] = report.regressions
        assert verdict.benchmark == "tc"
        assert verdict.slowdown.value == pytest.approx(2.0, rel=0.05)

    def test_noise_within_ci_passes(self):
        # 10% jitter around the same mean: the slowdown interval
        # straddles 1, so the optimistic bound stays under threshold.
        baseline = suite_with({"tc": [0.9, 1.0, 1.1, 1.0]})
        current = suite_with({"tc": [1.05, 0.95, 1.1, 0.9]})
        report = check_record(baseline, current)
        assert report.passed

    def test_genuine_slowdown_beyond_noise_fails(self):
        baseline = suite_with({"tc": [1.0, 1.01, 0.99, 1.0]})
        current = suite_with({"tc": [2.0, 2.02, 1.98, 2.0]})
        report = check_record(baseline, current)
        assert not report.passed

    def test_improvement_is_reported_not_failed(self):
        baseline = suite_with({"tc": [2.0, 2.0, 2.0]})
        report = check_record(baseline, suite_with({"tc": [1.0, 1.0, 1.0]}))
        assert report.passed
        assert report.verdicts[0].status == "improved"

    def test_new_benchmark_is_explicit_and_passes(self):
        baseline = suite_with({"tc": [1.0]})
        current = suite_with({"tc": [1.0], "cspa": [1.0]})
        report = check_record(baseline, current)
        assert report.passed
        by_name = {v.benchmark: v.status for v in report.verdicts}
        assert by_name["cspa"] == "new"

    def test_missing_benchmark_is_explicit_and_passes(self):
        baseline = suite_with({"tc": [1.0], "gone": [1.0]})
        report = check_record(baseline, suite_with({"tc": [1.0]}))
        assert report.passed
        by_name = {v.benchmark: v.status for v in report.verdicts}
        assert by_name["gone"] == "missing"

    def test_wall_clock_not_gated_across_hosts(self):
        baseline = suite_with({"tc": [1.0]}, machine="host-a")
        current = suite_with({"tc": [10.0]}, machine="host-b")
        report = check_record(baseline, current)
        assert report.passed
        assert report.verdicts[0].status == "foreign-host"

    def test_modeled_clock_gated_across_hosts(self):
        baseline = suite_with({"tc": [1.0]}, unit="modeled_s", machine="host-a")
        current = suite_with({"tc": [10.0]}, unit="modeled_s", machine="host-b")
        report = check_record(baseline, current)
        assert not report.passed

    def test_fraction_unit_is_informational(self):
        baseline = suite_with({"accuracy": [0.9]}, unit="fraction")
        report = check_record(baseline, suite_with({"accuracy": [0.5]}, unit="fraction"))
        assert report.passed
        assert report.verdicts[0].status == "informational"

    def test_suite_without_baseline_is_all_new(self):
        currents = {"fresh": suite_with({"tc": [1.0]}, suite="fresh")}
        [report] = check_records({}, currents)
        assert report.passed
        assert all(v.status == "new" for v in report.verdicts)

    def test_host_key_distinguishes_machines(self):
        a = environment_fingerprint("0.0-test")
        b = dict(a, machine="elsewhere")
        assert host_key(a) != host_key(b)
        assert host_key(a) == host_key(dict(a))


# ---------------------------------------------------------------------------
# harness: Measurement / timed / speedup (imported from benchmarks/)


@pytest.fixture()
def harness(monkeypatch, tmp_path):
    import sys

    bench_dir = str((__import__("pathlib").Path(__file__).parent.parent / "benchmarks"))
    monkeypatch.syspath_prepend(bench_dir)
    import _harness

    # Redirect the atexit flush away from benchmarks/results/.
    monkeypatch.setenv("LOBSTER_BENCH_FRAGMENTS", str(tmp_path))
    yield _harness
    _harness._RECORDS.clear()


class TestHarness:
    def test_timed_collects_trials_and_discards_warmups(self, harness):
        calls = []
        measurement = harness.timed(lambda: calls.append(1), trials=3, warmups=2)
        assert len(calls) == 5
        assert measurement.status == "ok"
        assert len(measurement.samples) == 3
        assert measurement.warmups == 2
        assert measurement.seconds is not None

    def test_timed_env_defaults(self, harness, monkeypatch):
        monkeypatch.setenv("LOBSTER_BENCH_TRIALS", "4")
        monkeypatch.setenv("LOBSTER_BENCH_WARMUPS", "1")
        calls = []
        measurement = harness.timed(lambda: calls.append(1))
        assert len(calls) == 5
        assert len(measurement.samples) == 4

    def test_timed_setup_runs_fresh_per_trial_and_feeds_fn(self, harness):
        built, consumed = [], []

        def setup():
            built.append(object())
            return built[-1]

        measurement = harness.timed(consumed.append, trials=2, warmups=1, setup=setup)
        # One fresh state per run (warmups included), each handed to fn.
        assert len(built) == 3
        assert consumed == built
        assert len(measurement.samples) == 2

    def test_timed_maps_oom_and_timeout_to_status(self, harness):
        from repro.errors import DeviceOutOfMemory, EvaluationTimeout

        def boom():
            raise DeviceOutOfMemory("synthetic")

        def slow():
            raise EvaluationTimeout("synthetic")

        assert harness.timed(boom, trials=2).status == "oom"
        assert harness.timed(slow, trials=2).status == "timeout"

    def test_speedup_is_typed_never_a_string(self, harness):
        ok = harness.Measurement(samples=[2.0, 2.0])
        fast = harness.Measurement(samples=[1.0, 1.0])
        oom = harness.Measurement(status="oom")
        ratio = harness.speedup(ok, fast)
        assert isinstance(ratio, Ratio)
        assert ratio.ok and ratio.value == pytest.approx(2.0)
        broken = harness.speedup(oom, fast)
        assert not broken.ok
        assert broken.status == "baseline-oom"
        assert str(broken) == "-"

    def test_report_accumulates_and_flushes_fragments(self, harness, tmp_path):
        harness.report(
            "unittest-suite", "cell/a",
            harness.Measurement(samples=[0.5, 0.6], warmups=1),
            engine="lobster",
        )
        harness.report(
            "unittest-suite", "cell/modeled", samples=[0.25], unit="modeled_s"
        )
        harness._flush_records()
        loaded = load_record(tmp_path / "BENCH_unittest-suite.json")
        assert loaded.get("cell/a").samples == [0.5, 0.6]
        assert loaded.get("cell/modeled").unit == "modeled_s"


# ---------------------------------------------------------------------------
# characterization: stable on a fixed seed


def test_characterization_is_deterministic():
    from repro.perf import characterize

    workloads = dict(list(characterize.default_workloads().items())[:2])
    first = characterize.characterize_workloads(workloads)
    second = characterize.characterize_workloads(workloads)
    assert [c.to_dict() for c in first] == [c.to_dict() for c in second]
    for character in first:
        assert character.edb_rows > 0
        assert character.idb_rows > 0
        assert character.iterations >= 1
        assert 0.0 <= character.key_skew <= 1.0
        assert 0.0 <= character.exchange_fraction <= 1.0
        assert 0.0 <= character.jit_coverage <= 1.0

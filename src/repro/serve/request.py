"""Requests, SLO classes, and outcomes — the serving layer's vocabulary.

A :class:`Request` is one timestamped unit of online traffic: a database
to evaluate through an engine's compiled program, carrying the SLO class
it arrived under.  Requests are *open-loop*: arrival times come from the
load generator (or the caller), not from when the scheduler gets around
to them, so overload manifests as queueing delay rather than as a
slowed-down clock.

Every request ends in exactly one :class:`Outcome` — ``completed``,
``rejected`` (admission control turned it away), or ``shed`` (admitted,
but its deadline expired before service).  There is no silent-drop
state: the scheduler's accounting invariant is
``submitted == completed + rejected + shed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # circular-import guard: engine imports nothing from serve
    from ..runtime.database import Database
    from ..runtime.engine import ExecutionResult, LobsterEngine

__all__ = [
    "COMPLETED",
    "REJECTED",
    "SHED",
    "Outcome",
    "Request",
    "SLOClass",
    "default_slo_classes",
]

#: Outcome statuses (plain strings so outcomes serialize trivially).
COMPLETED = "completed"
REJECTED = "rejected"
SHED = "shed"


@dataclass(frozen=True)
class SLOClass:
    """One latency class and its scheduling parameters.

    ``deadline_s`` is the end-to-end latency objective measured from
    arrival; a request still queued past it is shed.  ``max_batch_delay_s``
    bounds how long the scheduler may hold the first request of a
    micro-batch waiting for peers, and ``max_batch_size`` bounds the
    coalesced batch.  ``queue_limit`` is the admission controller's
    per-class depth bound; ``priority`` orders classes at dispatch
    (lower dispatches first).
    """

    name: str
    deadline_s: float
    max_batch_delay_s: float
    max_batch_size: int = 8
    queue_limit: int = 128
    priority: int = 0

    def __post_init__(self):
        if self.deadline_s <= 0 or self.max_batch_delay_s < 0:
            raise ValueError("deadline must be > 0 and batch delay >= 0")
        if self.max_batch_size < 1 or self.queue_limit < 1:
            raise ValueError("max_batch_size and queue_limit must be >= 1")


def default_slo_classes() -> dict[str, SLOClass]:
    """The stock two-class setup: latency-sensitive ``interactive``
    traffic ahead of throughput-oriented ``batch`` traffic."""
    return {
        "interactive": SLOClass(
            "interactive",
            deadline_s=0.05,
            max_batch_delay_s=0.002,
            max_batch_size=4,
            queue_limit=64,
            priority=0,
        ),
        "batch": SLOClass(
            "batch",
            deadline_s=1.0,
            max_batch_delay_s=0.02,
            max_batch_size=16,
            queue_limit=256,
            priority=1,
        ),
    }


@dataclass
class Request:
    """One unit of online work: evaluate ``database`` through
    ``engine``'s compiled program under SLO class ``slo``."""

    engine: "LobsterEngine"
    database: "Database"
    slo: str = "interactive"
    #: Arrival timestamp on the serve clock (simulated seconds).
    arrival_s: float = 0.0
    #: Per-request deadline override; ``None`` uses the class deadline.
    deadline_s: float | None = None
    #: Assigned by the scheduler at submit time.
    ticket: int | None = None
    #: Caller payload carried through to the outcome (e.g. the input
    #: facts, so a verifier can replay the request solo).
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def program_key(self) -> str:
        """The micro-batching compatibility key
        (:attr:`LobsterEngine.program_key`): a whole micro-batch runs
        through one session's engine, so only requests whose engines
        share the compiled artifact *and* execution budget may share a
        batch."""
        return self.engine.program_key

    def deadline_at(self, slo_class: SLOClass) -> float:
        """Absolute serve-clock time at which this request expires."""
        deadline = self.deadline_s if self.deadline_s is not None else slo_class.deadline_s
        return self.arrival_s + deadline


@dataclass
class Outcome:
    """The terminal record of one request (exactly one per ticket)."""

    ticket: int
    status: str  # COMPLETED | REJECTED | SHED
    slo: str
    arrival_s: float
    #: Why a non-completed request ended (admission reason, deadline).
    reason: str | None = None
    #: Dispatch time on the serve clock (completed requests only).
    start_s: float | None = None
    #: Completion time on the serve clock (completed requests only).
    finish_s: float | None = None
    #: Modeled device occupancy of this request's run.
    service_s: float = 0.0
    #: Device the micro-batch ran on, and how many requests shared it.
    device_index: int | None = None
    batch_size: int = 0
    result: "ExecutionResult | None" = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def queue_wait_s(self) -> float:
        if self.start_s is None:
            return 0.0
        return self.start_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency (arrival -> completion) on the serve clock."""
        if self.finish_s is None:
            return 0.0
        return self.finish_s - self.arrival_s

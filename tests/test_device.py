"""VirtualDevice memory, transfer, and profile model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DeviceOutOfMemory, VirtualDevice
from repro.gpu.device import DeviceProfile


class TestAllocation:
    def test_allocate_returns_requested_shape(self):
        device = VirtualDevice()
        buffer = device.allocate(100, np.int64)
        assert buffer.shape == (100,) and buffer.dtype == np.int64

    def test_capacity_enforced(self):
        device = VirtualDevice(capacity_bytes=1000)
        with pytest.raises(DeviceOutOfMemory):
            device.allocate(1000, np.int64)  # 8000 bytes

    def test_free_list_reuse(self):
        device = VirtualDevice(reuse_buffers=True)
        first = device.allocate(64, np.int64)
        device.release(first)
        second = device.allocate(64, np.int64)
        assert device.profile.reused_allocations == 1
        assert second.base is first or second is first

    def test_no_reuse_when_disabled(self):
        device = VirtualDevice(reuse_buffers=False)
        first = device.allocate(64, np.int64)
        device.release(first)
        device.allocate(64, np.int64)
        assert device.profile.reused_allocations == 0

    def test_peak_tracking(self):
        device = VirtualDevice(capacity_bytes=10_000_000)
        device.allocate(100, np.int64)
        device.allocate(200, np.int64)
        assert device.profile.peak_arena_bytes >= 2400

    def test_bucket_rounding(self):
        assert VirtualDevice._bucket(100) == 128
        assert VirtualDevice._bucket(128) == 128
        assert VirtualDevice._bucket(0) == 0

    def test_reset_arena(self):
        device = VirtualDevice()
        buffer = device.allocate(10, np.int64)
        device.release(buffer)
        device.reset_arena()
        assert device.live_bytes == 0


class TestStatics:
    def test_static_roundtrip(self):
        device = VirtualDevice()
        device.set_static("k", 42)
        assert device.get_static("k") == 42
        device.clear_statics()
        assert device.get_static("k") is None


class TestTransferModel:
    def test_cost_is_latency_plus_bandwidth(self):
        device = VirtualDevice(
            bandwidth_bytes_per_s=1e9, transfer_latency_s=1e-5
        )
        assert device.transfer_cost(1e9) == pytest.approx(1.0 + 1e-5)

    def test_record_transfer_accumulates(self):
        device = VirtualDevice()
        device.record_transfer(1000, to_device=True)
        device.record_transfer(2000, to_device=False)
        assert device.profile.host_to_device_transfers == 1
        assert device.profile.device_to_host_transfers == 1
        assert device.profile.transfer_bytes == 3000
        assert device.profile.transfer_seconds > 0


class TestProfile:
    def test_record_instruction(self):
        profile = DeviceProfile()
        profile.record_instruction("Probe")
        profile.record_instruction("Probe")
        assert profile.instruction_counts["Probe"] == 2
        assert profile.kernel_launches == 2

    def test_reset(self):
        profile = DeviceProfile()
        profile.record_instruction("Load")
        profile.reset()
        assert profile.kernel_launches == 0
        assert profile.instruction_counts == {}

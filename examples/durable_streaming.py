"""Durable streaming views: checkpoint + WAL replay across a crash.

A standing transitive-closure query is maintained over a sliding window
of probabilistic edges, with every tick routed through a
RecoveryManager: the tick delta is appended to a CRC-framed write-ahead
log *before* it is applied, and every few ticks the full state
(database, view, window, subscription cursors) is snapshotted into an
atomically swapped checkpoint.  Halfway through we "kill the process" —
simply abandon every in-memory object — and ``recover()`` rebuilds the
view from the newest checkpoint plus a verified replay of the WAL tail.
The recovered run finishes the stream and lands on exactly the state an
uninterrupted run would have produced; the named subscription resumes
from its durable cursor without losing or re-seeing a single delta.

Run:  PYTHONPATH=src python examples/durable_streaming.py
"""

import tempfile

from repro import LobsterEngine, MaterializedView, RecoveryManager, recover
from repro.stream import RelationStream, SlidingWindow

PROGRAM = """
rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
query path
"""

EDGES = [(i, i + 1) for i in range(12)] + [(0, 5), (3, 9), (2, 7)]


def setup():
    """Engine + feed for one incarnation of the process.  The feed is a
    deterministic function of the tick (seeded), which is what lets
    recovery *verify* the WAL against the source during replay."""
    engine = LobsterEngine(PROGRAM, provenance="minmaxprob")
    stream = RelationStream("edge", EDGES, per_tick=3, seed=7,
                            prob_range=(0.5, 0.95))
    return engine, SlidingWindow(stream, size=4)


state_dir = tempfile.mkdtemp(prefix="lobster-durable-")
print(f"durable state in {state_dir}")

# ----- first incarnation: run 5 ticks, checkpoint every 3, then "die".
engine, feed = setup()
view = MaterializedView(engine, name="tc")
manager = RecoveryManager(state_dir, checkpoint_every=3)
manager.register("tc", view, feed)

consumer = view.subscribe(name="dashboard")
for _ in range(5):
    manager.apply("tc", feed.advance())
seen = [delta.tick for delta in consumer.poll()]  # cursor logged durably
print(f"incarnation 1: applied {view.ticks_applied} ticks, "
      f"consumer saw deltas {seen}")

del engine, feed, view, manager, consumer  # kill -9

# ----- second incarnation: recover and finish the stream.
manager, views, info = recover(state_dir, {"tc": setup()})
view = views["tc"]
print(f"recovered from checkpoint {info.checkpoint_seq}: "
      f"replayed {info.replayed_deltas} WAL deltas "
      f"({info.truncated_bytes} torn bytes truncated), "
      f"view back at tick {view.ticks_applied}")

consumer = view.resubscribe("dashboard")  # durable cursor, exactly-once
feed = manager.entry("tc").feed
for _ in range(5):
    manager.apply("tc", feed.advance())
seen += [delta.tick for delta in consumer.poll()]
assert seen == list(range(10)), "no delta lost, none duplicated"
print(f"incarnation 2: finished at tick {view.ticks_applied}, "
      f"consumer saw every delta exactly once: {seen}")

# ----- the uninterrupted reference: bitwise-identical results.
ref_engine, ref_feed = setup()
reference = MaterializedView(ref_engine, name="tc")
for _ in range(10):
    reference.apply(ref_feed.advance())
assert view.result("path") == reference.result("path")
print(f"recovered view == uninterrupted run: "
      f"{len(view.result('path'))} paths, bit-identical probabilities")

# The checkpoint format doubles as a database interchange.
export = f"{state_dir}/tc.lobsterdb"
engine2 = views["tc"].engine
engine2.export_database(view.database, export)
imported = LobsterEngine(PROGRAM, provenance="minmaxprob").import_database(export)
print(f"export/import round trip: {len(imported.result('path').rows())} "
      "derived paths preserved")

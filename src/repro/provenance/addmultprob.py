"""The ``add-mult-prob`` semiring.

Tags are non-negative reals; conjunction multiplies, disjunction adds —
the sum-of-products weighted model count *without* disjointness correction.
Appropriate for programs whose derivations are mutually exclusive by
construction (the paper uses it for HWF-style grammar evaluation).  Output
probabilities are clamped to [0, 1].
"""

from __future__ import annotations

import numpy as np

from .base import SATURATION_EPS, Provenance
from ..gpu.kernels import segment_reduce_sum

_DTYPE = np.dtype(np.float64)


class AddMultProbProvenance(Provenance):
    """Weighted derivation counting: ⊗ = ×, ⊕ = +."""

    name = "addmultprob"

    def tag_dtype(self) -> np.dtype:
        return _DTYPE

    def input_tags(self, fact_ids: np.ndarray) -> np.ndarray:
        fact_ids = np.asarray(fact_ids, dtype=np.int64)
        out = np.ones(len(fact_ids), dtype=_DTYPE)
        tagged = fact_ids >= 0
        out[tagged] = self.input_probs[fact_ids[tagged]]
        return out

    def one_tags(self, n: int) -> np.ndarray:
        return np.ones(n, dtype=_DTYPE)

    def otimes(self, a, b) -> np.ndarray:
        return np.multiply(a, b)

    def oplus_reduce(self, tags, segment_ids, nseg) -> np.ndarray:
        return segment_reduce_sum(tags, segment_ids, nseg).astype(_DTYPE)

    def merge_existing(self, old, new):
        merged = old + new
        improved = new > SATURATION_EPS
        return merged, improved

    def prob(self, tags) -> np.ndarray:
        return np.clip(np.asarray(tags, dtype=np.float64), 0.0, 1.0)

    def is_absorbing_zero(self, tags) -> np.ndarray:
        return np.asarray(tags) <= 0.0

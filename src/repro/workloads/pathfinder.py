"""The Pathfinder task (§2): are two dots connected by dashed lines?

An image is discretized onto an n x n lattice; a perception model scores
each lattice edge ("is there a dash connecting these two cells?") and
each cell ("is there an endpoint dot here?"); the Datalog program computes
reachability over the predicted graph.

Synthetic instances replace the Long Range Arena image corpus: a
self-avoiding lattice walk provides the positive dash trail (plus
distractor trails), and per-edge feature vectors — whose distribution
depends on dash presence — stand in for pixel patches.  A pretrained
perception model is simulated by logistic noise around the ground truth,
with quality controlled by ``noise``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The Fig. 3c program (path + endpoint connectivity).
PROGRAM = """
type Cell = u32
type edge(x: Cell, y: Cell)
type is_endpoint(x: Cell)

rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
rel endpoints_connected() :- is_endpoint(x), is_endpoint(y), path(x, y), x != y.
query endpoints_connected
"""

FEATURE_DIM = 8


@dataclass
class PathfinderInstance:
    """One synthetic Pathfinder sample."""

    grid: int
    lattice_edges: list[tuple[int, int]]  # all candidate edges (both dirs)
    dash_present: np.ndarray  # bool per lattice edge
    endpoints: tuple[int, int]
    label: bool
    edge_features: np.ndarray  # (n_edges, FEATURE_DIM)


def lattice_edges(grid: int) -> list[tuple[int, int]]:
    """Directed 4-neighbour lattice adjacency over grid cells."""
    edges: list[tuple[int, int]] = []
    for x in range(grid):
        for y in range(grid):
            cell = x * grid + y
            if x + 1 < grid:
                edges.append((cell, cell + grid))
                edges.append((cell + grid, cell))
            if y + 1 < grid:
                edges.append((cell, cell + 1))
                edges.append((cell + 1, cell))
    return edges


def _self_avoiding_walk(grid: int, length: int, rng: np.random.Generator) -> list[int]:
    start = int(rng.integers(0, grid * grid))
    walk = [start]
    visited = {start}
    for _ in range(length):
        x, y = divmod(walk[-1], grid)
        neighbours = []
        for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
            if 0 <= nx < grid and 0 <= ny < grid and nx * grid + ny not in visited:
                neighbours.append(nx * grid + ny)
        if not neighbours:
            break
        step = int(rng.choice(neighbours))
        walk.append(step)
        visited.add(step)
    return walk


def generate_instance(
    grid: int, seed: int, positive: bool | None = None
) -> PathfinderInstance:
    """Generate one sample; ``positive`` forces the label when given."""
    rng = np.random.default_rng(seed)
    if positive is None:
        positive = bool(rng.integers(0, 2))

    edges = lattice_edges(grid)
    edge_index = {edge: i for i, edge in enumerate(edges)}
    present = np.zeros(len(edges), dtype=bool)

    def mark(walk: list[int]) -> None:
        for a, b in zip(walk, walk[1:]):
            present[edge_index[(a, b)]] = True
            present[edge_index[(b, a)]] = True

    target_length = max(3, grid * 2 // 2 + int(rng.integers(0, grid)))
    main = _self_avoiding_walk(grid, target_length, rng)
    mark(main)
    # Distractor trail, kept away from the main walk's cells.
    distractor = _self_avoiding_walk(grid, target_length, rng)
    distractor = [c for c in distractor if c not in set(main)]
    if len(distractor) >= 2:
        trimmed: list[int] = [distractor[0]]
        for cell in distractor[1:]:
            if (trimmed[-1], cell) in edge_index:
                trimmed.append(cell)
        if len(trimmed) >= 2:
            mark(trimmed)

    if positive:
        endpoints = (main[0], main[-1])
    else:
        # Endpoint off the main trail: connectivity should fail.
        off_trail = [c for c in range(grid * grid) if c not in set(main)]
        other = int(rng.choice(off_trail)) if off_trail else main[0]
        endpoints = (main[0], other)

    # Features: dash-present edges draw from a shifted Gaussian.
    base = rng.normal(0.0, 1.0, size=(len(edges), FEATURE_DIM))
    base[present, 0] += 2.5
    base[present, 1] -= 1.5

    return PathfinderInstance(grid, edges, present, endpoints, positive, base)


def pretrained_edge_probs(
    instance: PathfinderInstance, noise: float = 0.1, seed: int = 0
) -> np.ndarray:
    """Simulate a converged CNN: confident, slightly noisy edge scores."""
    rng = np.random.default_rng(seed)
    logits = np.where(instance.dash_present, 3.0, -3.0)
    logits = logits + rng.normal(0.0, noise * 6.0, size=len(logits))
    return 1.0 / (1.0 + np.exp(-logits))


def populate_database(
    database,
    instance: PathfinderInstance,
    edge_probs: np.ndarray,
    min_prob: float = 0.0,
):
    """Load one instance into an engine database; returns edge fact ids.

    ``min_prob`` drops edges the model is confident are absent before they
    enter the symbolic engine — the standard input-pruning step of
    neurosymbolic pipelines (applied identically to every engine under
    comparison).  Returned fact ids align with ``instance.lattice_edges``;
    pruned edges get id −1.
    """
    edge_probs = np.asarray(edge_probs, dtype=np.float64)
    keep = np.flatnonzero(edge_probs >= min_prob)
    kept_edges = [instance.lattice_edges[i] for i in keep]
    kept_ids = database.add_facts("edge", kept_edges, probs=list(edge_probs[keep]))
    ids = np.full(len(edge_probs), -1, dtype=np.int64)
    ids[keep] = kept_ids
    database.add_facts(
        "is_endpoint", [(instance.endpoints[0],), (instance.endpoints[1],)]
    )
    return ids


def make_dataset(
    grid: int, n_samples: int, seed: int = 0
) -> list[PathfinderInstance]:
    return [
        generate_instance(grid, seed * 10_000 + i, positive=bool(i % 2))
        for i in range(n_samples)
    ]

"""Vectorized data-parallel primitives backing the APM instruction set.

Each function here corresponds to a GPU kernel in the paper's runtime
(Table 1).  All of them operate on whole columns with no per-row Python
control flow, which is the invariant APM is designed to guarantee: any
program composed of these primitives admits massively parallel execution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def exclusive_scan(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum (the APM ``scan`` instruction)."""
    out = np.empty_like(values)
    if len(values) == 0:
        return out
    out[0] = 0
    np.cumsum(values[:-1], out=out[1:])
    return out


def pack_rows(columns: Sequence[np.ndarray]) -> np.ndarray | None:
    """Pack integer rows into single uint64 sort keys when ranges permit.

    GPU sorts run fastest on packed radix keys; the same trick dominates
    here because a single-key argsort is several times cheaper than a
    general lexsort.  Returns None when any column is floating point or
    the combined key range overflows 64 bits.
    """
    if not columns:
        return None
    total_bits = 0
    shifted: list[np.ndarray] = []
    widths: list[int] = []
    for col in columns:
        col = np.asarray(col)
        if col.dtype.kind == "f":
            return None
        lo = col.min() if len(col) else 0
        hi = col.max() if len(col) else 0
        span = int(hi) - int(lo) + 1
        bits = max(span - 1, 1).bit_length()
        total_bits += bits
        if total_bits > 63:
            return None
        shifted.append((col - lo).astype(np.uint64))
        widths.append(bits)
    packed = shifted[0]
    for col, bits in zip(shifted[1:], widths[1:]):
        packed = (packed << np.uint64(bits)) | col
    return packed


def lex_rank(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Permutation that sorts rows of a columnar table lexicographically.

    Uses the packed-radix-key fast path when the rows fit in 64 bits;
    falls back to ``np.lexsort`` (whose last key is primary, hence the
    reversal) otherwise.
    """
    if not columns:
        return np.zeros(0, dtype=np.int64)
    n = len(columns[0])
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    packed = pack_rows(columns)
    if packed is not None:
        return np.argsort(packed, kind="stable")
    return np.lexsort(tuple(reversed([np.asarray(c) for c in columns])))


def sort_rows(columns: Sequence[np.ndarray]) -> tuple[list[np.ndarray], np.ndarray]:
    """Sort a columnar table; returns (sorted columns, permutation applied)."""
    order = lex_rank(columns)
    return [np.asarray(c)[order] for c in columns], order

def row_group_boundaries(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Boolean mask marking the first row of each run of equal sorted rows."""
    if not columns or len(columns[0]) == 0:
        return np.zeros(0, dtype=bool)
    n = len(columns[0])
    is_first = np.zeros(n, dtype=bool)
    is_first[0] = True
    for col in columns:
        col = np.asarray(col)
        is_first[1:] |= col[1:] != col[:-1]
    return is_first


def unique_rows(
    columns: Sequence[np.ndarray],
) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
    """Deduplicate a *sorted* columnar table (the ``unique`` instruction).

    Returns ``(unique columns, segment_ids, first_index_of_each_group)``
    where ``segment_ids[i]`` is the output row that input row ``i``
    collapsed into.  Tag reduction (``unique⟨⊕⟩``) is done by the caller via
    a segment reduction using ``segment_ids``.
    """
    is_first = row_group_boundaries(columns)
    segment_ids = np.cumsum(is_first) - 1
    firsts = np.flatnonzero(is_first)
    return [np.asarray(c)[firsts] for c in columns], segment_ids, firsts


def merge_sorted(
    left: Sequence[np.ndarray], right: Sequence[np.ndarray]
) -> tuple[list[np.ndarray], np.ndarray]:
    """Merge two lexicographically sorted tables (the ``merge`` instruction).

    Returns the merged (still sorted) columns and the permutation mapping
    concatenated input rows (left rows first) to output positions — callers
    use it to carry tags along.
    """
    concat = [np.concatenate([np.asarray(l), np.asarray(r)]) for l, r in zip(left, right)]
    order = lex_rank(concat)
    return [c[order] for c in concat], order


def gather(indices: np.ndarray, columns: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Row gather (the ``gather`` instruction)."""
    return [np.asarray(c)[indices] for c in columns]


def segment_reduce_max(values: np.ndarray, segment_ids: np.ndarray, nseg: int) -> np.ndarray:
    """Per-segment max of ``values``; segments must be sorted ascending."""
    out = np.full(nseg, -np.inf, dtype=np.float64)
    np.maximum.at(out, segment_ids, values.astype(np.float64))
    return out


def segment_reduce_min(values: np.ndarray, segment_ids: np.ndarray, nseg: int) -> np.ndarray:
    out = np.full(nseg, np.inf, dtype=np.float64)
    np.minimum.at(out, segment_ids, values.astype(np.float64))
    return out


def segment_reduce_sum(values: np.ndarray, segment_ids: np.ndarray, nseg: int) -> np.ndarray:
    out = np.zeros(nseg, dtype=np.float64)
    np.add.at(out, segment_ids, values.astype(np.float64))
    return out


def segment_argmax(values: np.ndarray, segment_ids: np.ndarray, nseg: int) -> np.ndarray:
    """Index (into ``values``) of the max element of each segment.

    Ties resolve to the earliest row, keeping results deterministic.
    """
    if nseg == 0:
        return np.zeros(0, dtype=np.int64)
    maxima = segment_reduce_max(values, segment_ids, nseg)
    is_max = values.astype(np.float64) == maxima[segment_ids]
    candidates = np.flatnonzero(is_max)
    out = np.full(nseg, np.iinfo(np.int64).max, dtype=np.int64)
    # minimum.at keeps the earliest candidate per segment, deterministically.
    np.minimum.at(out, segment_ids[candidates], candidates)
    out = np.where(out == np.iinfo(np.int64).max, -1, out)
    return out


def repeat_ranges(counts: np.ndarray, offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-row match counts into flat (row_id, slot_within_row) pairs.

    This is the standard "expand" step of a GPU hash join: after ``count``
    and ``scan``, each probe row ``i`` owns output slots
    ``offsets[i] .. offsets[i]+counts[i]``.  Returns ``(row_ids, ranks)``
    where ``ranks`` numbers each row's outputs from zero.
    """
    total = int(offsets[-1] + counts[-1]) if len(counts) else 0
    row_ids = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    positions = np.arange(total, dtype=np.int64)
    ranks = positions - offsets[row_ids]
    return row_ids, ranks


def compact(mask: np.ndarray, columns: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Stream-compact rows where ``mask`` is true (select's second half)."""
    idx = np.flatnonzero(mask)
    return [np.asarray(c)[idx] for c in columns]


def hash_columns(columns: Sequence[np.ndarray], width: int) -> np.ndarray:
    """64-bit mixing hash of the first ``width`` columns of a table.

    Uses a splitmix64-style mix per column, combined multiplicatively —
    cheap, stateless, and vectorized, like the device hash in the paper's
    runtime.
    """
    if width == 0:
        n = len(columns[0]) if columns else 0
        return np.zeros(n, dtype=np.uint64)
    acc = np.zeros(len(columns[0]), dtype=np.uint64)
    with np.errstate(over="ignore"):
        for k in range(width):
            col = np.asarray(columns[k])
            if col.dtype.kind == "f":
                col = col.view(np.uint64) if col.dtype.itemsize == 8 else col.astype(np.uint64)
            else:
                col = col.astype(np.uint64)
            z = col + np.uint64(0x9E3779B97F4A7C15)
            z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            z = z ^ (z >> np.uint64(31))
            acc = acc * np.uint64(0x100000001B3) + z
    return acc

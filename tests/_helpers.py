"""Shared test helpers.

A plain module (not ``conftest``) so test files can import it by name:
``from conftest import ...`` breaks under whole-repo collection, where
``benchmarks/conftest.py`` wins the ``conftest`` module slot.
"""

from __future__ import annotations

TC_PROGRAM = """
rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
query path
"""


def random_digraph(rng, n_nodes: int, n_edges: int):
    src = rng.integers(0, n_nodes, size=n_edges)
    dst = rng.integers(0, n_nodes, size=n_edges)
    return sorted({(int(a), int(b)) for a, b in zip(src, dst) if a != b})

"""The online scheduler: micro-batching dispatch over a device pool.

The scheduler turns the repo's batch machinery into a *servable* system.
It runs a deterministic discrete-event loop on a **serve clock** of
simulated seconds: request arrivals come timestamped from the load
generator (open loop), service times come from the device cost model
(:attr:`~repro.runtime.engine.ExecutionResult.service_seconds`), and the
host's wall clock never enters the accounting — so latency
distributions are exactly reproducible for one seed.

Per event-loop turn:

1. **admission** — arrivals at or before ``now`` go through the
   :class:`~repro.serve.admission.AdmissionController`; rejects become
   explicit ``rejected`` outcomes, admits join their micro-batch group
   (same SLO class + same compiled program, the ProgramCache key).
2. **dispatch** — while a group is ready (full batch, or the batching
   window closed on its oldest request) and a device is free, the
   scheduler sheds deadline-expired requests, acquires the least-loaded
   free device from the :class:`~repro.dist.pool.DevicePool`, and runs
   the batch through that program's :class:`~repro.runtime.session.
   LobsterSession` single-batch step (warm per-device interpreters, per
   -query timing).  Completion times fan out cumulatively along the
   batch; the device is busy until the batch drains.
3. **advance** — the clock jumps to the next arrival, group-ready time,
   or device-free time, whichever is first.

Every submitted request ends in exactly one outcome
(``completed`` / ``rejected`` / ``shed``); the accounting invariant
``submitted == completed + rejected + shed`` is checked at the end of
every :meth:`Scheduler.run`.

Hot programs re-plan transparently between micro-batches: a request
whose engine was built with ``adaptive=True`` routes each batch through
:meth:`LobsterEngine.run <repro.runtime.engine.LobsterEngine.run>`,
which picks the cost-based plan for the request database's statistics
bucket and invalidates it when observed cardinalities drift.  The swap
is visible in this registry as the ``session.replans`` counter; results
never change, only operator order.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from .admission import AdmissionController
from .metrics import Histogram, MetricsRegistry
from .queue import BatchGroup, RequestQueue
from .request import (
    COMPLETED,
    REJECTED,
    SHED,
    Outcome,
    Request,
    SLOClass,
    default_slo_classes,
)
from ..dist.pool import DevicePool
from ..errors import LobsterError
from ..obs import NULL_TRACER, Tracer
from ..runtime.session import LobsterSession

__all__ = ["Scheduler", "ServeReport"]


def seed_free_at(busy_until: list[float] | None, pool: DevicePool) -> list[float]:
    """Initial per-device free times on the serve clock: all zero, or a
    carried ``busy_until`` horizon from a preceding drain.  Shared by the
    request scheduler and the stream scheduler so the hand-the-horizons-
    back-and-forth protocol stays symmetric."""
    if busy_until is None:
        return [0.0] * len(pool)
    if len(busy_until) != len(pool):
        raise LobsterError(
            f"busy_until has {len(busy_until)} entries for a "
            f"{len(pool)}-device pool"
        )
    return [float(t) for t in busy_until]


@dataclass
class ServeReport:
    """Aggregate outcome of one :meth:`Scheduler.run` drain."""

    #: Terminal records in ticket order (exactly one per submission).
    #: These — and the counts/rates derived from them — cover *this*
    #: drain only.
    outcomes: list[Outcome]
    #: The scheduler's registry.  Lifetime-cumulative (Prometheus
    #: style): histograms and counters span every drain this scheduler
    #: has run, so on a reused scheduler ``latency_histogram``/``p99``
    #: aggregate across drains; per-drain numbers come from
    #: ``outcomes``.
    metrics: MetricsRegistry
    #: Serve-clock time at which the last device went idle.
    makespan_s: float
    pool_size: int
    classes: dict[str, SLOClass] = field(default_factory=dict)
    #: First arrival of this drain's stream — goodput is measured over
    #: the busy span ``makespan_s - stream_start_s``, so a stream whose
    #: timestamps start late (or a reused scheduler draining a
    #: continuing stream) is not diluted by the idle lead-in.
    stream_start_s: float = 0.0
    #: Serve-clock time each pool device is busy until after this drain
    #: — feed into the next ``run(busy_until=...)`` (or a
    #: StreamScheduler) to carry device occupancy across interleaved
    #: request/maintenance drains on one shared pool.
    busy_until: list[float] = field(default_factory=list)

    def _count(self, status: str) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == status)

    @property
    def submitted(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> int:
        return self._count(COMPLETED)

    @property
    def rejected(self) -> int:
        return self._count(REJECTED)

    @property
    def shed(self) -> int:
        return self._count(SHED)

    @property
    def shed_rate(self) -> float:
        """Fraction of submissions not served (rejected + shed)."""
        if not self.outcomes:
            return 0.0
        return (self.rejected + self.shed) / self.submitted

    @property
    def goodput_rps(self) -> float:
        """Completed requests per simulated second of busy span (first
        arrival to last device going idle)."""
        span = self.makespan_s - self.stream_start_s
        if span <= 0:
            return 0.0
        return self.completed / span

    def latency_histogram(self, slo: str) -> Histogram:
        return self.metrics.histogram(f"serve.latency_s.{slo}")

    def p99_latency_s(self, slo: str) -> float:
        return self.latency_histogram(slo).p99

    def render(self) -> str:
        head = (
            f"served {self.completed}/{self.submitted} requests on "
            f"{self.pool_size} device(s) in {self.makespan_s * 1e3:.3f}ms "
            f"simulated (rejected {self.rejected}, shed {self.shed})"
        )
        return head + "\n" + self.metrics.render("serve metrics")


class Scheduler:
    """Clock-driven micro-batching scheduler over a device pool.

    ``submit`` is thread-safe (an intake list guarded by a lock);
    ``run`` drains the intake plus any directly passed requests through
    the event loop on the calling thread.  One scheduler owns its pool:
    per-program :class:`LobsterSession`\\ s share the pool's devices and
    warm interpreters across runs, so steady-state traffic never pays
    the modeled allocation latency.
    """

    def __init__(
        self,
        pool: DevicePool | None = None,
        *,
        n_devices: int = 1,
        classes: dict[str, SLOClass] | None = None,
        admission: AdmissionController | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        elastic=None,
    ):
        """``tracer`` (a :class:`~repro.obs.Tracer`) records span
        timelines on the serve clock for every sampled request —
        admission verdict, queue wait, micro-batch membership, and the
        engine-run tree down to kernels — exportable to Perfetto.  The
        tracer's ``sample_every`` picks which tickets are traced;
        batches with no sampled member run with tracing muted, so
        sampling bounds trace volume without touching the schedule.

        ``elastic`` (an :class:`~repro.serve.elastic.ElasticController`)
        admits its managed *sharded* engine — normally rejected, since a
        sharded engine splits one query across devices rather than
        spreading queries over the pool.  The managed engine runs on its
        own shard devices (never a pool slot), serialized on a private
        busy horizon; after every one of its micro-batches the
        controller observes the served database and may grow/shrink the
        shard set or split hot keys before the next batch, charging the
        modeled migration seconds to that horizon."""
        self.pool = pool or DevicePool(n_devices, policy="least-loaded")
        self.tracer = tracer or NULL_TRACER
        self.elastic = elastic
        #: Serve-clock time the elastic engine's shard set is busy until
        #: (its batches + migration windows); reset per drain.
        self._elastic_free_at = 0.0
        #: Open request spans of the current drain, by ticket.
        self._request_spans: dict[int, object] = {}
        self.classes = dict(classes) if classes is not None else default_slo_classes()
        self.metrics = metrics or MetricsRegistry()
        self.admission = admission or AdmissionController(self.classes)
        #: Outcomes of the *latest* drain, by ticket (reset at the start
        #: of every :meth:`run` — a long-lived scheduler must not retain
        #: a record per served request; drain history belongs to the
        #: caller via the returned reports).
        self.outcomes: dict[int, Outcome] = {}
        self._queue: RequestQueue | None = None
        self._intake: list[Request] = []
        self._intake_lock = threading.Lock()
        self._next_ticket = 0
        self._sessions: dict[str, LobsterSession] = {}

    # ------------------------------------------------------------------
    # Intake

    def submit(self, request: Request) -> int:
        """Enqueue a request for the next :meth:`run`; returns its
        ticket.  Safe to call from many threads concurrently."""
        if request.slo not in self.classes:
            raise LobsterError(
                f"unknown SLO class {request.slo!r}; "
                f"known: {sorted(self.classes)}"
            )
        if request.engine._use_sharded() and not self._is_elastic_engine(
            request.engine
        ):
            raise LobsterError(
                "the serving scheduler spreads independent queries across "
                "a DevicePool; a sharded engine splits one query across "
                "devices — serve it with shards=1, or hand it to an "
                "ElasticController (elastic=) to serve on its shard set"
            )
        if request.ticket is not None:
            raise LobsterError(
                f"request already submitted (ticket {request.ticket}); "
                "build a fresh Request per submission"
            )
        with self._intake_lock:
            request.ticket = self._next_ticket
            self._next_ticket += 1
            self._intake.append(request)
            self.metrics.counter("serve.submitted").inc()
        return request.ticket

    def submit_many(self, requests: Iterable[Request]) -> list[int]:
        return [self.submit(request) for request in requests]

    @property
    def backpressure(self) -> float:
        """Live queue pressure in [0, 1] (only meaningful mid-run)."""
        if self._queue is None:
            return 0.0
        return self.admission.backpressure(self._queue)

    # ------------------------------------------------------------------
    # The event loop

    def run(
        self,
        requests: Iterable[Request] = (),
        *,
        busy_until: list[float] | None = None,
    ) -> ServeReport:
        """Drain ``requests`` plus everything submitted so far through
        the serve clock.

        ``busy_until`` seeds each pool device's initial free time on the
        serve clock (default: all free at 0) — this is how maintenance
        work from a :class:`~repro.serve.streaming.StreamScheduler` and
        request traffic share one pool: whoever ran last hands its
        devices' busy horizons to whoever runs next, so a device still
        finishing a maintain tick delays the micro-batch dispatched onto
        it.  The returned report's ``outcomes`` (and the counts derived
        from them) cover this drain only; its ``metrics`` registry is
        the scheduler's own, cumulative across drains."""
        # Validate before draining intake: a bad busy_until must not eat
        # the already-submitted requests (they stay queued for a retry).
        free_at = seed_free_at(busy_until, self.pool)
        for request in requests:
            self.submit(request)
        with self._intake_lock:
            arrivals = self._intake
            self._intake = []
        arrivals.sort(key=lambda r: (r.arrival_s, r.ticket))

        self.outcomes = {}  # this drain's records only (no unbounded growth)
        self._request_spans = {}
        self._elastic_free_at = 0.0
        queue = RequestQueue(self.classes)
        self._queue = queue
        run_outcomes: list[Outcome] = []
        stream_start = arrivals[0].arrival_s if arrivals else 0.0
        now = stream_start
        cursor = 0

        while True:
            # 1. Admit every arrival at or before the current clock.
            while cursor < len(arrivals) and arrivals[cursor].arrival_s <= now:
                self._admit(arrivals[cursor], now, queue, free_at, run_outcomes)
                cursor += 1

            # 2. Dispatch while a group is ready and its executor — a
            # free pool device, or the elastic engine's shard set — is
            # available.
            while True:
                ready = queue.ready_groups(now)
                if not ready:
                    break
                free = [i for i, t in enumerate(free_at) if t <= now]
                progressed = False
                for group in ready:
                    if self._is_elastic_group(group):
                        if self._elastic_free_at <= now:
                            self._dispatch_elastic(group, now, queue, run_outcomes)
                            progressed = True
                            break
                    elif free:
                        self._dispatch(group, now, queue, free_at, free, run_outcomes)
                        progressed = True
                        break
                if not progressed:
                    break

            # 3. Advance the clock to the next event.
            candidates: list[float] = []
            if cursor < len(arrivals):
                candidates.append(arrivals[cursor].arrival_s)
            if queue.total_depth:
                ready_time = queue.next_ready_time()
                if ready_time is not None and ready_time > now:
                    candidates.append(ready_time)
                else:
                    # A group is ready but its executor is busy: wake
                    # when a pool device — or the elastic shard set —
                    # next frees up.
                    waits = [t for t in free_at if t > now]
                    if self._elastic_free_at > now:
                        waits.append(self._elastic_free_at)
                    candidates.append(min(waits))
            if not candidates:
                break
            now = min(candidates)

        self._queue = None
        makespan = max(free_at) if free_at else 0.0
        makespan = max(makespan, self._elastic_free_at)
        self._export_device_metrics()
        report = ServeReport(
            outcomes=sorted(run_outcomes, key=lambda o: o.ticket),
            metrics=self.metrics,
            makespan_s=makespan,
            pool_size=len(self.pool),
            classes=dict(self.classes),
            stream_start_s=stream_start,
            busy_until=list(free_at),
        )
        # The no-lost-no-duplicated invariant, checked on every drain.
        if report.completed + report.rejected + report.shed != len(arrivals):
            raise LobsterError(
                f"serving accounting violated: {len(arrivals)} submitted but "
                f"{report.completed}+{report.rejected}+{report.shed} resolved"
            )
        return report

    # ------------------------------------------------------------------

    def _admit(
        self,
        request: Request,
        now: float,
        queue: RequestQueue,
        free_at: list[float],
        run_outcomes: list[Outcome],
    ) -> None:
        reason = self.admission.decide(
            request, now=now, queue=queue, free_at=free_at
        )
        tracer = self.tracer
        span = None
        if tracer.enabled and tracer.sampled(request.ticket):
            # One lane per sampled request: the span runs arrival to
            # terminal outcome, children account every waiting and
            # serving phase of the latency.
            span = tracer.start(
                "serve.request",
                t=request.arrival_s,
                track=f"request#{request.ticket}",
                ticket=request.ticket,
                slo=request.slo,
            )
            self._request_spans[request.ticket] = span
            tracer.event(
                "serve.admission",
                t=now,
                parent=span,
                verdict="rejected" if reason is not None else "admitted",
                reason=reason or "",
            )
        if reason is not None:
            outcome = Outcome(
                ticket=request.ticket,
                status=REJECTED,
                slo=request.slo,
                arrival_s=request.arrival_s,
                reason=reason,
                meta=request.meta,
            )
            self._record(outcome, run_outcomes)
            if span is not None:
                span.attrs["status"] = REJECTED
                tracer.finish(span, now)
                del self._request_spans[request.ticket]
            return
        queue.push(request)
        self.metrics.counter("serve.admitted").inc()
        self.metrics.gauge(f"serve.queue_depth.{request.slo}").set(
            queue.depth(request.slo)
        )

    def _is_elastic_engine(self, engine) -> bool:
        return self.elastic is not None and self.elastic.manages(engine)

    def _is_elastic_group(self, group: BatchGroup) -> bool:
        return bool(group.requests) and self._is_elastic_engine(
            group.requests[0].engine
        )

    def _fill_batch(
        self,
        group: BatchGroup,
        now: float,
        queue: RequestQueue,
        run_outcomes: list[Outcome],
    ) -> list[Request]:
        """Pop up to a batch from ``group``, shedding deadline-expired
        requests: under overload the head of a group is exactly where
        expired requests accumulate, and an undersized batch there would
        waste the coalescing."""
        slo_class = self.classes[group.slo]
        batch: list[Request] = []
        while group.requests and len(batch) < slo_class.max_batch_size:
            request = queue.pop_batch(group, 1)[0]
            if now > request.deadline_at(slo_class):
                expired_ms = (now - request.deadline_at(slo_class)) * 1e3
                outcome = Outcome(
                    ticket=request.ticket,
                    status=SHED,
                    slo=request.slo,
                    arrival_s=request.arrival_s,
                    reason=(
                        f"deadline expired {expired_ms:.3f}ms before "
                        "service (queued past the SLO)"
                    ),
                    meta=request.meta,
                )
                self._record(outcome, run_outcomes)
                span = self._request_spans.pop(request.ticket, None)
                if span is not None:
                    wait = self.tracer.start(
                        "queue.wait", t=request.arrival_s, parent=span
                    )
                    self.tracer.finish(wait, now)
                    span.attrs["status"] = SHED
                    self.tracer.finish(span, now)
                continue
            batch.append(request)
        self.metrics.gauge(f"serve.queue_depth.{group.slo}").set(
            queue.depth(group.slo)
        )
        return batch

    def _dispatch(
        self,
        group: BatchGroup,
        now: float,
        queue: RequestQueue,
        free_at: list[float],
        free_devices: list[int],
        run_outcomes: list[Outcome],
    ) -> None:
        batch = self._fill_batch(group, now, queue, run_outcomes)
        if not batch:
            return

        device_index, _ = self.pool.acquire(
            policy="least-loaded", eligible=free_devices
        )
        session = self._session_for(batch[0])
        tracer = self.tracer
        batch_span = None
        if tracer.enabled and any(
            request.ticket in self._request_spans for request in batch
        ):
            # The batch occupies the device [now, now + sum(services)];
            # engine-run spans nest under it on the device's lane.  The
            # cursor is pinned to the dispatch time so those run spans
            # anchor exactly where the outcome fan-out puts them.
            batch_span = tracer.start(
                "serve.batch",
                t=now,
                track=f"device{device_index}",
                device=device_index,
                slo=group.slo,
                size=len(batch),
            )
            tracer.set_time(now)
            results = session.run_batch(
                [request.database for request in batch],
                device_index=device_index,
                retain=False,
                span_parent=batch_span,
            )
            tracer.finish(batch_span, tracer.now)
        else:
            # retain=False: outcomes own the results; the long-lived
            # session must not grow a bookkeeping record per request.
            # A batch with no sampled member runs muted, so an
            # engine-level tracer does not emit orphan run spans.
            with tracer.muted():
                results = session.run_batch(
                    [request.database for request in batch],
                    device_index=device_index,
                    retain=False,
                )
        start = now
        elapsed = 0.0
        for request, result in zip(batch, results):
            service = result.service_seconds
            elapsed += service
            finish = start + elapsed
            outcome = Outcome(
                ticket=request.ticket,
                status=COMPLETED,
                slo=request.slo,
                arrival_s=request.arrival_s,
                start_s=start,
                finish_s=finish,
                service_s=service,
                device_index=device_index,
                batch_size=len(batch),
                result=result,
                meta=request.meta,
            )
            self._record(outcome, run_outcomes)
            self.admission.estimator.observe(request.program_key, service)
            span = self._request_spans.pop(request.ticket, None)
            if span is not None:
                # Three children summing exactly to the latency: waiting
                # for dispatch, waiting for batch predecessors, serving.
                wait = tracer.start("queue.wait", t=request.arrival_s, parent=span)
                tracer.finish(wait, start)
                turn = tracer.start("batch.wait", t=start, parent=span)
                tracer.finish(turn, finish - service)
                execute = tracer.start(
                    "serve.execute",
                    t=finish - service,
                    parent=span,
                    device=device_index,
                    batch_size=len(batch),
                )
                if batch_span is not None:
                    execute.attrs["batch_span"] = batch_span.span_id
                tracer.finish(execute, finish)
                span.attrs["status"] = COMPLETED
                tracer.finish(span, finish)
        free_at[device_index] = start + elapsed
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch_size", lo=1.0, growth=1.25).observe(
            len(batch)
        )

    def _dispatch_elastic(
        self,
        group: BatchGroup,
        now: float,
        queue: RequestQueue,
        run_outcomes: list[Outcome],
    ) -> None:
        """Dispatch a batch onto the elastic engine's shard set.

        The engine occupies no pool slot: its batches serialize on the
        controller's private busy horizon, and ``service_seconds`` is
        the busiest shard's modeled time.  After the batch the
        controller observes the served database and may migrate the
        shard layout; the priced migration seconds extend the horizon,
        so a reshard delays the next micro-batch exactly as the shuffle
        it models would."""
        batch = self._fill_batch(group, now, queue, run_outcomes)
        if not batch:
            return
        session = self._session_for(batch[0])
        tracer = self.tracer
        batch_span = None
        if tracer.enabled and any(
            request.ticket in self._request_spans for request in batch
        ):
            batch_span = tracer.start(
                "serve.batch",
                t=now,
                track="elastic",
                slo=group.slo,
                size=len(batch),
                shards=batch[0].engine.shards,
            )
            tracer.set_time(now)
            results = session.run_batch(
                [request.database for request in batch],
                retain=False,
                span_parent=batch_span,
            )
            tracer.finish(batch_span, tracer.now)
        else:
            with tracer.muted():
                results = session.run_batch(
                    [request.database for request in batch], retain=False
                )
        start = now
        elapsed = 0.0
        for request, result in zip(batch, results):
            service = result.service_seconds
            elapsed += service
            finish = start + elapsed
            outcome = Outcome(
                ticket=request.ticket,
                status=COMPLETED,
                slo=request.slo,
                arrival_s=request.arrival_s,
                start_s=start,
                finish_s=finish,
                service_s=service,
                batch_size=len(batch),
                result=result,
                meta=request.meta,
            )
            self._record(outcome, run_outcomes)
            self.admission.estimator.observe(request.program_key, service)
            span = self._request_spans.pop(request.ticket, None)
            if span is not None:
                wait = tracer.start("queue.wait", t=request.arrival_s, parent=span)
                tracer.finish(wait, start)
                turn = tracer.start("batch.wait", t=start, parent=span)
                tracer.finish(turn, finish - service)
                execute = tracer.start(
                    "serve.execute",
                    t=finish - service,
                    parent=span,
                    batch_size=len(batch),
                    shards=request.engine.shards,
                )
                tracer.finish(execute, finish)
                span.attrs["status"] = COMPLETED
                tracer.finish(span, finish)
            self.elastic.observe(request.database, result)
        horizon = start + elapsed
        plan = self.elastic.maybe_reshard(horizon)
        if plan is not None and plan.migrate:
            horizon += plan.migration_s
        self._elastic_free_at = horizon
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch_size", lo=1.0, growth=1.25).observe(
            len(batch)
        )

    def _record(self, outcome: Outcome, run_outcomes: list[Outcome]) -> None:
        if outcome.ticket in self.outcomes:
            raise LobsterError(
                f"duplicate outcome for ticket {outcome.ticket}"
            )
        self.outcomes[outcome.ticket] = outcome
        run_outcomes.append(outcome)
        self.metrics.counter(f"serve.{outcome.status}.{outcome.slo}").inc()
        if outcome.status == COMPLETED:
            self.metrics.histogram(f"serve.latency_s.{outcome.slo}").observe(
                outcome.latency_s
            )
            self.metrics.histogram(f"serve.queue_wait_s.{outcome.slo}").observe(
                outcome.queue_wait_s
            )
            self.metrics.histogram("serve.service_s").observe(outcome.service_s)

    def _session_for(self, request: Request) -> LobsterSession:
        """One session (and set of warm per-device interpreters) per
        compatibility key (compiled program + max_iterations — see
        :attr:`Request.program_key`), shared by every request that
        coalesces on it.  The session runs every request through *its*
        engine, which the key makes sound."""
        elastic = self._is_elastic_engine(request.engine)
        # The elastic engine runs on its own shard devices, not pool
        # slots, so its session is built poolless (and keyed apart: a
        # same-program non-elastic engine must not inherit it).
        key = f"elastic:{request.program_key}" if elastic else request.program_key
        session = self._sessions.get(key)
        if session is None:
            session = LobsterSession(
                request.engine,
                pool=None if elastic else self.pool,
                metrics=self.metrics,
                tracer=self.tracer if self.tracer is not NULL_TRACER else None,
            )
            self._sessions[key] = session
        return session

    def _export_device_metrics(self) -> None:
        self.metrics.gauge("device.pool_size").set(len(self.pool))
        for index, device in enumerate(self.pool.devices):
            for name, seconds in device.profile.busy_breakdown().items():
                self.metrics.gauge(f"device.{index}.{name}").set(seconds)
            self.metrics.gauge(f"device.{index}.busy_seconds").set(
                device.profile.busy_seconds
            )

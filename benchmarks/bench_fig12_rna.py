"""Fig. 12: RNA SSP speedup over Scallop as a function of sequence length.

The paper's shape: at the shortest length (28) the GPU engine's fixed
overheads make it comparable to (even slightly slower than) Scallop; the
speedup then grows with sequence length, reaching orders of magnitude on
long sequences.  We sweep a scaled-down length range and assert the
speedup is increasing and crosses 1x early.
"""

from __future__ import annotations

import pytest

from repro import LobsterEngine
from repro.baselines import ScallopInterpreter
from repro.workloads import rna

from _harness import record, print_table, report, speedup, timed

SUITE = "fig12_rna"

#: Scaled-down ArchiveII sweep (the CPU baseline is the time sink).
LENGTHS = [28, 40, 52, 64]


@pytest.fixture(scope="module")
def results():
    rows = []
    for length in LENGTHS:
        instance = rna.generate_instance(length, seed=length)

        # Fresh database per trial, built untimed — a fixpointed db
        # re-runs warm.
        def setup_lobster():
            lobster = LobsterEngine(
                rna.PROGRAM, provenance="prob-top-1-proofs", proof_capacity=128
            )
            ldb = lobster.create_database()
            rna.populate_database(ldb, instance)
            return lobster, ldb

        def setup_scallop():
            scallop = ScallopInterpreter(
                rna.PROGRAM, provenance="top-k-proofs", k=1, timeout_seconds=600
            )
            sdb = scallop.create_database()
            rna.populate_database(sdb, instance)
            return scallop, sdb

        run = lambda state: state[0].run(state[1])
        scallop_m = timed(run, setup=setup_scallop)
        lobster_m = timed(run, setup=setup_lobster)
        report(SUITE, f"RNA/len{length}/scallop", scallop_m, length=length, engine="scallop")
        report(SUITE, f"RNA/len{length}/lobster", lobster_m, length=length, engine="lobster")
        rows.append((length, scallop_m, lobster_m))
    return rows


def test_fig12_rna_speedup_grows_with_length(results, benchmark):
    def check():
        table = []
        speedups = []
        for length, scallop, lobster in results:
            ratio = speedup(scallop, lobster)
            # A *baseline* timeout at the long end means "effectively
            # infinite" speedup — the paper's orders-of-magnitude regime.
            # A Lobster failure is a 0x speedup, never silently inf.
            if ratio.ok:
                speedups.append(ratio.value)
            elif ratio.status.startswith("baseline-"):
                speedups.append(float("inf"))
            else:
                speedups.append(0.0)
            table.append([length, scallop.label, lobster.label, str(ratio)])
        print_table(
            "Fig. 12 — RNA SSP, speedup over Scallop vs sequence length",
            ["length", "scallop", "lobster", "speedup"],
            table,
        )
        # Shape 1: the speedup grows with sequence length overall.
        assert speedups[-1] > speedups[0]
        # Shape 2: by the end of the sweep Lobster is clearly ahead.
        assert speedups[-1] > 2.0


    record(benchmark, check)

def test_fig12_benchmark_rna_lobster(benchmark):
    instance = rna.generate_instance(52, seed=52)

    def run():
        engine = LobsterEngine(
            rna.PROGRAM, provenance="prob-top-1-proofs", proof_capacity=128
        )
        db = engine.create_database()
        rna.populate_database(db, instance)
        engine.run(db)

    benchmark.pedantic(run, rounds=2, iterations=1)

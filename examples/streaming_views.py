"""Streaming incremental view maintenance: live reachability over a
changing graph.

A standing single-source reachability query stays continuously correct
while a sliding window of "sensor link" edges churns around a stable
backbone: window expiry *retracts* facts, and the engine's DRed-style
maintain path (over-delete, re-derive, propagate) updates the view in
place instead of recomputing — a subscription streams the per-tick
result deltas.

Run:  PYTHONPATH=src python examples/streaming_views.py
"""

from repro import (
    DevicePool,
    LobsterEngine,
    MaterializedView,
    SlidingWindow,
    StreamScheduler,
)
from repro.serve import MetricsRegistry
from repro.stream import RelationStream

PROGRAM = """
rel reach(y) :- source(y) or (reach(x) and edge(x, y)).
query reach
"""

# A stable backbone chain 0 -> 1 -> ... -> 30, with churning "sensor
# link" edges hanging off it (node i observes sensor 100+i).
backbone = [(i, i + 1) for i in range(30)]
sensor_links = [(i, 100 + i) for i in range(30)]

engine = LobsterEngine(PROGRAM)
database = engine.create_database()
database.add_facts("source", [(0,)])
database.add_facts("edge", backbone)
engine.run(database)

view = MaterializedView(engine, database=database, name="reach")
subscription = view.subscribe()

# Each tick, two sensor links arrive; links older than 6 ticks expire
# (the window emits retractions for them automatically).
window = SlidingWindow(RelationStream("edge", sensor_links, 2, seed=7), size=6)

# Maintenance ticks run on the serve clock through a device pool — the
# same pool and metrics registry a request scheduler would share.
scheduler = StreamScheduler(
    pool=DevicePool(1, policy="least-loaded"), metrics=MetricsRegistry()
)
scheduler.register(view, window, period_s=1e-3)
report = scheduler.run(16)

print(f"applied {report.ticks} ticks in {report.passes} maintain passes")
print(f"maintained in place: {report.maintained_fraction:.0%} of passes")
print(f"serve-clock makespan: {report.makespan_s * 1e3:.3f}ms simulated")

reachable_sensors = sorted(
    node for (node,) in view.result("reach") if node >= 100
)
print(f"live view: {len(view.result('reach'))} reachable nodes, "
      f"{len(reachable_sensors)} of them sensors")

# The subscription saw every tick's delta; replaying them from tick 0
# reconstructs the live view exactly (the conservation law).
deltas = subscription.poll()
changes = sum(delta.change_count() for delta in deltas)
assert subscription.replay()["reach"] == view.result("reach")
print(f"subscription: {len(deltas)} deltas, {changes} row changes, "
      "replay reconstructs the view exactly")

histogram = scheduler.metrics.histogram("stream.maintain_latency_s.reach")
print(f"per-tick maintain latency: p50 {histogram.p50 * 1e6:.0f}us "
      f"p99 {histogram.p99 * 1e6:.0f}us over {histogram.count} ticks")
